package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/storage"
)

// Router is a storage.Engine that partitions collections across N
// underlying engine shards by a per-collection shard key. Documents of
// a keyed collection land on ShardFor(key value); collections without
// a configured key (metadata: accounts, apps, jobs) live wholly on
// shard 0, so a Router over one shard is byte-for-byte the single-node
// engine.
//
// Identity semantics under sharding: a document's uniqueness is scoped
// to its shard-key partition. Two documents with the same _id but
// different shard-key values may coexist on different shards — the
// same contract MongoDB's sharded unique index has, and irrelevant to
// goflow, where _ids are minted by the store.
type Router struct {
	shards []storage.Engine
	keys   map[string]string

	metrics *Metrics
}

// RouterOptions configure NewRouter.
type RouterOptions struct {
	// Keys maps collection name to the field whose value routes each
	// document. Collections not listed are unsharded (pinned to shard
	// 0).
	Keys map[string]string
	// Metrics receives router counters when non-nil.
	Metrics *Metrics
}

// DefaultShardKeys is the goflow routing table: observations shard by
// the anonymized device id (each contributor's stream stays local to
// one shard, so per-user queries and right-to-erasure deletes touch
// one shard), and zone statistics shard by geo zone.
func DefaultShardKeys() map[string]string {
	return map[string]string{
		"observations": "userId",
		"zone_stats":   "zone",
	}
}

// NewRouter builds an engine over the given shards. The shard slice
// order is the shard numbering and must be stable across restarts.
func NewRouter(shards []storage.Engine, opts RouterOptions) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	keys := opts.Keys
	if keys == nil {
		keys = DefaultShardKeys()
	}
	return &Router{shards: shards, keys: keys, metrics: opts.Metrics}, nil
}

// ShardCount returns the number of shards.
func (r *Router) ShardCount() int { return len(r.shards) }

// Shard exposes one underlying shard engine (for checkpoint loops and
// tests).
func (r *Router) Shard(i int) storage.Engine { return r.shards[i] }

// shardFor routes one document: hash of the shard-key field's value,
// or shard 0 when the collection is unsharded or the document does not
// carry the key field.
func (r *Router) shardFor(col string, doc storage.Doc) int {
	field := r.keys[col]
	if field == "" || len(r.shards) == 1 {
		return 0
	}
	v, ok := doc[field]
	if !ok {
		return 0
	}
	return ShardFor(fmt.Sprint(v), len(r.shards))
}

// Insert implements storage.Engine.
func (r *Router) Insert(col string, doc storage.Doc) (string, error) {
	return r.shards[r.shardFor(col, doc)].Insert(col, doc)
}

// InsertMany implements storage.Engine: partition the batch per shard,
// insert the partitions concurrently, and reassemble the ids in input
// order. On a mid-batch failure the engine contract (valid prefix
// stored, nothing after it) still holds globally: the failing document
// with the lowest input position defines the prefix, and concurrently
// inserted documents past it are rolled back on their shards.
func (r *Router) InsertMany(col string, docs []storage.Doc) ([]string, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	if len(r.shards) == 1 || r.keys[col] == "" {
		return r.shards[0].InsertMany(col, docs)
	}
	type part struct {
		pos  []int // input positions, ascending
		docs []storage.Doc
	}
	parts := make([]part, len(r.shards))
	for i, d := range docs {
		s := r.shardFor(col, d)
		parts[s].pos = append(parts[s].pos, i)
		parts[s].docs = append(parts[s].docs, d)
	}
	ids := make([][]string, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for s := range parts {
		if len(parts[s].docs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ids[s], errs[s] = r.shards[s].InsertMany(col, parts[s].docs)
		}(s)
	}
	wg.Wait()
	if r.metrics != nil {
		r.metrics.RouterFanouts.Inc()
	}

	// The global valid prefix ends at the earliest input position that
	// failed. Each shard stored its own local prefix; ids[s] is that
	// prefix, so the first failing position on shard s is pos[len(ids)].
	// A shard may also error with ALL its documents stored (a
	// durability error, e.g. an ack-quorum timeout: applied but not
	// acknowledged) — that defines no positional cut; the error is
	// propagated and the caller must treat the whole batch as
	// unacknowledged.
	failAt := len(docs)
	var failErr, durErr error
	for s := range parts {
		if errs[s] == nil {
			continue
		}
		if len(ids[s]) < len(parts[s].pos) {
			if g := parts[s].pos[len(ids[s])]; g < failAt {
				failAt = g
				failErr = errs[s]
			}
		} else if durErr == nil {
			durErr = errs[s]
		}
	}
	if failErr == nil {
		failErr = durErr
	}
	out := make([]string, 0, len(docs))
	for s := range parts {
		for k, id := range ids[s] {
			if g := parts[s].pos[k]; g > failAt {
				// Inserted concurrently past the failure point: roll it
				// back on the shard that holds it.
				_ = r.shards[s].Delete(col, id)
			}
		}
	}
	// Reassemble surviving ids in input order.
	byPos := make(map[int]string, len(docs))
	for s := range parts {
		for k, id := range ids[s] {
			if parts[s].pos[k] < failAt {
				byPos[parts[s].pos[k]] = id
			}
		}
	}
	for i := 0; i < failAt; i++ {
		if id, ok := byPos[i]; ok {
			out = append(out, id)
		}
	}
	if failErr != nil {
		return out, failErr
	}
	return out, nil
}

// Get implements storage.Engine. The id alone does not reveal the
// shard, so the lookup tries each shard in order.
func (r *Router) Get(col, id string) (storage.Doc, error) {
	for _, s := range r.shards {
		d, err := s.Get(col, id)
		if err == nil {
			return d, nil
		}
		if !errors.Is(err, docstore.ErrNotFound) {
			return nil, err
		}
	}
	return nil, docstore.ErrNotFound
}

// Update implements storage.Engine.
func (r *Router) Update(col, id string, fields storage.Doc) error {
	return r.tryEach(func(s storage.Engine) error { return s.Update(col, id, fields) })
}

// Unset implements storage.Engine.
func (r *Router) Unset(col, id string, fields ...string) error {
	return r.tryEach(func(s storage.Engine) error { return s.Unset(col, id, fields...) })
}

// Delete implements storage.Engine.
func (r *Router) Delete(col, id string) error {
	return r.tryEach(func(s storage.Engine) error { return s.Delete(col, id) })
}

// tryEach runs op against each shard until one claims the document.
func (r *Router) tryEach(op func(storage.Engine) error) error {
	for _, s := range r.shards {
		err := op(s)
		if err == nil {
			return nil
		}
		if !errors.Is(err, docstore.ErrNotFound) {
			return err
		}
	}
	return docstore.ErrNotFound
}

// DeleteMany implements storage.Engine: fan out and sum.
func (r *Router) DeleteMany(col string, filter storage.Doc) (int, error) {
	var (
		mu    sync.Mutex
		total int
	)
	err := r.fanOut(func(s storage.Engine) error {
		n, err := s.DeleteMany(col, filter)
		mu.Lock()
		total += n
		mu.Unlock()
		return err
	})
	return total, err
}

// FindContext implements storage.Engine: fan the scan out, then merge.
// Each shard is asked for Skip+Limit results (it cannot know how many
// of its documents survive the global skip), the sorted partial
// results are merged with the docstore ordering, and the global
// skip/limit applies to the merged stream.
func (r *Router) FindContext(ctx context.Context, col string, filter storage.Doc, opts docstore.FindOptions) ([]storage.Doc, error) {
	if len(r.shards) == 1 {
		return r.shards[0].FindContext(ctx, col, filter, opts)
	}
	per := opts
	per.Skip = 0
	if opts.Limit > 0 {
		per.Limit = opts.Skip + opts.Limit
	}
	// The merge needs the sort field's value; if the projection strips
	// it, fetch it anyway and remove it after merging.
	stripSort := false
	if opts.SortField != "" && len(opts.Projection) > 0 {
		found := false
		for _, f := range opts.Projection {
			if f == opts.SortField {
				found = true
				break
			}
		}
		if !found {
			per.Projection = append(append([]string{}, opts.Projection...), opts.SortField)
			stripSort = true
		}
	}
	partials := make([][]storage.Doc, len(r.shards))
	err := r.fanOutIndexed(func(i int, s storage.Engine) error {
		docs, err := s.FindContext(ctx, col, filter, per)
		partials[i] = docs
		return err
	})
	if err != nil {
		return nil, err
	}
	var merged []storage.Doc
	if opts.SortField != "" {
		// Each partial is already sorted: stream-merge the runs
		// (merge.go) instead of re-sorting the concatenation. Ties
		// resolve by (shard, position), exactly what a stable sort of
		// the shard-ordered concatenation would yield.
		merged = mergeSortedRuns(partials, opts.SortField, opts.SortDesc)
	} else {
		for _, p := range partials {
			merged = append(merged, p...)
		}
	}
	if opts.Skip > 0 {
		if opts.Skip >= len(merged) {
			merged = nil
		} else {
			merged = merged[opts.Skip:]
		}
	}
	if opts.Limit > 0 && len(merged) > opts.Limit {
		merged = merged[:opts.Limit]
	}
	if stripSort {
		for _, d := range merged {
			delete(d, opts.SortField)
		}
	}
	return merged, nil
}

// CountContext implements storage.Engine: fan out and sum.
func (r *Router) CountContext(ctx context.Context, col string, filter storage.Doc) (int, error) {
	var (
		mu    sync.Mutex
		total int
	)
	err := r.fanOut(func(s storage.Engine) error {
		n, err := s.CountContext(ctx, col, filter)
		mu.Lock()
		total += n
		mu.Unlock()
		return err
	})
	return total, err
}

// EnsureIndex implements storage.Engine on every shard.
func (r *Router) EnsureIndex(col, field string) {
	for _, s := range r.shards {
		s.EnsureIndex(col, field)
	}
}

// Collections implements storage.Engine: sorted union.
func (r *Router) Collections() []string {
	seen := map[string]bool{}
	for _, s := range r.shards {
		for _, c := range s.Collections() {
			seen[c] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Stats implements storage.Engine: counters summed across shards
// (Indexes reports shard 0's count — every shard carries the same
// index set).
func (r *Router) Stats(col string) docstore.Stats {
	var agg docstore.Stats
	agg.Name = col
	for i, s := range r.shards {
		st := s.Stats(col)
		agg.Docs += st.Docs
		agg.Inserted += st.Inserted
		agg.Updated += st.Updated
		if i == 0 {
			agg.Indexes = st.Indexes
		}
	}
	return agg
}

// Checkpoint implements storage.Engine on every shard. Shards
// checkpoint independently — each owns its WAL and snapshot — so one
// slow shard does not hold the others' logs open.
func (r *Router) Checkpoint() error {
	return r.fanOut(func(s storage.Engine) error { return s.Checkpoint() })
}

// Close implements storage.Engine on every shard.
func (r *Router) Close() error {
	var first error
	for _, s := range r.shards {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// fanOut runs op on every shard concurrently and returns the
// lowest-numbered shard's error.
func (r *Router) fanOut(op func(storage.Engine) error) error {
	return r.fanOutIndexed(func(_ int, s storage.Engine) error { return op(s) })
}

func (r *Router) fanOutIndexed(op func(int, storage.Engine) error) error {
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = op(i, r.shards[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
