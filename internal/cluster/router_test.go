package cluster_test

import (
	"fmt"
	"testing"

	"github.com/urbancivics/goflow/internal/cluster"
	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/storage"
	"github.com/urbancivics/goflow/internal/storage/enginetest"
)

func newTestRouter(t *testing.T, n int) *cluster.Router {
	t.Helper()
	shards := make([]storage.Engine, n)
	for i := range shards {
		shards[i] = storage.NewLocal(docstore.NewStore())
	}
	r, err := cluster.NewRouter(shards, cluster.RouterOptions{
		Keys: map[string]string{"obs": "device"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRouterConformance: a Router over 1 and over 3 shards must be
// indistinguishable from the single-node engine through the Engine
// interface.
func TestRouterConformance(t *testing.T) {
	for _, n := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			enginetest.Run(t, func(t *testing.T) storage.Engine {
				return newTestRouter(t, n)
			})
		})
	}
}

// TestRouterKeyLocality: all documents of one shard key land on the
// same shard, and that shard is where per-key scans find them.
func TestRouterKeyLocality(t *testing.T) {
	r := newTestRouter(t, 4)
	defer func() { _ = r.Close() }()
	perDevice := 25
	for d := 0; d < 8; d++ {
		device := fmt.Sprintf("device-%d", d)
		for i := 0; i < perDevice; i++ {
			if _, err := r.Insert("obs", storage.Doc{"device": device, "seq": i}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for d := 0; d < 8; d++ {
		device := fmt.Sprintf("device-%d", d)
		want := cluster.ShardFor(device, 4)
		for s := 0; s < 4; s++ {
			n, err := r.Shard(s).CountContext(t.Context(), "obs", storage.Doc{"device": device})
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case s == want && n != perDevice:
				t.Fatalf("device %s: shard %d holds %d docs, want %d", device, s, n, perDevice)
			case s != want && n != 0:
				t.Fatalf("device %s leaked %d docs onto shard %d (home %d)", device, n, s, want)
			}
		}
	}
}

// TestRouterUnshardedPinned: collections without a shard key (metadata)
// live wholly on shard 0.
func TestRouterUnshardedPinned(t *testing.T) {
	r := newTestRouter(t, 4)
	defer func() { _ = r.Close() }()
	for i := 0; i < 10; i++ {
		if _, err := r.Insert("accounts", storage.Doc{"name": fmt.Sprintf("u%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := r.Shard(0).CountContext(t.Context(), "accounts", nil)
	if err != nil || n != 10 {
		t.Fatalf("shard 0 holds %d metadata docs (%v), want 10", n, err)
	}
	for s := 1; s < 4; s++ {
		if n, _ := r.Shard(s).CountContext(t.Context(), "accounts", nil); n != 0 {
			t.Fatalf("metadata leaked onto shard %d", s)
		}
	}
}

// TestRouterInsertManyFanout: a mixed-key batch spreads across shards
// and the returned ids line up positionally with the input docs.
func TestRouterInsertManyFanout(t *testing.T) {
	r := newTestRouter(t, 4)
	defer func() { _ = r.Close() }()
	docs := make([]storage.Doc, 200)
	for i := range docs {
		docs[i] = storage.Doc{"device": fmt.Sprintf("device-%d", i%10), "seq": i}
	}
	ids, err := r.InsertMany("obs", docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(docs) {
		t.Fatalf("got %d ids for %d docs", len(ids), len(docs))
	}
	// Positional correspondence: ids[i] names the doc with seq i.
	for i, id := range ids {
		d, err := r.Get("obs", id)
		if err != nil {
			t.Fatalf("id %d: %v", i, err)
		}
		if d["seq"] != i {
			t.Fatalf("ids out of positional order: ids[%d] -> seq %v", i, d["seq"])
		}
	}
	// The batch genuinely fanned out.
	populated := 0
	for s := 0; s < 4; s++ {
		if n, _ := r.Shard(s).CountContext(t.Context(), "obs", nil); n > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("batch landed on %d shard(s); expected a fan-out", populated)
	}
}
