package cluster

import (
	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/storage"
)

// Streaming k-way merge for fanned-out sorted scans. Each shard
// returns its partial result already sorted (the docstore sorts
// per-shard), so re-sorting the concatenation — O(n log n) comparisons
// over the full result — throws that work away. The merge walks the N
// sorted runs with a binary heap of cursors: O(n log N), and N (the
// shard count) is small.
//
// Output order is byte-identical to the previous
// concatenate-and-stable-sort: equal sort keys resolve by (shard,
// position), which is exactly the order a stable sort of the
// shard-ordered concatenation preserves.

// mergeCursor is one shard's read position in its sorted run.
type mergeCursor struct {
	shard int
	pos   int
	docs  []storage.Doc
}

// mergeSortedRuns merges per-shard runs sorted on field (descending
// when desc) into one sorted slice.
func mergeSortedRuns(partials [][]storage.Doc, field string, desc bool) []storage.Doc {
	total, nonEmpty := 0, 0
	for _, p := range partials {
		total += len(p)
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		for _, p := range partials {
			if len(p) > 0 {
				return p
			}
		}
	}
	less := func(a, b mergeCursor) bool {
		c := docstore.CompareValues(a.docs[a.pos][field], b.docs[b.pos][field])
		if c == 0 {
			return a.shard < b.shard
		}
		if desc {
			return c > 0
		}
		return c < 0
	}
	h := make([]mergeCursor, 0, nonEmpty)
	for s, p := range partials {
		if len(p) > 0 {
			h = append(h, mergeCursor{shard: s, docs: p})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i, less)
	}
	out := make([]storage.Doc, 0, total)
	for len(h) > 0 {
		cur := &h[0]
		out = append(out, cur.docs[cur.pos])
		cur.pos++
		if cur.pos == len(cur.docs) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 1 {
			siftDown(h, 0, less)
		}
	}
	return out
}

// siftDown restores the min-heap property from index i.
func siftDown(h []mergeCursor, i int, less func(a, b mergeCursor) bool) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && less(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && less(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
