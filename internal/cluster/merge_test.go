package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/storage"
)

// reference is the previous Router merge: concatenate the shard runs
// in shard order, then stable-sort. mergeSortedRuns must reproduce
// its output byte for byte, ties included.
func referenceMerge(partials [][]storage.Doc, field string, desc bool) []storage.Doc {
	var all []storage.Doc
	for _, p := range partials {
		all = append(all, p...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		c := docstore.CompareValues(all[i][field], all[j][field])
		if desc {
			return c > 0
		}
		return c < 0
	})
	return all
}

func genRuns(rng *rand.Rand, shards, maxLen, keySpace int, desc bool) [][]storage.Doc {
	runs := make([][]storage.Doc, shards)
	for s := range runs {
		n := rng.Intn(maxLen + 1)
		docs := make([]storage.Doc, n)
		for i := range docs {
			// Small key space forces ties, the case the (shard, pos)
			// tie-break has to get right.
			docs[i] = storage.Doc{"k": rng.Intn(keySpace), "shard": s, "pos": i}
		}
		sort.SliceStable(docs, func(i, j int) bool {
			c := docstore.CompareValues(docs[i]["k"], docs[j]["k"])
			if desc {
				return c > 0
			}
			return c < 0
		})
		for i := range docs {
			docs[i]["pos"] = i // re-stamp positions after the per-shard sort
		}
		runs[s] = docs
	}
	return runs
}

func TestMergeSortedRunsMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		shards := 1 + rng.Intn(6)
		desc := trial%2 == 1
		runs := genRuns(rng, shards, 40, 5, desc)
		got := mergeSortedRuns(runs, "k", desc)
		want := referenceMerge(runs, "k", desc)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("trial %d (desc=%v): doc %d:\nwant %v\ngot  %v", trial, desc, i, want[i], got[i])
			}
		}
	}
}

func TestMergeSortedRunsEdgeCases(t *testing.T) {
	if got := mergeSortedRuns(nil, "k", false); got != nil {
		t.Fatalf("nil runs: %v", got)
	}
	if got := mergeSortedRuns([][]storage.Doc{{}, {}}, "k", false); got != nil {
		t.Fatalf("empty runs: %v", got)
	}
	single := []storage.Doc{{"k": 1}, {"k": 2}}
	if got := mergeSortedRuns([][]storage.Doc{nil, single, nil}, "k", false); len(got) != 2 {
		t.Fatalf("single non-empty run not passed through: %v", got)
	}
}

// The benchmark pair documents the win over the previous
// concatenate-and-sort: O(n log N) comparisons against O(n log n),
// with N = shard count.
func benchRuns(shards, perShard int) [][]storage.Doc {
	rng := rand.New(rand.NewSource(99))
	runs := make([][]storage.Doc, shards)
	for s := range runs {
		docs := make([]storage.Doc, perShard)
		for i := range docs {
			docs[i] = storage.Doc{"k": rng.Intn(1 << 20)}
		}
		sort.SliceStable(docs, func(i, j int) bool {
			return docstore.CompareValues(docs[i]["k"], docs[j]["k"]) < 0
		})
		runs[s] = docs
	}
	return runs
}

func BenchmarkMergeSortedRuns(b *testing.B) {
	runs := benchRuns(4, 25000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mergeSortedRuns(runs, "k", false)
	}
}

func BenchmarkConcatStableSort(b *testing.B) {
	runs := benchRuns(4, 25000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceMerge(runs, "k", false)
	}
}
