package cluster_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/cluster"
	"github.com/urbancivics/goflow/internal/storage"
	"github.com/urbancivics/goflow/internal/wal"
)

// BenchmarkFollowerCatchup measures log-shipping throughput: a fresh
// follower bulk-reads a 5000-record leader history. bytes/op is the
// shipped payload volume, so the reported MB/s is catch-up bandwidth.
func BenchmarkFollowerCatchup(b *testing.B) {
	dir := b.TempDir()
	ldr := newLeader(b, filepath.Join(dir, "leader"), cluster.LeaderOptions{})
	defer func() { _ = ldr.Close() }()
	const corpus = 5000
	var payloadBytes int64
	for i := 0; i < corpus; i++ {
		if _, err := ldr.Insert("obs", storage.Doc{
			"device": fmt.Sprintf("d%d", i%16),
			"seq":    i,
			"spl":    55.5 + float64(i%40),
			"note":   "bench observation payload with representative field sizes",
		}); err != nil {
			b.Fatal(err)
		}
	}
	payloadBytes = int64(ldr.WAL().Stats().Bytes)
	target := ldr.WAL().LastLSN()
	b.SetBytes(payloadBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := cluster.StartFollower(openShard(b, filepath.Join(dir, fmt.Sprintf("f%d", i))), cluster.FollowerOptions{
			Name: "bench", Addr: ldr.Addr(),
		})
		if err != nil {
			b.Fatal(err)
		}
		for f.AppliedLSN() < target {
			time.Sleep(time.Millisecond)
		}
		b.StopTimer()
		_ = f.Close()
		b.StartTimer()
	}
}

// BenchmarkReplicatedIngest measures the per-write cost of replication
// against the single-node baseline: mode=local is a plain WAL engine,
// mode=async ships to a follower without waiting, mode=sync waits for
// the follower ack on every write.
func BenchmarkReplicatedIngest(b *testing.B) {
	for _, mode := range []string{"local", "async", "sync"} {
		b.Run("mode="+mode, func(b *testing.B) {
			dir := b.TempDir()
			var eng storage.Engine
			switch mode {
			case "local":
				l, err := storage.OpenLocal(storage.LocalOptions{
					WALDir: filepath.Join(dir, "leader"),
				})
				if err != nil {
					b.Fatal(err)
				}
				eng = l
			default:
				sync := 0
				if mode == "sync" {
					sync = 1
				}
				ldr := newLeader(b, filepath.Join(dir, "leader"), cluster.LeaderOptions{
					SyncFollowers: sync,
					Heartbeat:     2 * time.Millisecond,
				})
				f, err := cluster.StartFollower(openShard(b, filepath.Join(dir, "follower")), cluster.FollowerOptions{
					Name: "f1", Addr: ldr.Addr(),
				})
				if err != nil {
					b.Fatal(err)
				}
				defer func() { _ = f.Close() }()
				eng = ldr
			}
			defer func() { _ = eng.Close() }()
			doc := storage.Doc{"device": "d1", "spl": 61.5}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := storage.Doc{}
				for k, v := range doc {
					d[k] = v
				}
				d["seq"] = i
				if _, err := eng.Insert("obs", d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedBulkIngest measures write scaling across shard
// counts under the workload sharding is for: many concurrent
// uploaders, each landing a 100-document mixed-device batch. The
// policy dimension separates the two regimes: fsync=none exposes the
// store's lock/index parallelism (shards are independent collections,
// so this should scale), fsync=grouped adds one durable group commit
// per shard per batch — on a single disk more shards mean more
// fsyncs, so durability, not sharding, bounds single-box ingest.
func BenchmarkShardedBulkIngest(b *testing.B) {
	for _, policy := range []wal.FsyncPolicy{wal.FsyncNone, wal.FsyncGrouped} {
		for _, n := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("fsync=%s/shards=%d", policy, n), func(b *testing.B) {
				dir := b.TempDir()
				shards := make([]storage.Engine, n)
				for i := range shards {
					l, err := storage.OpenLocal(storage.LocalOptions{
						WALDir: filepath.Join(dir, fmt.Sprintf("shard-%d", i)),
						Policy: policy,
					})
					if err != nil {
						b.Fatal(err)
					}
					shards[i] = l
				}
				r, err := cluster.NewRouter(shards, cluster.RouterOptions{
					Keys: map[string]string{"obs": "device"},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer func() { _ = r.Close() }()
				r.EnsureIndex("obs", "device")
				const batch = 100
				b.SetBytes(batch) // docs per op: MB/s reads as Mdocs/s
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					seq := 0
					for pb.Next() {
						docs := make([]storage.Doc, batch)
						for k := range docs {
							docs[k] = storage.Doc{
								"device": fmt.Sprintf("device-%d", (seq+k)%64),
								"seq":    seq + k,
								"spl":    50.0 + float64(k%30),
							}
						}
						seq += batch
						if _, err := r.InsertMany("obs", docs); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}
