package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/urbancivics/goflow/internal/mq"
)

// Follower side of snapshot transfer. A follower whose fetch position
// the leader can no longer serve from the log (checkpoint truncation,
// or a diverged ex-leader tail) downloads the leader's latest
// checkpoint chunk by chunk into a staging file and imports it through
// the storage engine's ImportSnapshot — store, WAL numbering and
// series view together — then resumes tailing right above the LSN the
// snapshot covers.
//
// Resumability: the staging file and a tiny JSON meta sidecar
// ({snapLsn, size}) survive connection faults and even follower
// restarts; the next attempt asks the leader to stream from the
// staged byte offset. If the leader checkpointed a different snapshot
// in between (meta mismatch), the stage is discarded and the transfer
// restarts from zero — chunk CRCs plus the total-size check make a
// torn or mixed stage impossible to import.

// snapMeta is the staging sidecar: which snapshot the staged bytes
// belong to.
type snapMeta struct {
	SnapLSN uint64 `json:"snapLsn"`
	Size    int64  `json:"size"`
}

// stagingPaths returns the staging file and meta sidecar paths.
func (f *Follower) stagingPaths() (staging, meta string, ok bool) {
	base := f.local.SnapshotPath()
	if base == "" {
		return "", "", false
	}
	return base + ".incoming", base + ".incoming.meta", true
}

// bootstrapSnapshot runs one snapshot-transfer attempt: resume (or
// start) the download, and import when complete. Any error leaves the
// stage on disk for the next attempt.
func (f *Follower) bootstrapSnapshot(ctx context.Context) error {
	staging, metaPath, ok := f.stagingPaths()
	if !ok {
		return fmt.Errorf("cluster: follower %s has no snapshot path; cannot bootstrap", f.opt.Name)
	}
	// Resume state: a meta sidecar plus staged bytes from an earlier
	// attempt.
	var meta snapMeta
	haveMeta := false
	if data, err := os.ReadFile(metaPath); err == nil {
		haveMeta = json.Unmarshal(data, &meta) == nil
	}
	var offset int64
	if haveMeta {
		if st, err := os.Stat(staging); err == nil {
			offset = st.Size()
		}
	} else {
		_ = os.Remove(staging) // stage without meta is unidentifiable
	}

	nc, err := f.opt.Dial(f.opt.Addr)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.conn = nc
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		_ = nc.Close()
	}()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if _, err := mq.WriteReplFrame(nc, &mq.ReplFrame{
		Op: mq.ReplOpSnap, Follower: f.opt.Name, Offset: offset, Term: f.term.Load(),
	}); err != nil {
		return err
	}
	r := bufio.NewReader(nc)

	out, err := os.OpenFile(staging, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: open staging file: %w", err)
	}
	if _, err := out.Seek(offset, io.SeekStart); err != nil {
		_ = out.Close()
		return fmt.Errorf("cluster: seek staging file: %w", err)
	}
	var w io.Writer = out
	if f.opt.WrapSnapshot != nil {
		w = f.opt.WrapSnapshot(out)
	}
	closed := false
	defer func() {
		if !closed {
			_ = out.Close()
		}
	}()

	total := meta.Size
	done := haveMeta && offset >= total
	for !done && ctx.Err() == nil {
		frame, _, err := mq.ReadReplFrame(r)
		if err != nil {
			return err
		}
		switch frame.Op {
		case mq.ReplOpSnapChunk:
		case mq.ReplOpError:
			return f.onLeaderError(frame)
		default:
			return fmt.Errorf("cluster: unexpected frame %q during snapshot transfer", frame.Op)
		}
		if haveMeta && (frame.SnapLSN != meta.SnapLSN || frame.SnapSize != meta.Size) {
			// The leader checkpointed a different snapshot since our
			// stage began; discard and restart from zero next attempt.
			_ = out.Close()
			closed = true
			_ = os.Remove(staging)
			_ = os.Remove(metaPath)
			return fmt.Errorf("cluster: leader snapshot changed mid-transfer (lsn %d→%d); restarting",
				meta.SnapLSN, frame.SnapLSN)
		}
		if !haveMeta {
			meta = snapMeta{SnapLSN: frame.SnapLSN, Size: frame.SnapSize}
			data, _ := json.Marshal(meta)
			if err := os.WriteFile(metaPath, data, 0o644); err != nil {
				return fmt.Errorf("cluster: write staging meta: %w", err)
			}
			haveMeta = true
			total = meta.Size
		}
		if len(frame.Data) > 0 {
			if crc32.Checksum(frame.Data, crcTable) != frame.CRC {
				return fmt.Errorf("cluster: snapshot chunk crc mismatch at offset %d", frame.Offset)
			}
			if frame.Offset != offset {
				return fmt.Errorf("cluster: snapshot chunk at offset %d, want %d", frame.Offset, offset)
			}
			n, err := w.Write(frame.Data)
			offset += int64(n)
			if err != nil {
				return fmt.Errorf("cluster: write snapshot chunk: %w", err)
			}
		}
		done = offset >= total
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if err := out.Sync(); err != nil {
		return fmt.Errorf("cluster: sync staging file: %w", err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("cluster: close staging file: %w", err)
	}
	closed = true
	if st, err := os.Stat(staging); err != nil || st.Size() != total {
		return fmt.Errorf("cluster: staged snapshot incomplete (%v)", err)
	}

	if err := f.local.ImportSnapshot(staging, meta.SnapLSN); err != nil {
		return err
	}
	_ = os.Remove(metaPath)
	f.applied.Store(meta.SnapLSN)
	if f.opt.Metrics != nil {
		f.opt.Metrics.SnapshotRestores.Inc()
	}
	if f.opt.OnSnapshot != nil {
		f.opt.OnSnapshot(meta.SnapLSN)
	}
	f.logf("cluster: follower %s: snapshot bootstrap complete at lsn %d (%d bytes)",
		f.opt.Name, meta.SnapLSN, total)
	return nil
}
