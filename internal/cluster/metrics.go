package cluster

import "github.com/urbancivics/goflow/internal/obs"

// Metrics are the cluster's observability counters, registered on the
// shared obs registry by the server wiring (nil disables them — every
// use site is nil-guarded, the same hook-struct pattern the docstore
// and WAL instrumentation follow).
type Metrics struct {
	// RouterFanouts counts fanned-out batch inserts.
	RouterFanouts *obs.Counter

	// ShippedRecords / ShippedBatches / ShippedBytes count replication
	// traffic the leader served to followers.
	ShippedRecords *obs.Counter
	ShippedBatches *obs.Counter
	ShippedBytes   *obs.Counter

	// AckTimeouts counts writes whose follower-ack quorum did not
	// arrive inside the ack timeout (the write is durable locally but
	// unacknowledged to the client).
	AckTimeouts *obs.Counter

	// AppliedRecords counts records a follower applied from its leader.
	AppliedRecords *obs.Counter
	// FollowerLag is the leader-durable-LSN minus follower-applied-LSN
	// gap observed on the follower's last batch.
	FollowerLag *obs.GaugeVec
	// Reconnects counts follower replication-session restarts.
	Reconnects *obs.Counter
	// Promotions counts follower promotions to leader.
	Promotions *obs.Counter
}

// NewMetrics registers the cluster metric families.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		RouterFanouts:  reg.Counter("cluster_router_fanout_total", "Fanned-out batch inserts"),
		ShippedRecords: reg.Counter("cluster_repl_shipped_records_total", "WAL records shipped to followers"),
		ShippedBatches: reg.Counter("cluster_repl_shipped_batches_total", "Replication batches shipped"),
		ShippedBytes:   reg.Counter("cluster_repl_shipped_bytes_total", "Replication payload bytes shipped"),
		AckTimeouts:    reg.Counter("cluster_repl_ack_timeout_total", "Writes not acknowledged by the follower quorum in time"),
		AppliedRecords: reg.Counter("cluster_repl_applied_records_total", "Records applied from the leader"),
		FollowerLag:    reg.GaugeVec("cluster_repl_follower_lag_records", "Leader durable LSN minus follower applied LSN", "follower"),
		Reconnects:     reg.Counter("cluster_repl_reconnect_total", "Follower replication session restarts"),
		Promotions:     reg.Counter("cluster_repl_promotion_total", "Follower promotions to leader"),
	}
}
