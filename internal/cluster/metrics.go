package cluster

import "github.com/urbancivics/goflow/internal/obs"

// Metrics are the cluster's observability counters, registered on the
// shared obs registry by the server wiring (nil disables them — every
// use site is nil-guarded, the same hook-struct pattern the docstore
// and WAL instrumentation follow).
type Metrics struct {
	// RouterFanouts counts fanned-out batch inserts.
	RouterFanouts *obs.Counter

	// ShippedRecords / ShippedBatches / ShippedBytes count replication
	// traffic the leader served to followers.
	ShippedRecords *obs.Counter
	ShippedBatches *obs.Counter
	ShippedBytes   *obs.Counter

	// AckTimeouts counts writes whose follower-ack quorum did not
	// arrive inside the ack timeout (the write is durable locally but
	// unacknowledged to the client).
	AckTimeouts *obs.Counter

	// AppliedRecords counts records a follower applied from its leader.
	AppliedRecords *obs.Counter
	// FollowerLag is the leader-durable-LSN minus follower-applied-LSN
	// gap observed on the follower's last batch.
	FollowerLag *obs.GaugeVec
	// Reconnects counts follower replication-session restarts.
	Reconnects *obs.Counter
	// Promotions counts follower promotions to leader.
	Promotions *obs.Counter

	// Term is the node's current election term.
	Term *obs.Gauge
	// Elections counts elections this node won.
	Elections *obs.Counter
	// FencingRejects counts writes rejected on a deposed leader with
	// ErrStaleTerm — each one is an ack the old timeline was not
	// allowed to hand out.
	FencingRejects *obs.Counter
	// SnapshotBytes counts checkpoint bytes a leader streamed to
	// snapshot-bootstrapping followers.
	SnapshotBytes *obs.Counter
	// SnapshotRestores counts completed follower snapshot bootstraps.
	SnapshotRestores *obs.Counter
	// FollowerCorruption counts corrupt-WAL errors a follower received
	// from its leader (localized by segment and offset in the logs) —
	// distinguishing disk damage from ordinary truncation.
	FollowerCorruption *obs.Counter
}

// NewMetrics registers the cluster metric families.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		RouterFanouts:  reg.Counter("cluster_router_fanout_total", "Fanned-out batch inserts"),
		ShippedRecords: reg.Counter("cluster_repl_shipped_records_total", "WAL records shipped to followers"),
		ShippedBatches: reg.Counter("cluster_repl_shipped_batches_total", "Replication batches shipped"),
		ShippedBytes:   reg.Counter("cluster_repl_shipped_bytes_total", "Replication payload bytes shipped"),
		AckTimeouts:    reg.Counter("cluster_repl_ack_timeout_total", "Writes not acknowledged by the follower quorum in time"),
		AppliedRecords: reg.Counter("cluster_repl_applied_records_total", "Records applied from the leader"),
		FollowerLag:    reg.GaugeVec("cluster_repl_follower_lag_records", "Leader durable LSN minus follower applied LSN", "follower"),
		Reconnects:     reg.Counter("cluster_repl_reconnect_total", "Follower replication session restarts"),
		Promotions:     reg.Counter("cluster_repl_promotion_total", "Follower promotions to leader"),

		Term:               reg.Gauge("cluster_term", "Current election term"),
		Elections:          reg.Counter("cluster_elections_total", "Elections won by this node"),
		FencingRejects:     reg.Counter("cluster_fencing_rejects_total", "Writes rejected on a deposed leader (stale term)"),
		SnapshotBytes:      reg.Counter("cluster_snapshot_transfer_bytes_total", "Snapshot bytes streamed to bootstrapping followers"),
		SnapshotRestores:   reg.Counter("cluster_snapshot_restore_total", "Completed follower snapshot bootstraps"),
		FollowerCorruption: reg.Counter("cluster_follower_corruption_total", "Corrupt leader WAL segments reported to a follower"),
	}
}
