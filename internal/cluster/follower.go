package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/series"
	"github.com/urbancivics/goflow/internal/storage"
)

// ErrNotLeader is returned for writes against a follower that has not
// been promoted. Followers serve reads (possibly stale by their
// replication lag) and reject every mutation.
var ErrNotLeader = errors.New("cluster: not the leader")

// FollowerOptions configure StartFollower.
type FollowerOptions struct {
	// Name is the follower's stable identity; the leader keys ack
	// tracking by it across reconnects. Required.
	Name string
	// Addr is the leader's replication listener address. Required.
	Addr string
	// Shard is the shard number announced in hello (bookkeeping only).
	Shard int
	// Dial overrides the transport (fault injectors, in-process pipes);
	// nil dials plain TCP.
	Dial func(addr string) (net.Conn, error)
	// FetchRecords / FetchBytes bound one requested batch (0 = leader
	// defaults).
	FetchRecords int
	FetchBytes   int
	// RetryInterval is the pause between replication-session attempts
	// after a failure (default 100ms).
	RetryInterval time.Duration
	// Term is the election term the follower believes current (0 on a
	// non-elected, PR 6 style pair — term checks are skipped then).
	// Fetches are stamped with it; the leader fences itself when it
	// sees a higher one.
	Term uint64
	// OnTerm, when non-nil, fires whenever the follower observes a
	// higher term on the wire (the election node persists it).
	OnTerm func(term uint64)
	// OnSnapshot, when non-nil, fires after a completed snapshot
	// bootstrap replaced the local history (the election node clears
	// its divergence marker here).
	OnSnapshot func(lsn uint64)
	// ForceSnapshot makes the first session bootstrap from a leader
	// snapshot unconditionally, discarding the local log — required
	// when this node previously led (its unacknowledged tail may
	// diverge from the history that won).
	ForceSnapshot bool
	// WrapSnapshot, when non-nil, wraps the snapshot staging file's
	// write path — the fault-injection seam the chaos tests use to
	// kill a transfer after a byte budget and prove resume-by-offset.
	WrapSnapshot func(w io.Writer) io.Writer
	// Logf receives diagnostic lines (corruption localization,
	// snapshot bootstrap progress). Nil logs via the log package.
	Logf func(format string, args ...any)
	// Metrics receives follower counters when non-nil.
	Metrics *Metrics
}

// Follower is a shard replica: it tails the leader's WAL over the
// replication protocol, applies every record to its own Local engine
// (memory and WAL both, so a restart recovers locally and resumes
// where it stopped), serves reads, and can be promoted to writable
// when the leader is lost.
//
// The follower's WAL assigns its own LSNs, but because it appends
// exactly the leader's records in leader order starting from the same
// empty log, the numbering coincides — a shipped record's local LSN is
// asserted equal to its leader LSN, so any divergence is caught the
// moment it happens rather than at failover.
type Follower struct {
	local *storage.Local
	opt   FollowerOptions

	applied  atomic.Uint64
	promoted atomic.Bool

	// term is the highest election term observed; fetches carry it.
	term atomic.Uint64
	// lastContact is the wall time (unix nanos) of the last successful
	// leader exchange — the follower half of the lease. An election
	// node reads it to decide the leader is gone.
	lastContact atomic.Int64
	// needSnap latches when the leader reports the log cannot serve
	// our position (truncated or diverged); the next session runs a
	// snapshot bootstrap before tailing.
	needSnap atomic.Bool

	cancel context.CancelFunc
	done   chan struct{}

	mu   sync.Mutex
	conn net.Conn
}

// StartFollower begins replicating from the leader at opts.Addr into
// local, which must be WAL-backed and opened with NoAttach (the
// follower appends shipped records itself; attaching would re-log
// every applied mutation). The replication loop retries failed
// sessions until Stop or Promote.
func StartFollower(local *storage.Local, opts FollowerOptions) (*Follower, error) {
	if local.WAL() == nil {
		return nil, errors.New("cluster: follower requires a WAL-backed engine")
	}
	if opts.Name == "" || opts.Addr == "" {
		return nil, errors.New("cluster: follower needs a name and a leader address")
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = 100 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		local:  local,
		opt:    opts,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	f.term.Store(opts.Term)
	f.lastContact.Store(time.Now().UnixNano())
	f.needSnap.Store(opts.ForceSnapshot)
	// Local recovery already replayed this WAL into the store; resume
	// fetching right after the last locally durable record.
	f.applied.Store(local.WAL().LastLSN())
	go f.run(ctx)
	return f, nil
}

// AppliedLSN is the highest leader LSN this follower has durably
// applied.
func (f *Follower) AppliedLSN() uint64 { return f.applied.Load() }

// Term is the highest election term the follower has observed.
func (f *Follower) Term() uint64 { return f.term.Load() }

// LastContact is the wall time of the last successful leader exchange.
func (f *Follower) LastContact() time.Time {
	return time.Unix(0, f.lastContact.Load())
}

// observeTerm adopts a higher term seen on the wire and notifies the
// election node.
func (f *Follower) observeTerm(term uint64) {
	for {
		cur := f.term.Load()
		if term <= cur {
			return
		}
		if f.term.CompareAndSwap(cur, term) {
			if f.opt.OnTerm != nil {
				f.opt.OnTerm(term)
			}
			return
		}
	}
}

// logf writes a diagnostic line.
func (f *Follower) logf(format string, args ...any) {
	if f.opt.Logf != nil {
		f.opt.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Promoted reports whether Promote has run.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Engine returns the follower as a storage.Engine: reads are served
// from the local replica, writes fail with ErrNotLeader until Promote.
func (f *Follower) Engine() storage.Engine { return (*followerEngine)(f) }

// Stop ends replication without promoting. Safe to call twice.
func (f *Follower) Stop() {
	f.cancel()
	f.mu.Lock()
	if f.conn != nil {
		_ = f.conn.Close()
	}
	f.mu.Unlock()
	<-f.done
}

// Promote ends replication and attaches the local WAL as a plain
// commit log, turning the replica into a writable single-node engine
// that has exactly the acknowledged history: every record the old
// leader's clients were acked (under a sync quorum that includes this
// follower) is in the local log by definition of the ack. Returns the
// now-writable engine.
func (f *Follower) Promote() storage.Engine {
	f.Stop()
	if f.promoted.CompareAndSwap(false, true) {
		docstore.AttachWAL(f.local.Store(), f.local.WAL())
		if f.opt.Metrics != nil {
			f.opt.Metrics.Promotions.Inc()
		}
	}
	return f.Engine()
}

// Close stops replication and closes the local engine.
func (f *Follower) Close() error {
	f.Stop()
	return f.local.Close()
}

// run is the replication loop: dial, stream, and on any failure retry
// a whole session (the fetch position is durable, so a re-shipped
// record is skipped idempotently). When the leader has reported our
// position unservable from the log, a session starts with a snapshot
// bootstrap instead of a fetch stream.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	first := true
	for ctx.Err() == nil {
		if !first {
			if f.opt.Metrics != nil {
				f.opt.Metrics.Reconnects.Inc()
			}
			select {
			case <-time.After(f.opt.RetryInterval):
			case <-ctx.Done():
				return
			}
		}
		first = false
		if f.needSnap.Load() {
			if err := f.bootstrapSnapshot(ctx); err != nil {
				continue
			}
			f.needSnap.Store(false)
		}
		_ = f.session(ctx)
	}
}

// session runs one replication connection until it fails or the
// follower stops.
func (f *Follower) session(ctx context.Context) error {
	nc, err := f.opt.Dial(f.opt.Addr)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.conn = nc
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		_ = nc.Close()
	}()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	r := bufio.NewReader(nc)
	if _, err := mq.WriteReplFrame(nc, &mq.ReplFrame{
		Op: mq.ReplOpHello, Shard: f.opt.Shard, Follower: f.opt.Name,
	}); err != nil {
		return err
	}
	hello, _, err := mq.ReadReplFrame(r)
	if err != nil {
		return err
	}
	switch hello.Op {
	case mq.ReplOpHello:
		f.observeTerm(hello.Term)
	case mq.ReplOpError:
		return f.onLeaderError(hello)
	default:
		return fmt.Errorf("cluster: leader greeted with %q", hello.Op)
	}
	for ctx.Err() == nil {
		applied := f.applied.Load()
		if _, err := mq.WriteReplFrame(nc, &mq.ReplFrame{
			Op:         mq.ReplOpFetch,
			From:       applied + 1,
			AppliedLSN: applied,
			Term:       f.term.Load(),
			MaxRecords: f.opt.FetchRecords,
			MaxBytes:   f.opt.FetchBytes,
		}); err != nil {
			return err
		}
		batch, _, err := mq.ReadReplFrame(r)
		if err != nil {
			return err
		}
		switch batch.Op {
		case mq.ReplOpBatch:
		case mq.ReplOpError:
			return f.onLeaderError(batch)
		default:
			return fmt.Errorf("cluster: unexpected frame %q", batch.Op)
		}
		// Any batch — even an empty heartbeat — renews the follower's
		// view of the leader lease.
		f.lastContact.Store(time.Now().UnixNano())
		f.observeTerm(batch.Term)
		if err := f.apply(batch.Records); err != nil {
			return err
		}
		if f.opt.Metrics != nil && batch.LeaderLSN >= f.applied.Load() {
			f.opt.Metrics.FollowerLag.With(f.opt.Name).Set(float64(batch.LeaderLSN - f.applied.Load()))
		}
	}
	return ctx.Err()
}

// onLeaderError reacts to a typed leader error frame: truncated and
// diverged positions latch a snapshot bootstrap for the next session,
// corruption is localized in the logs and counted, stale terms are
// adopted. The session always ends; run decides what the next one
// does.
func (f *Follower) onLeaderError(frame *mq.ReplFrame) error {
	switch frame.Code {
	case mq.ReplErrTruncated:
		f.needSnap.Store(true)
		f.logf("cluster: follower %s: leader truncated past lsn %d (checkpoint covers %d); bootstrapping from snapshot",
			f.opt.Name, f.applied.Load(), frame.SnapLSN)
	case mq.ReplErrDiverged:
		f.needSnap.Store(true)
		f.logf("cluster: follower %s: local log at %d diverged from leader (head %d); bootstrapping from snapshot",
			f.opt.Name, f.applied.Load(), frame.LeaderLSN)
	case mq.ReplErrCorrupt:
		if f.opt.Metrics != nil {
			f.opt.Metrics.FollowerCorruption.Inc()
		}
		f.logf("cluster: follower %s: leader WAL corrupt: segment %s offset %d: %s",
			f.opt.Name, frame.Segment, frame.Offset, frame.Error)
	case mq.ReplErrStaleTerm:
		f.observeTerm(frame.Term)
	case mq.ReplErrNotLeader:
		f.observeTerm(frame.Term)
	}
	return fmt.Errorf("cluster: leader error [%s]: %s", frame.Code, frame.Error)
}

// apply applies one shipped batch: decode each record, apply it to the
// store, append it to the local WAL, then wait out the last ticket
// (the group commit flushes the whole run) before advancing the
// durable applied position.
func (f *Follower) apply(records []mq.ReplRecord) error {
	if len(records) == 0 {
		return nil
	}
	w := f.local.WAL()
	store := f.local.Store()
	var lastTk interface{ Wait() error }
	var lastLSN uint64
	applied := f.applied.Load()
	for _, rec := range records {
		if rec.LSN <= applied {
			continue // idempotent re-ship after a reconnect
		}
		if rec.LSN != applied+1 {
			return fmt.Errorf("cluster: gap in shipped log: have %d, got %d", applied, rec.LSN)
		}
		m, err := docstore.DecodeMutation(rec.Payload)
		if err != nil {
			return err
		}
		if m.Op == 0 {
			m.Op = docstore.MutationOp(rec.Type)
		}
		// ApplyMutationAt carries the leader's LSN into the ingest
		// observer, so a follower's series view stays watermarked in
		// step with its store.
		if err := store.ApplyMutationAt(rec.LSN, m); err != nil {
			return err
		}
		tk, err := w.Append(rec.Type, rec.Payload)
		if err != nil {
			return err
		}
		if tk.LSN() != rec.LSN {
			return fmt.Errorf("cluster: local lsn %d diverged from leader lsn %d", tk.LSN(), rec.LSN)
		}
		lastTk, lastLSN = tk, rec.LSN
		applied = rec.LSN
	}
	if lastTk == nil {
		return nil
	}
	if err := lastTk.Wait(); err != nil {
		return err
	}
	f.applied.Store(lastLSN)
	if f.opt.Metrics != nil {
		f.opt.Metrics.AppliedRecords.Add(uint64(len(records)))
	}
	return nil
}

// followerEngine exposes the replica through the Engine interface with
// writes gated on promotion.
type followerEngine Follower

func (e *followerEngine) f() *Follower { return (*Follower)(e) }

func (e *followerEngine) writable() bool { return e.f().promoted.Load() }

func (e *followerEngine) Insert(col string, doc storage.Doc) (string, error) {
	if !e.writable() {
		return "", ErrNotLeader
	}
	return e.local.Insert(col, doc)
}

func (e *followerEngine) InsertMany(col string, docs []storage.Doc) ([]string, error) {
	if !e.writable() {
		return nil, ErrNotLeader
	}
	return e.local.InsertMany(col, docs)
}

func (e *followerEngine) Get(col, id string) (storage.Doc, error) {
	return e.local.Get(col, id)
}

func (e *followerEngine) Update(col, id string, fields storage.Doc) error {
	if !e.writable() {
		return ErrNotLeader
	}
	return e.local.Update(col, id, fields)
}

func (e *followerEngine) Unset(col, id string, fields ...string) error {
	if !e.writable() {
		return ErrNotLeader
	}
	return e.local.Unset(col, id, fields...)
}

func (e *followerEngine) Delete(col, id string) error {
	if !e.writable() {
		return ErrNotLeader
	}
	return e.local.Delete(col, id)
}

func (e *followerEngine) DeleteMany(col string, filter storage.Doc) (int, error) {
	if !e.writable() {
		return 0, ErrNotLeader
	}
	return e.local.DeleteMany(col, filter)
}

// Series queries are reads and serve from the replica's series view —
// a follower with -series answers rollup analytics without touching
// the leader.
func (e *followerEngine) SeriesZoneAggregate(ctx context.Context, zone string, from, to time.Time) (series.Agg, bool, error) {
	return e.local.SeriesZoneAggregate(ctx, zone, from, to)
}

func (e *followerEngine) SeriesNoisemap(ctx context.Context, from, to time.Time) (map[string]series.Agg, bool, error) {
	return e.local.SeriesNoisemap(ctx, from, to)
}

func (e *followerEngine) SeriesStats() (series.Stats, bool) {
	return e.local.SeriesStats()
}

func (e *followerEngine) SeriesZoneBuckets(ctx context.Context, zone string, from, to time.Time) ([]series.Bucket, bool, error) {
	return e.local.SeriesZoneBuckets(ctx, zone, from, to)
}

func (e *followerEngine) SeriesAllBuckets(ctx context.Context, from, to time.Time) (map[string][]series.Bucket, bool, error) {
	return e.local.SeriesAllBuckets(ctx, from, to)
}

func (e *followerEngine) FindContext(ctx context.Context, col string, filter storage.Doc, opts docstore.FindOptions) ([]storage.Doc, error) {
	return e.local.FindContext(ctx, col, filter, opts)
}

func (e *followerEngine) CountContext(ctx context.Context, col string, filter storage.Doc) (int, error) {
	return e.local.CountContext(ctx, col, filter)
}

func (e *followerEngine) EnsureIndex(col, field string) {
	// Index mutations replicate from the leader; a pre-promotion
	// EnsureIndex would desync the follower's commit history.
	if e.writable() {
		e.local.EnsureIndex(col, field)
	}
}

func (e *followerEngine) Collections() []string { return e.local.Collections() }

func (e *followerEngine) Stats(col string) docstore.Stats { return e.local.Stats(col) }

func (e *followerEngine) Checkpoint() error { return e.local.Checkpoint() }

func (e *followerEngine) Close() error { return e.f().Close() }

var _ storage.Engine = (*followerEngine)(nil)
