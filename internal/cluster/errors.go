package cluster

import (
	"errors"
	"fmt"
)

// ErrStaleTerm is returned for writes against a deposed leader: a
// newer term exists, so acknowledging the write could lose it — the
// new leader's history does not include anything this node accepts
// from now on. Fencing is what extends the zero-acked-loss invariant
// across automatic failover: a partitioned old leader starts rejecting
// writes (its lease expires) strictly before a successor can win an
// election, so no client ever holds an ack the surviving history lacks.
var ErrStaleTerm = errors.New("cluster: stale term: leader deposed")

// NotLeaderError is the typed "writes go elsewhere" rejection. It
// matches errors.Is(err, ErrNotLeader) always, and additionally
// matches the wrapped cause (ErrStaleTerm on a fenced ex-leader).
// Leader/Addr, when known, tell a resilient client where to re-dial —
// the REST layer surfaces them as an X-Leader-Hint header on a 503.
type NotLeaderError struct {
	// Leader is the believed current leader's name ("" = unknown).
	Leader string
	// Addr is that leader's address ("" = unknown).
	Addr string
	// Err is the underlying cause: ErrNotLeader (an unpromoted
	// follower) or ErrStaleTerm (a fenced, deposed leader).
	Err error
}

// Error formats the rejection with the redirect hint when present.
func (e *NotLeaderError) Error() string {
	cause := e.Err
	if cause == nil {
		cause = ErrNotLeader
	}
	switch {
	case e.Addr != "":
		return fmt.Sprintf("%v (current leader %s at %s)", cause, e.Leader, e.Addr)
	case e.Leader != "":
		return fmt.Sprintf("%v (current leader %s)", cause, e.Leader)
	}
	return cause.Error()
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *NotLeaderError) Unwrap() error {
	if e.Err == nil {
		return ErrNotLeader
	}
	return e.Err
}

// Is makes every NotLeaderError match ErrNotLeader, whatever the
// cause: a fenced leader is, operationally, not the leader.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// Hint returns the redirect target, preferring the address.
func (e *NotLeaderError) Hint() string {
	if e.Addr != "" {
		return e.Addr
	}
	return e.Leader
}
