package cluster_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/urbancivics/goflow/internal/cluster"
	"github.com/urbancivics/goflow/internal/obs"
)

// TestElectionMetricsExposition: the election observability families
// register on the shared registry and render through the real
// /metrics exposition path with their values — what an operator's
// scraper actually sees during a failover.
func TestElectionMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	m := cluster.NewMetrics(reg)

	m.Term.Set(7)
	m.Elections.Inc()
	m.Elections.Inc()
	m.FencingRejects.Inc()
	m.SnapshotBytes.Add(4096)

	ts := httptest.NewServer(obs.Handler(reg))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)

	for _, want := range []string{
		"# TYPE cluster_term gauge\n",
		"cluster_term 7\n",
		"# TYPE cluster_elections_total counter\n",
		"cluster_elections_total 2\n",
		"# TYPE cluster_fencing_rejects_total counter\n",
		"cluster_fencing_rejects_total 1\n",
		"# TYPE cluster_snapshot_transfer_bytes_total counter\n",
		"cluster_snapshot_transfer_bytes_total 4096\n",
		// The rest of the failover families must at least exist, so a
		// dashboard built against them never 404s on a fresh node.
		"# TYPE cluster_snapshot_restore_total counter\n",
		"# TYPE cluster_follower_corruption_total counter\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
