package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"github.com/urbancivics/goflow/internal/series"
	"github.com/urbancivics/goflow/internal/storage"
)

// Series queries under sharding. Observations shard by the anonymized
// contributor id, so one zone's points are spread across every shard
// and each shard's rollups are partial aggregates. Because every Agg
// field is mergeable (counts, sums, energy, min/max, histogram bins
// all add), merging the shard partials reproduces the single-node
// answer exactly — per-zone rollup maintenance needs no cross-shard
// coordination at ingest, only this merge at query time.

var _ storage.SeriesQuerier = (*Router)(nil)
var _ storage.RollupReader = (*Router)(nil)

// SeriesZoneAggregate implements storage.SeriesQuerier: fan out,
// merge the partial aggregates. The ok result is false when any shard
// has no series attached (the caller then falls back to a document
// scan, which fans out the ordinary way).
func (r *Router) SeriesZoneAggregate(ctx context.Context, zone string, from, to time.Time) (series.Agg, bool, error) {
	var (
		mu  sync.Mutex
		agg series.Agg
		ok  = true
	)
	err := r.fanOut(func(s storage.Engine) error {
		sq, is := s.(storage.SeriesQuerier)
		if !is {
			mu.Lock()
			ok = false
			mu.Unlock()
			return nil
		}
		a, has, err := sq.SeriesZoneAggregate(ctx, zone, from, to)
		if err != nil {
			return err
		}
		mu.Lock()
		if has {
			agg.Merge(&a)
		} else {
			ok = false
		}
		mu.Unlock()
		return nil
	})
	if err != nil || !ok {
		return series.Agg{}, ok, err
	}
	return agg, true, nil
}

// SeriesNoisemap implements storage.SeriesQuerier: fan out and merge
// the per-zone partial aggregates of every shard.
func (r *Router) SeriesNoisemap(ctx context.Context, from, to time.Time) (map[string]series.Agg, bool, error) {
	var (
		mu     sync.Mutex
		merged = make(map[string]series.Agg)
		ok     = true
	)
	err := r.fanOut(func(s storage.Engine) error {
		sq, is := s.(storage.SeriesQuerier)
		if !is {
			mu.Lock()
			ok = false
			mu.Unlock()
			return nil
		}
		m, has, err := sq.SeriesNoisemap(ctx, from, to)
		if err != nil {
			return err
		}
		mu.Lock()
		if has {
			for zone, a := range m {
				got := merged[zone]
				got.Merge(&a)
				merged[zone] = got
			}
		} else {
			ok = false
		}
		mu.Unlock()
		return nil
	})
	if err != nil || !ok {
		return nil, ok, err
	}
	return merged, true, nil
}

// SeriesZoneBuckets implements storage.RollupReader: each shard's
// bucket series merged bucket-by-bucket. Shards are visited in fixed
// index order — not the concurrent fan-out — so float summation order
// inside each merged Agg is identical run to run and the forecaster
// fitted over the result is bit-deterministic (the property the
// cluster-merge forecast test pins).
func (r *Router) SeriesZoneBuckets(ctx context.Context, zone string, from, to time.Time) ([]series.Bucket, bool, error) {
	merged := make(map[int64]*series.Agg)
	for _, s := range r.shards {
		rr, is := s.(storage.RollupReader)
		if !is {
			return nil, false, nil
		}
		bs, has, err := rr.SeriesZoneBuckets(ctx, zone, from, to)
		if err != nil {
			return nil, true, err
		}
		if !has {
			return nil, false, nil
		}
		mergeBuckets(merged, bs)
	}
	return sortedBuckets(merged), true, nil
}

// SeriesAllBuckets implements storage.RollupReader: the whole-city
// forecast sweep input, merged per zone in fixed shard order.
func (r *Router) SeriesAllBuckets(ctx context.Context, from, to time.Time) (map[string][]series.Bucket, bool, error) {
	merged := make(map[string]map[int64]*series.Agg)
	for _, s := range r.shards {
		rr, is := s.(storage.RollupReader)
		if !is {
			return nil, false, nil
		}
		m, has, err := rr.SeriesAllBuckets(ctx, from, to)
		if err != nil {
			return nil, true, err
		}
		if !has {
			return nil, false, nil
		}
		for zone, bs := range m {
			zm := merged[zone]
			if zm == nil {
				zm = make(map[int64]*series.Agg)
				merged[zone] = zm
			}
			mergeBuckets(zm, bs)
		}
	}
	out := make(map[string][]series.Bucket, len(merged))
	for zone, zm := range merged {
		out[zone] = sortedBuckets(zm)
	}
	return out, true, nil
}

func mergeBuckets(into map[int64]*series.Agg, bs []series.Bucket) {
	for i := range bs {
		a := into[bs[i].Start]
		if a == nil {
			a = &series.Agg{}
			into[bs[i].Start] = a
		}
		a.Merge(&bs[i].Agg)
	}
}

func sortedBuckets(m map[int64]*series.Agg) []series.Bucket {
	if len(m) == 0 {
		return nil
	}
	out := make([]series.Bucket, 0, len(m))
	for start, a := range m {
		out = append(out, series.Bucket{Start: start, Agg: *a})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// SeriesStats implements storage.SeriesQuerier: counters summed
// across shards (Zones sums per-shard zone counts, so a zone present
// on several shards counts once per shard; Watermark and
// RetentionFloor report the maximum).
func (r *Router) SeriesStats() (series.Stats, bool) {
	var agg series.Stats
	for _, s := range r.shards {
		sq, is := s.(storage.SeriesQuerier)
		if !is {
			return series.Stats{}, false
		}
		st, has := sq.SeriesStats()
		if !has {
			return series.Stats{}, false
		}
		agg.Points += st.Points
		agg.Partitions += st.Partitions
		agg.SealedChunks += st.SealedChunks
		agg.SealedBytes += st.SealedBytes
		agg.Zones += st.Zones
		agg.RollupBuckets += st.RollupBuckets
		if st.Watermark > agg.Watermark {
			agg.Watermark = st.Watermark
		}
		if st.RetentionFloor > agg.RetentionFloor {
			agg.RetentionFloor = st.RetentionFloor
		}
	}
	return agg, true
}
