package cluster

import (
	"fmt"
	"testing"
)

// TestHashKeyPinned pins the hash function itself: FNV-1a with the
// canonical constants. A change here silently re-homes every document
// on every deployment, so the test uses external reference values.
func TestHashKeyPinned(t *testing.T) {
	cases := map[string]uint64{
		"":       0xcbf29ce484222325, // offset basis
		"a":      0xaf63dc4c8601ec8c,
		"foobar": 0x85944171f73967e8,
	}
	for in, want := range cases {
		if got := HashKey(in); got != want {
			t.Errorf("HashKey(%q) = %#x, want %#x", in, got, want)
		}
	}
}

// TestShardForStableAndBalanced is the routing property test: over 10k
// synthetic device ids and every production shard count, assignments
// are (a) deterministic across calls and (b) balanced within 20% of
// the ideal per-shard share.
func TestShardForStableAndBalanced(t *testing.T) {
	const ids = 10_000
	keys := make([]string, ids)
	for i := range keys {
		// Shaped like the anonymized device ids goflow mints: a stable
		// prefix plus a hex token.
		keys[i] = fmt.Sprintf("anon-%08x", uint32(i)*2654435761)
	}
	for _, n := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			counts := make([]int, n)
			for _, k := range keys {
				s := ShardFor(k, n)
				if s < 0 || s >= n {
					t.Fatalf("ShardFor(%q, %d) = %d out of range", k, n, s)
				}
				if again := ShardFor(k, n); again != s {
					t.Fatalf("ShardFor(%q, %d) unstable: %d then %d", k, n, s, again)
				}
				counts[s]++
			}
			mean := float64(ids) / float64(n)
			for s, c := range counts {
				skew := (float64(c) - mean) / mean
				if skew < 0 {
					skew = -skew
				}
				if skew >= 0.20 {
					t.Errorf("shard %d holds %d of %d keys (skew %.1f%% >= 20%%); counts=%v",
						s, c, ids, skew*100, counts)
				}
			}
		})
	}
}

func TestShardForDegenerate(t *testing.T) {
	if ShardFor("anything", 1) != 0 || ShardFor("anything", 0) != 0 {
		t.Fatal("single-shard routing must pin to shard 0")
	}
}
