package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/series"
	"github.com/urbancivics/goflow/internal/storage"
	"github.com/urbancivics/goflow/internal/wal"
)

// Lease-based leader election. Every member of a replication group
// runs a Node: one listener speaking the whole replication protocol
// (fetch streams and snapshot transfers dispatch into the embedded
// Leader when this node leads; votes and pings are answered by the
// node itself), plus a state machine driven by a single tick loop.
//
// The lease rides on the PR 6 fetch/ack protocol — no new heartbeat
// channel. A leader's lease is "a quorum of followers fetched from me
// recently": every fetch refreshes that follower's contact time, and
// when majority-1 fresh contacts cannot be counted within LeaseTTL the
// leader fences itself (it can no longer prove a successor has not
// been elected). A follower's lease is "the leader answered my fetch
// recently": every batch frame — even an empty heartbeat — refreshes
// it, and a follower that has heard nothing for electAfter (2×TTL)
// suspects the leader and becomes a candidate.
//
// Safety comes from three interlocking rules:
//
//  1. A voter whose own lease is still valid denies every vote — a
//     healthy leader cannot be deposed by an impatient candidate.
//  2. A vote is granted only to a candidate whose (durable LSN, name)
//     is at least the voter's — with SyncFollowers >= majority-1,
//     every acknowledged write lives on a member of any possible
//     election majority, whose vote denial blocks behind candidates.
//  3. The old leader fences at LeaseTTL, strictly before any follower
//     candidacy at 2×TTL can succeed — so by the time a successor can
//     win, the old timeline has already stopped acknowledging writes.
//
// Durable election state (term, vote, led-this-term) lives in the WAL
// directory's node.manifest (wal.Manifest): a node that led and was
// deposed may hold an unacknowledged log tail, so the Led flag forces
// its next incarnation to bootstrap from the new leader's snapshot
// instead of trusting the local log.

// NodeState is the election state machine position.
type NodeState int32

const (
	// StateFollowing: tailing a leader, or probing for one.
	StateFollowing NodeState = iota
	// StateCandidate: soliciting votes (transient).
	StateCandidate
	// StateLeading: serving writes and shipping the log.
	StateLeading
	// StateFenced: deposed; rejects writes with ErrStaleTerm until the
	// process restarts. Terminal — a fenced ex-leader's log may hold a
	// divergent tail, so rejoining the group means restarting the node,
	// which the Led manifest flag routes through a snapshot bootstrap.
	StateFenced
)

// String returns the state name for logs.
func (s NodeState) String() string {
	switch s {
	case StateFollowing:
		return "following"
	case StateCandidate:
		return "candidate"
	case StateLeading:
		return "leading"
	case StateFenced:
		return "fenced"
	default:
		return fmt.Sprintf("NodeState(%d)", int32(s))
	}
}

// NodeOptions configure StartNode.
type NodeOptions struct {
	// Name is this member's stable identity. Required.
	Name string
	// Peers maps every OTHER member's name to its replication address.
	// The group size is len(Peers)+1; majorities derive from it.
	Peers map[string]string
	// Listener is this member's replication listener. Required.
	Listener net.Listener
	// AdvertiseAddr is the address peers should dial to reach this
	// member (default: the listener address).
	AdvertiseAddr string
	// LeaseTTL is the leader lease duration (default 2s). Followers
	// suspect the leader after 2×TTL without contact; the leader
	// fences itself after TTL without a quorum of follower contacts.
	LeaseTTL time.Duration
	// Shard is announced in replication hellos (bookkeeping only).
	Shard int
	// SyncFollowers overrides the ack quorum (default majority-1 —
	// the minimum that makes the zero-acked-loss invariant hold
	// across elections; see rule 2 above). Values below the default
	// weaken the invariant and are clamped up.
	SyncFollowers int
	// Dial overrides the transport (nil = TCP with a LeaseTTL-bounded
	// timeout).
	Dial func(addr string) (net.Conn, error)
	// Seed seeds the candidacy jitter (0 = derived from the name), so
	// chaos tests reproduce by seed.
	Seed int64
	// OnLead fires (from the node's tick goroutine) after this node
	// wins an election and its leader engine is serving — the server
	// wiring starts ingest here.
	OnLead func(term uint64)
	// AckTimeout / Heartbeat / AckRetention / SnapChunkBytes /
	// FetchRecords / FetchBytes / RetryInterval / WrapSnapshot / Logf
	// pass through to the embedded Leader and Follower.
	AckTimeout     time.Duration
	Heartbeat      time.Duration
	AckRetention   time.Duration
	SnapChunkBytes int
	FetchRecords   int
	FetchBytes     int
	RetryInterval  time.Duration
	WrapSnapshot   func(w io.Writer) io.Writer
	Logf           func(format string, args ...any)
	// Metrics receives cluster counters when non-nil.
	Metrics *Metrics
}

// Node is one member of a self-healing replication group.
type Node struct {
	local *storage.Local
	opt   NodeOptions

	quit chan struct{}
	kick chan struct{} // ForceElection
	wg   sync.WaitGroup
	rnd  *rand.Rand // tick goroutine only

	mu       sync.Mutex
	state    NodeState
	term     uint64
	votedFor string
	// led is the durable divergence marker: this node has led and may
	// hold a log tail the group never acknowledged. While set, follows
	// force a snapshot bootstrap and candidacies are refused (a raw LSN
	// comparison is meaningless across diverged timelines). Cleared
	// only when a snapshot restore replaces the local history.
	led        bool
	leaderName string
	leaderAddr string
	leader     *Leader
	follower   *Follower
	// lastFollower is the most recently stopped follower, retained so a
	// won election can route through its Promote path.
	lastFollower *Follower
	staleSince   time.Time // when we last had (or lost) leader contact
	// lastGrant renews the voter's lease: having just voted a leader
	// in, this node denies other candidacies until the winner's
	// replication stream takes over as the lease signal — closing the
	// usurpation window between an election and follower attach.
	lastGrant time.Time
	// leadSince grants a fresh leader grace before the self-fencing
	// check bites: followers need up to a probe cycle to attach, and
	// until they do FreshContacts is legitimately zero. The grace
	// (1.5×TTL) is strictly shorter than the 2×TTL follower lease, so
	// a leader that really is cut off still fences before any
	// successor can be elected.
	leadSince time.Time
	closed    bool

	conns map[net.Conn]struct{}
}

// StartNode loads durable election state and joins the group: it
// starts Following, finds (or elects) a leader, and from then on heals
// itself through leader failures with no operator action.
func StartNode(local *storage.Local, opt NodeOptions) (*Node, error) {
	if local.WAL() == nil {
		return nil, errors.New("cluster: node requires a WAL-backed engine")
	}
	if opt.Name == "" {
		return nil, errors.New("cluster: node needs a name")
	}
	if opt.Listener == nil {
		return nil, errors.New("cluster: node needs a replication listener")
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 2 * time.Second
	}
	if opt.AdvertiseAddr == "" {
		opt.AdvertiseAddr = opt.Listener.Addr().String()
	}
	if opt.Heartbeat <= 0 || opt.Heartbeat > opt.LeaseTTL/4 {
		// Fetch cadence bounds contact freshness on both lease halves;
		// it must beat the lease by a wide margin.
		opt.Heartbeat = opt.LeaseTTL / 4
	}
	if opt.Dial == nil {
		ttl := opt.LeaseTTL
		opt.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, ttl)
		}
	}
	if min := majority(len(opt.Peers)+1) - 1; opt.SyncFollowers < min {
		opt.SyncFollowers = min
	}
	seed := opt.Seed
	if seed == 0 {
		for _, c := range opt.Name {
			seed = seed*131 + int64(c)
		}
	}
	man, _, err := wal.LoadManifest(local.WAL().Dir())
	if err != nil {
		return nil, err
	}
	n := &Node{
		local:      local,
		opt:        opt,
		quit:       make(chan struct{}),
		kick:       make(chan struct{}, 1),
		rnd:        rand.New(rand.NewSource(seed)),
		state:      StateFollowing,
		term:       man.Term,
		votedFor:   man.VotedFor,
		led:        man.Led,
		staleSince: time.Now(),
		conns:      map[net.Conn]struct{}{},
	}
	if m := opt.Metrics; m != nil {
		m.Term.Set(float64(n.term))
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.tickLoop()
	return n, nil
}

// majority is the vote quorum for a group of n members.
func majority(n int) int { return n/2 + 1 }

// electAfter is how long a follower waits without leader contact
// before candidacy — double the leader's self-fencing TTL, so the old
// timeline is fenced before a new one can be chosen.
func (n *Node) electAfter() time.Duration { return 2 * n.opt.LeaseTTL }

// State returns the node's current election state.
func (n *Node) State() NodeState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Leader returns the believed leader's name and address ("" unknown).
func (n *Node) Leader() (name, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderName, n.leaderAddr
}

// ForceElection triggers an immediate candidacy, bypassing the lease
// wait — the SIGHUP manual override. No-op while leading or fenced.
func (n *Node) ForceElection() {
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// Engine exposes the node as a storage engine: reads always serve the
// local replica; writes route to the leader engine when leading (where
// fencing applies) and fail with a typed, hint-carrying NotLeaderError
// otherwise.
func (n *Node) Engine() storage.Engine { return &nodeEngine{n: n} }

// Close stops the node and closes the local engine.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	f, l := n.follower, n.leader
	n.follower, n.leader = nil, nil
	for c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	close(n.quit)
	_ = n.opt.Listener.Close()
	if f != nil {
		f.Stop()
	}
	n.wg.Wait()
	if l != nil {
		return l.Close() // closes the Local too
	}
	return n.local.Close()
}

// logf writes a diagnostic line.
func (n *Node) logf(format string, args ...any) {
	if n.opt.Logf != nil {
		n.opt.Logf(format, args...)
	}
}

// persistLocked saves the durable election state; the caller holds mu.
// Persist-before-act: a vote or term bump that is not on disk before
// the wire sees it could be forgotten by a restart and double-granted.
func (n *Node) persistLocked() {
	_ = wal.SaveManifest(n.local.WAL().Dir(), wal.Manifest{
		Term: n.term, VotedFor: n.votedFor, Led: n.led,
	})
	if m := n.opt.Metrics; m != nil {
		m.Term.Set(float64(n.term))
	}
}

// ---- tick loop: lease checks, probing, candidacy ----

func (n *Node) tickLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.opt.LeaseTTL / 4)
	defer ticker.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-ticker.C:
			n.tick(false)
		case <-n.kick:
			n.tick(true)
		}
	}
}

func (n *Node) tick(force bool) {
	n.mu.Lock()
	state := n.state
	n.mu.Unlock()
	switch state {
	case StateLeading:
		n.checkLeaderLease()
	case StateFollowing:
		n.checkFollowerLease(force)
	case StateFenced:
		// Terminal: a fenced node only answers votes and pings.
	}
}

// checkLeaderLease self-fences a leader that cannot count a quorum of
// fresh follower contacts: it can no longer prove no successor is
// being elected, and rule 3 requires it to stop acknowledging writes
// before one can win.
func (n *Node) checkLeaderLease() {
	n.mu.Lock()
	l := n.leader
	need := majority(len(n.opt.Peers)+1) - 1
	term := n.term
	grace := time.Since(n.leadSince) < 3*n.opt.LeaseTTL/2
	n.mu.Unlock()
	if l == nil || need <= 0 || grace {
		return // singleton group, or followers still attaching
	}
	if l.FreshContacts(n.opt.LeaseTTL) >= need {
		return
	}
	n.logf("cluster: node %s: leader lease expired at term %d (quorum contact lost); fencing", n.opt.Name, term)
	l.Depose(term, "", "") // OnDepose moves the state machine to Fenced
}

// checkFollowerLease watches the leader from below: a silent leader is
// dropped, a missing leader is probed for, and when no leader has been
// heard from for electAfter, the node runs for the job itself.
func (n *Node) checkFollowerLease(force bool) {
	now := time.Now()
	n.mu.Lock()
	f := n.follower
	if f != nil {
		if contact := f.LastContact(); now.Sub(contact) > n.electAfter() {
			n.follower = nil
			n.lastFollower = f
			n.leaderName, n.leaderAddr = "", ""
			n.staleSince = contact
			n.mu.Unlock()
			f.Stop()
			n.logf("cluster: node %s: leader silent for %v; probing for a successor", n.opt.Name, now.Sub(contact))
		} else if !force {
			n.mu.Unlock()
			return // healthy
		} else {
			// Manual override: abandon the current leader and run.
			n.follower = nil
			n.lastFollower = f
			n.leaderName, n.leaderAddr = "", ""
			n.staleSince = now.Add(-n.electAfter())
			n.mu.Unlock()
			f.Stop()
		}
	} else {
		n.mu.Unlock()
	}
	if force {
		// Manual override: no probing, no jitter, no pre-vote — run now.
		n.election(true)
		return
	}
	// No leader attached. Ask the group who leads now.
	if name, addr, term := n.probe(); name != "" && name != n.opt.Name {
		n.adoptLeader(name, addr, term)
		return
	}
	n.mu.Lock()
	stale := now.Sub(n.staleSince)
	n.mu.Unlock()
	if stale <= n.electAfter() {
		return
	}
	// Randomized candidacy delay de-synchronizes competing candidates
	// (the pre-vote LSN/name ordering resolves most races already).
	jitter := time.Duration(n.rnd.Int63n(int64(n.opt.LeaseTTL / 4)))
	select {
	case <-time.After(jitter):
	case <-n.quit:
		return
	}
	n.election(false)
}

// probe pings every peer and returns the highest-term FIRST-HAND
// leader claim — a peer saying "I lead", never "I believe X leads".
// Second-hand beliefs go stale exactly when they matter most (every
// surviving follower still names the dead leader right after it
// died), so trusting them would re-adopt a corpse in a loop.
func (n *Node) probe() (name, addr string, term uint64) {
	type claim struct {
		name, addr string
		term       uint64
	}
	results := make(chan claim, len(n.opt.Peers))
	for peerName, peerAddr := range n.opt.Peers {
		go func(peerName, peerAddr string) {
			resp, err := n.roundTrip(peerAddr, &mq.ReplFrame{Op: mq.ReplOpPing, Term: n.Term(), Follower: n.opt.Name})
			if err != nil || resp.Op != mq.ReplOpPingResp || resp.LeaderName != peerName {
				results <- claim{}
				return
			}
			results <- claim{name: resp.LeaderName, addr: resp.LeaderAddr, term: resp.Term}
		}(peerName, peerAddr)
	}
	var best claim
	for range n.opt.Peers {
		c := <-results
		if c.name != "" && (best.name == "" || c.term > best.term) {
			best = c
		}
	}
	return best.name, best.addr, best.term
}

// roundTrip sends one frame to addr and reads one response, bounded by
// the lease TTL.
func (n *Node) roundTrip(addr string, req *mq.ReplFrame) (*mq.ReplFrame, error) {
	nc, err := n.opt.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer func() { _ = nc.Close() }()
	_ = nc.SetDeadline(time.Now().Add(n.opt.LeaseTTL))
	if _, err := mq.WriteReplFrame(nc, req); err != nil {
		return nil, err
	}
	resp, _, err := mq.ReadReplFrame(bufio.NewReader(nc))
	return resp, err
}

// adoptLeader starts (or retargets) the follower at the discovered
// leader.
func (n *Node) adoptLeader(name, addr string, term uint64) {
	if addr == "" {
		addr = n.opt.Peers[name]
	}
	if addr == "" {
		return
	}
	n.mu.Lock()
	if n.closed || n.state != StateFollowing || n.follower != nil {
		n.mu.Unlock()
		return
	}
	if term > n.term {
		n.term = term
		n.votedFor = ""
		n.persistLocked()
	}
	n.leaderName, n.leaderAddr = name, addr
	fterm := n.term
	forceSnap := n.led // divergence marker: resync through a snapshot
	n.mu.Unlock()

	f, err := StartFollower(n.local, FollowerOptions{
		Name:          n.opt.Name,
		Addr:          addr,
		Shard:         n.opt.Shard,
		Dial:          n.opt.Dial,
		FetchRecords:  n.opt.FetchRecords,
		FetchBytes:    n.opt.FetchBytes,
		RetryInterval: n.retryInterval(),
		Term:          fterm,
		OnTerm:        n.observeWireTerm,
		OnSnapshot:    n.onSnapshotRestored,
		ForceSnapshot: forceSnap,
		WrapSnapshot:  n.opt.WrapSnapshot,
		Logf:          n.opt.Logf,
		Metrics:       n.opt.Metrics,
	})
	if err != nil {
		n.logf("cluster: node %s: cannot follow %s at %s: %v", n.opt.Name, name, addr, err)
		return
	}
	n.logf("cluster: node %s: following %s at %s (term %d)", n.opt.Name, name, addr, fterm)
	n.mu.Lock()
	if n.closed || n.state != StateFollowing {
		n.mu.Unlock()
		f.Stop()
		return
	}
	n.follower = f
	n.lastFollower = nil
	n.mu.Unlock()
}

func (n *Node) retryInterval() time.Duration {
	if n.opt.RetryInterval > 0 {
		return n.opt.RetryInterval
	}
	return n.opt.LeaseTTL / 8
}

// observeWireTerm records a higher term the follower saw on the wire.
func (n *Node) observeWireTerm(term uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if term > n.term {
		n.term = term
		n.votedFor = ""
		n.persistLocked()
	}
}

// onSnapshotRestored fires when the follower finished a snapshot
// bootstrap: the local history is now exactly the leader's, so the
// divergence marker can finally come down and this node may stand in
// elections again.
func (n *Node) onSnapshotRestored(lsn uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.led {
		n.led = false
		n.persistLocked()
	}
}

// ---- candidacy ----

// preVote polls the group with the prospective term without anyone
// committing state: a real candidacy (and its term increment) only
// proceeds when a majority says it would grant. An isolated node's
// pre-votes go unanswered, so a long partition cannot inflate the
// term and depose a healthy leader on heal.
func (n *Node) preVote(term, lastLSN uint64) bool {
	grants := 1 // self
	type answer struct {
		granted bool
		term    uint64
	}
	results := make(chan answer, len(n.opt.Peers))
	for _, addr := range n.opt.Peers {
		go func(addr string) {
			resp, err := n.roundTrip(addr, &mq.ReplFrame{
				Op: mq.ReplOpVote, Term: term, Candidate: n.opt.Name,
				LastLSN: lastLSN, PreVote: true,
			})
			if err != nil || resp.Op != mq.ReplOpVoteResp {
				results <- answer{}
				return
			}
			results <- answer{granted: resp.Granted, term: resp.Term}
		}(addr)
	}
	var higher uint64
	for range n.opt.Peers {
		a := <-results
		if a.granted {
			grants++
		} else if a.term > higher {
			higher = a.term
		}
	}
	if grants >= majority(len(n.opt.Peers)+1) {
		return true
	}
	// A denial that revealed a higher term still teaches us something.
	n.observeWireTerm(higher)
	return false
}

// election runs one candidacy round from the tick goroutine. force
// marks an operator-initiated candidacy: pre-vote is skipped and
// voters waive leader-stickiness (but never the log-freshness rule).
func (n *Node) election(force bool) {
	n.mu.Lock()
	if n.closed || n.state == StateLeading || n.state == StateFenced || n.follower != nil {
		n.mu.Unlock()
		return
	}
	if n.led && len(n.opt.Peers) > 0 {
		// A past leadership left a possibly-divergent tail; until a
		// snapshot bootstrap replaces it, this node's LSN cannot be
		// compared with anyone's and it must not stand.
		n.mu.Unlock()
		n.logf("cluster: node %s: skipping candidacy (unresynced ex-leader)", n.opt.Name)
		return
	}
	prospective := n.term + 1
	n.mu.Unlock()
	if !force && len(n.opt.Peers) > 0 && !n.preVote(prospective, n.local.WAL().DurableLSN()) {
		return
	}
	n.mu.Lock()
	if n.closed || n.state != StateFollowing || n.follower != nil {
		n.mu.Unlock()
		return
	}
	n.term++
	n.votedFor = n.opt.Name
	n.state = StateCandidate
	n.persistLocked()
	term := n.term
	n.mu.Unlock()

	lastLSN := n.local.WAL().DurableLSN()
	n.logf("cluster: node %s: candidate at term %d (durable lsn %d)", n.opt.Name, term, lastLSN)
	votes := 1 // self
	var higher uint64
	type result struct {
		granted bool
		term    uint64
	}
	results := make(chan result, len(n.opt.Peers))
	for _, addr := range n.opt.Peers {
		go func(addr string) {
			resp, err := n.roundTrip(addr, &mq.ReplFrame{
				Op: mq.ReplOpVote, Term: term, Candidate: n.opt.Name,
				LastLSN: lastLSN, Forced: force,
			})
			if err != nil || resp.Op != mq.ReplOpVoteResp {
				results <- result{}
				return
			}
			results <- result{granted: resp.Granted, term: resp.Term}
		}(addr)
	}
	for range n.opt.Peers {
		r := <-results
		if r.granted {
			votes++
		} else if r.term > higher {
			higher = r.term
		}
	}
	if votes >= majority(len(n.opt.Peers)+1) {
		n.lead(term)
		return
	}
	n.logf("cluster: node %s: election at term %d lost (%d votes)", n.opt.Name, term, votes)
	n.mu.Lock()
	if n.state == StateCandidate {
		n.state = StateFollowing
	}
	if higher > n.term {
		n.term = higher
		n.votedFor = ""
		n.persistLocked()
	}
	n.mu.Unlock()
}

// lead installs this node as the leader for term: promote the local
// replica (if it was following), wire the leader engine in, announce,
// and hand the write path to the caller via OnLead.
func (n *Node) lead(term uint64) {
	n.mu.Lock()
	if n.closed || n.state != StateCandidate || n.term != term {
		// The election was overtaken mid-flight (a vote granted to a
		// higher-term competitor, say); never strand the node in
		// Candidate — no tick path would ever move it again.
		if n.state == StateCandidate {
			n.state = StateFollowing
		}
		n.mu.Unlock()
		return
	}
	f := n.follower
	if f == nil {
		f = n.lastFollower
	}
	n.follower, n.lastFollower = nil, nil
	n.mu.Unlock()
	if f != nil {
		f.Promote() // the PR 6 promotion path: stop tailing, attach the WAL
	}
	ldr, err := NewLeader(n.local, nil, LeaderOptions{
		SyncFollowers:  n.opt.SyncFollowers,
		AckTimeout:     n.opt.AckTimeout,
		Heartbeat:      n.opt.Heartbeat,
		Term:           term,
		OnDepose:       n.onDeposed,
		AckRetention:   n.ackRetention(),
		SnapChunkBytes: n.opt.SnapChunkBytes,
		Metrics:        n.opt.Metrics,
	})
	if err != nil {
		n.logf("cluster: node %s: cannot start leader engine: %v", n.opt.Name, err)
		n.mu.Lock()
		if n.state == StateCandidate {
			n.state = StateFollowing
		}
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = ldr.Close()
		return
	}
	n.state = StateLeading
	n.leader = ldr
	n.led = true
	n.leadSince = time.Now()
	n.leaderName, n.leaderAddr = n.opt.Name, n.opt.AdvertiseAddr
	n.persistLocked()
	n.mu.Unlock()
	if m := n.opt.Metrics; m != nil {
		m.Elections.Inc()
	}
	n.logf("cluster: node %s: leading at term %d", n.opt.Name, term)
	// Announce, so followers retarget without waiting out a probe
	// cycle.
	for _, addr := range n.opt.Peers {
		go func(addr string) {
			_, _ = n.roundTrip(addr, &mq.ReplFrame{
				Op: mq.ReplOpPing, Term: term,
				LeaderName: n.opt.Name, LeaderAddr: n.opt.AdvertiseAddr,
			})
		}(addr)
	}
	if n.opt.OnLead != nil {
		n.opt.OnLead(term)
	}
}

// ackRetention defaults dead-follower ack expiry to 10 lease TTLs, so
// a long-dead follower eventually stops pinning WAL history and
// rejoins via snapshot transfer.
func (n *Node) ackRetention() time.Duration {
	if n.opt.AckRetention > 0 {
		return n.opt.AckRetention
	}
	return 10 * n.opt.LeaseTTL
}

// onDeposed is the leader's OnDepose hook: move the state machine to
// Fenced (terminal).
func (n *Node) onDeposed(newTerm uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == StateFenced {
		return
	}
	if newTerm > n.term {
		n.term = newTerm
		n.votedFor = ""
	}
	n.state = StateFenced
	// The hint must not point at this (now-fenced) node; the successor
	// is learned through pings.
	if n.leaderName == n.opt.Name {
		n.leaderName, n.leaderAddr = "", ""
	}
	n.persistLocked()
	n.logf("cluster: node %s: fenced at term %d", n.opt.Name, n.term)
}

// ---- request handling (accept loop) ----

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		nc, err := n.opt.Listener.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = nc.Close()
			return
		}
		n.conns[nc] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.serveConn(nc)
	}
}

func (n *Node) serveConn(nc net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, nc)
		n.mu.Unlock()
		_ = nc.Close()
	}()
	r := bufio.NewReader(nc)
	for {
		frame, _, err := mq.ReadReplFrame(r)
		if err != nil {
			return
		}
		switch frame.Op {
		case mq.ReplOpVote:
			if _, err := mq.WriteReplFrame(nc, n.onVoteRequest(frame)); err != nil {
				return
			}
		case mq.ReplOpPing:
			if _, err := mq.WriteReplFrame(nc, n.onPing(frame)); err != nil {
				return
			}
		case mq.ReplOpHello, mq.ReplOpSnap:
			n.serveReplication(nc, r, frame)
			return
		default:
			return
		}
	}
}

// serveReplication hands a fetch stream or snapshot transfer to the
// leader engine, or redirects the caller at who we believe leads.
func (n *Node) serveReplication(nc net.Conn, r *bufio.Reader, first *mq.ReplFrame) {
	n.mu.Lock()
	l := n.leader
	leading := n.state == StateLeading && l != nil
	name, addr := n.leaderName, n.leaderAddr
	term := n.term
	n.mu.Unlock()
	if !leading {
		replError(nc, mq.ReplErrNotLeader, "not the leader", func(f *mq.ReplFrame) {
			f.Term = term
			f.LeaderName, f.LeaderAddr = name, addr
		})
		return
	}
	release, ok := l.Track(nc)
	if !ok {
		return
	}
	defer release()
	l.ServeSession(nc, r, first)
}

// onVoteRequest applies the vote rules (see the package comment).
func (n *Node) onVoteRequest(req *mq.ReplFrame) *mq.ReplFrame {
	if req.PreVote {
		// Non-binding poll: answer with the same rules but change
		// nothing — not the term, not the vote, not the leader. A node
		// mid-candidacy also denies: its own election is in flight, and
		// pre-granting a competitor would hand that competitor an
		// inflated term that — should it then lose the real vote —
		// fences the freshly elected leader through its first fetch.
		// Denying is free here precisely because pre-votes are
		// non-binding: the challenger just retries after this election
		// resolves, and the lease rules take it from there.
		n.mu.Lock()
		grant := !n.closed && req.Term >= n.term &&
			n.state != StateCandidate &&
			!n.leaseValidLocked() &&
			n.candidateCurrentLocked(req.LastLSN, req.Candidate, false)
		resp := &mq.ReplFrame{Op: mq.ReplOpVoteResp, Granted: grant, Term: n.term, PreVote: true}
		n.mu.Unlock()
		return resp
	}
	var deposeLeader *Leader
	n.mu.Lock()
	grant := false
	switch {
	case n.closed:
	case req.Term < n.term:
	case req.Term == n.term && n.votedFor != "" && n.votedFor != req.Candidate:
		// One vote per term, persisted before it hits the wire.
	case !req.Forced && n.leaseValidLocked():
		// Rule 1: a live leader is not deposed by impatience. No term
		// adoption here either — an impatient candidate must not be
		// able to talk a healthy group into a new term. An operator's
		// forced candidacy waives this rule (and only this rule).
	case !n.candidateCurrentLocked(req.LastLSN, req.Candidate, req.Forced):
		// Rule 2: never elect a history that misses acknowledged
		// writes this node holds. The term is still real evidence of
		// an election in progress: adopt it, so this node's own
		// (better-qualified) candidacy does not start a term behind.
		if req.Term > n.term {
			n.term = req.Term
			n.votedFor = ""
			n.persistLocked()
		}
	default:
		grant = true
		if req.Term > n.term {
			n.term = req.Term
		}
		n.votedFor = req.Candidate
		// Granting resets this node's own election clock too: having
		// just helped elect someone, it must give the winner a full
		// lease to show up before campaigning itself — otherwise a
		// cold-boot race lets the loser inflate the term and depose
		// the freshly elected leader through its first fetch.
		n.lastGrant = time.Now()
		n.staleSince = n.lastGrant
		if n.state == StateLeading && n.leader != nil {
			// Granting a vote at a higher term concedes leadership.
			deposeLeader = n.leader
		} else if n.state == StateCandidate {
			// A candidate that just voted for someone better stands
			// down; its own in-flight lead() will see the term moved.
			n.state = StateFollowing
		}
		n.persistLocked()
	}
	resp := &mq.ReplFrame{Op: mq.ReplOpVoteResp, Granted: grant, Term: n.term}
	n.mu.Unlock()
	if deposeLeader != nil {
		deposeLeader.Depose(req.Term, req.Candidate, "")
	}
	return resp
}

// candidateCurrentLocked orders candidacies: higher durable LSN wins,
// ties break toward the lexically smaller name — which makes the
// automatic-failover winner deterministic instead of racing split
// votes. A forced (operator) candidacy drops the name tie-break so
// any fully-caught-up node can be promoted on purpose; the LSN rule
// itself is never waived.
func (n *Node) candidateCurrentLocked(lastLSN uint64, candidate string, forced bool) bool {
	our := n.local.WAL().DurableLSN()
	if lastLSN != our {
		return lastLSN > our
	}
	return forced || candidate <= n.opt.Name
}

// leaseValidLocked reports whether this node has recent evidence of a
// live leader (itself included) and must therefore deny votes.
func (n *Node) leaseValidLocked() bool {
	switch n.state {
	case StateLeading:
		// A live leader always says no: whether IT should still lead
		// is the self-fencing check's job, and a truly partitioned
		// leader's denial never reaches anyone anyway.
		return n.leader != nil
	case StateFollowing:
		if n.follower != nil && time.Since(n.follower.LastContact()) <= n.electAfter() {
			return true
		}
		// A fresh vote grant counts as leader evidence until the
		// winner's stream attaches.
		return time.Since(n.lastGrant) <= n.electAfter()
	default:
		return false
	}
}

// onPing answers leadership probes and absorbs announcements.
func (n *Node) onPing(req *mq.ReplFrame) *mq.ReplFrame {
	var deposeLeader *Leader
	var stopFollower *Follower
	n.mu.Lock()
	if req.Term > n.term {
		n.term = req.Term
		n.votedFor = ""
		if req.LeaderName != "" && req.LeaderName != n.opt.Name {
			if n.state == StateLeading && n.leader != nil {
				deposeLeader = n.leader
			} else if n.follower != nil && n.leaderName != req.LeaderName {
				// Following a deposed leader: retarget next tick.
				stopFollower = n.follower
				n.follower = nil
			}
			// Fenced nodes track this too: their not-leader redirects
			// should point clients at the successor.
			n.leaderName, n.leaderAddr = req.LeaderName, req.LeaderAddr
		}
		n.persistLocked()
	} else if req.Term == n.term && req.LeaderName != "" && req.LeaderName != n.opt.Name &&
		n.state == StateFollowing && n.leaderName == "" {
		// Same-term announcement (we probably voted for the winner).
		n.leaderName, n.leaderAddr = req.LeaderName, req.LeaderAddr
	}
	resp := &mq.ReplFrame{Op: mq.ReplOpPingResp, Term: n.term}
	if n.state == StateLeading {
		resp.LeaderName, resp.LeaderAddr = n.opt.Name, n.opt.AdvertiseAddr
	} else {
		resp.LeaderName, resp.LeaderAddr = n.leaderName, n.leaderAddr
	}
	reqTerm := req.Term
	n.mu.Unlock()
	if deposeLeader != nil {
		deposeLeader.Depose(reqTerm, req.LeaderName, req.LeaderAddr)
	}
	if stopFollower != nil {
		stopFollower.Stop()
	}
	return resp
}

// ---- engine ----

// nodeEngine routes reads to the local replica and writes to the
// current leader engine (or a typed redirect error).
type nodeEngine struct{ n *Node }

// writeTarget resolves the engine writes go through right now.
func (e *nodeEngine) writeTarget() (storage.Engine, error) {
	n := e.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leader != nil {
		return n.leader, nil // fencing applies inside the commit log
	}
	if n.leaderName != "" && n.leaderName != n.opt.Name {
		return nil, &NotLeaderError{Leader: n.leaderName, Addr: n.leaderAddr, Err: ErrNotLeader}
	}
	return nil, &NotLeaderError{Err: ErrNotLeader}
}

func (e *nodeEngine) Insert(col string, doc storage.Doc) (string, error) {
	t, err := e.writeTarget()
	if err != nil {
		return "", err
	}
	return t.Insert(col, doc)
}

func (e *nodeEngine) InsertMany(col string, docs []storage.Doc) ([]string, error) {
	t, err := e.writeTarget()
	if err != nil {
		return nil, err
	}
	return t.InsertMany(col, docs)
}

func (e *nodeEngine) Update(col, id string, fields storage.Doc) error {
	t, err := e.writeTarget()
	if err != nil {
		return err
	}
	return t.Update(col, id, fields)
}

func (e *nodeEngine) Unset(col, id string, fields ...string) error {
	t, err := e.writeTarget()
	if err != nil {
		return err
	}
	return t.Unset(col, id, fields...)
}

func (e *nodeEngine) Delete(col, id string) error {
	t, err := e.writeTarget()
	if err != nil {
		return err
	}
	return t.Delete(col, id)
}

func (e *nodeEngine) DeleteMany(col string, filter storage.Doc) (int, error) {
	t, err := e.writeTarget()
	if err != nil {
		return 0, err
	}
	return t.DeleteMany(col, filter)
}

func (e *nodeEngine) EnsureIndex(col, field string) {
	// Index builds replicate through the leader's log; a follower
	// building one locally would fork its commit history.
	if t, err := e.writeTarget(); err == nil {
		t.EnsureIndex(col, field)
	}
}

func (e *nodeEngine) Get(col, id string) (storage.Doc, error) { return e.n.local.Get(col, id) }

func (e *nodeEngine) FindContext(ctx context.Context, col string, filter storage.Doc, opts docstore.FindOptions) ([]storage.Doc, error) {
	return e.n.local.FindContext(ctx, col, filter, opts)
}

func (e *nodeEngine) CountContext(ctx context.Context, col string, filter storage.Doc) (int, error) {
	return e.n.local.CountContext(ctx, col, filter)
}

func (e *nodeEngine) Collections() []string { return e.n.local.Collections() }

func (e *nodeEngine) Stats(col string) docstore.Stats { return e.n.local.Stats(col) }

func (e *nodeEngine) Checkpoint() error { return e.n.local.Checkpoint() }

func (e *nodeEngine) Close() error { return e.n.Close() }

// Series queries are reads and serve from the local replica's series
// view, whichever role the node is in — same shape as followerEngine.

func (e *nodeEngine) SeriesZoneAggregate(ctx context.Context, zone string, from, to time.Time) (series.Agg, bool, error) {
	return e.n.local.SeriesZoneAggregate(ctx, zone, from, to)
}

func (e *nodeEngine) SeriesNoisemap(ctx context.Context, from, to time.Time) (map[string]series.Agg, bool, error) {
	return e.n.local.SeriesNoisemap(ctx, from, to)
}

func (e *nodeEngine) SeriesStats() (series.Stats, bool) {
	return e.n.local.SeriesStats()
}

func (e *nodeEngine) SeriesZoneBuckets(ctx context.Context, zone string, from, to time.Time) ([]series.Bucket, bool, error) {
	return e.n.local.SeriesZoneBuckets(ctx, zone, from, to)
}

func (e *nodeEngine) SeriesAllBuckets(ctx context.Context, from, to time.Time) (map[string][]series.Bucket, bool, error) {
	return e.n.local.SeriesAllBuckets(ctx, from, to)
}
