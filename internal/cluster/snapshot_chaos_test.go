package cluster_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/cluster"
	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/faults"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/obs"
	"github.com/urbancivics/goflow/internal/storage"
	"github.com/urbancivics/goflow/internal/wal"
)

// dumpEngine renders an engine's entire document state canonically:
// one JSON line per doc, prefixed by its collection, sorted. Two
// engines with identical logical state produce byte-identical dumps
// regardless of iteration or arrival order (gob snapshots themselves
// are not byte-stable, so state equality is asserted here instead).
func dumpEngine(t *testing.T, eng storage.Engine) string {
	t.Helper()
	var lines []string
	for _, col := range eng.Collections() {
		docs, err := eng.FindContext(t.Context(), col, nil, docstore.FindOptions{})
		if err != nil {
			t.Fatalf("dump %s: %v", col, err)
		}
		for _, d := range docs {
			data, err := json.Marshal(d) // map marshal sorts keys
			if err != nil {
				t.Fatal(err)
			}
			lines = append(lines, col+"\t"+string(data))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// openSnapShard opens a Local tuned for truncation-heavy snapshot
// tests: every flush seals a WAL segment, so a checkpoint can actually
// drop history.
func openSnapShard(t testing.TB, dir string) *storage.Local {
	t.Helper()
	l, err := storage.OpenLocal(storage.LocalOptions{
		WALDir:       dir,
		Policy:       wal.FsyncGrouped,
		NoAttach:     true,
		SegmentBytes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestSnapshotRejoinAfterTruncation: a follower that was offline while
// the leader checkpointed past its position cannot catch up from the
// log — it must bootstrap from a snapshot transfer, then resume
// tailing, and end byte-identical to a follower that replicated every
// record live.
func TestSnapshotRejoinAfterTruncation(t *testing.T) {
	dir := t.TempDir()
	mts := cluster.NewMetrics(obs.NewRegistry())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ldr, err := cluster.NewLeader(openSnapShard(t, filepath.Join(dir, "leader")), ln, cluster.LeaderOptions{
		Heartbeat:    25 * time.Millisecond,
		AckRetention: 100 * time.Millisecond,
		Metrics:      mts,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ldr.Close() }()

	for i := 0; i < 200; i++ {
		if _, err := ldr.Insert("obs", storage.Doc{"device": fmt.Sprintf("d%d", i%7), "seq": i}); err != nil {
			t.Fatal(err)
		}
	}
	fdir := filepath.Join(dir, "laggard")
	f1, err := cluster.StartFollower(openSnapShard(t, fdir), cluster.FollowerOptions{
		Name: "laggard", Addr: ldr.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f1, ldr.WAL().LastLSN())
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}

	// History moves on while the follower is down; its ack entry
	// expires, so the checkpoint is free to truncate its tail away.
	for i := 200; i < 400; i++ {
		if _, err := ldr.Insert("obs", storage.Doc{"device": "late", "seq": i}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(150 * time.Millisecond) // > AckRetention: the laggard's bound expires
	if err := ldr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Prove the log really is gone below the checkpoint — otherwise
	// this test would silently degrade into a plain catch-up.
	if _, err := ldr.WAL().ReadFrom(201, 10, 1<<20); err == nil {
		t.Fatal("leader retained the laggard's tail; checkpoint did not truncate")
	}

	f2, err := cluster.StartFollower(openSnapShard(t, fdir), cluster.FollowerOptions{
		Name: "laggard", Addr: ldr.Addr(), Metrics: mts, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f2.Close() }()
	waitCaughtUp(t, f2, ldr.WAL().LastLSN())
	if mts.SnapshotRestores.Value() == 0 {
		t.Fatal("rejoin did not go through a snapshot bootstrap")
	}
	if mts.SnapshotBytes.Value() == 0 {
		t.Fatal("leader served no snapshot bytes")
	}

	// The log tail above the snapshot still ships normally.
	for i := 400; i < 430; i++ {
		if _, err := ldr.Insert("obs", storage.Doc{"device": "tail", "seq": i}); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, f2, ldr.WAL().LastLSN())
	if n, err := f2.Engine().CountContext(t.Context(), "obs", nil); err != nil || n != 430 {
		t.Fatalf("rejoined replica count = %d, %v; want 430", n, err)
	}

	// Byte-equality against a follower that never missed a record.
	fresh, err := cluster.StartFollower(openSnapShard(t, filepath.Join(dir, "fresh")), cluster.FollowerOptions{
		Name: "fresh", Addr: ldr.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fresh.Close() }()
	waitCaughtUp(t, fresh, ldr.WAL().LastLSN())
	if got, want := dumpEngine(t, f2.Engine()), dumpEngine(t, fresh.Engine()); got != want {
		t.Fatalf("snapshot-rejoined state differs from fresh replica:\nrejoined %d bytes, fresh %d bytes", len(got), len(want))
	}
}

// snoopConn records everything the follower writes, so the test can
// read the resume offset straight off the wire.
type snoopConn struct {
	net.Conn
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (c *snoopConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	c.buf.Write(b)
	c.mu.Unlock()
	return c.Conn.Write(b)
}

// sentFrames parses the captured stream back into replication frames.
func sentFrames(t *testing.T, mu *sync.Mutex, buf *bytes.Buffer) []*mq.ReplFrame {
	t.Helper()
	mu.Lock()
	data := append([]byte(nil), buf.Bytes()...)
	mu.Unlock()
	var frames []*mq.ReplFrame
	for len(data) >= 4 {
		n := int(binary.BigEndian.Uint32(data[:4]))
		if len(data) < 4+n {
			break
		}
		var f mq.ReplFrame
		if err := json.Unmarshal(data[4:4+n], &f); err != nil {
			t.Fatalf("snooped frame: %v", err)
		}
		frames = append(frames, &f)
		data = data[4+n:]
	}
	return frames
}

// TestSnapshotTransferInterruptedResume is the seeded torn-transfer
// chaos test: a follower bootstrapping from a leader snapshot dies
// mid-download at a seed-chosen byte (torn staging write), restarts,
// and must resume the transfer from the staged offset — not from zero
// — then converge to a state byte-identical to a replica that never
// crashed. The resume is asserted on the wire: the restarted
// follower's snapshot request carries exactly the staged byte count.
func TestSnapshotTransferInterruptedResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test; skipped in -short")
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			mts := cluster.NewMetrics(obs.NewRegistry())
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			ldr, err := cluster.NewLeader(openSnapShard(t, filepath.Join(dir, "leader")), ln, cluster.LeaderOptions{
				Heartbeat:      25 * time.Millisecond,
				SnapChunkBytes: 4096,
				Metrics:        mts,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = ldr.Close() }()

			// Enough payload that the snapshot spans many chunks.
			for i := 0; i < 300; i++ {
				if _, err := ldr.Insert("obs", storage.Doc{
					"device": fmt.Sprintf("dev-%03d", i%11),
					"seq":    i,
					"note":   strings.Repeat("x", 64),
				}); err != nil {
					t.Fatal(err)
				}
			}
			// Checkpoint with no followers known: the whole log below the
			// snapshot is dropped, so any joiner must transfer.
			if err := ldr.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			st, err := os.Stat(ldr.SnapshotPath())
			if err != nil {
				t.Fatal(err)
			}
			size := int(st.Size())
			// A log tail above the snapshot, so the rejoin also proves the
			// snapshot-then-tail handoff.
			for i := 300; i < 320; i++ {
				if _, err := ldr.Insert("obs", storage.Doc{"device": "tail", "seq": i}); err != nil {
					t.Fatal(err)
				}
			}

			// Attempt 1: tear the staging write at a seed-chosen byte in
			// the second half of the transfer, then "crash" the follower
			// before it can retry.
			budget := size/2 + int(seed*997)%(size/2-1)
			fdir := filepath.Join(dir, "joiner")
			// The first transfer attempt tears at the seeded byte; every
			// retry before the "crash" lands fails its first write, so the
			// stage is frozen exactly at the tear point until the restart.
			attempts := 0
			f1, err := cluster.StartFollower(openSnapShard(t, fdir), cluster.FollowerOptions{
				Name: "joiner", Addr: ldr.Addr(),
				RetryInterval: 25 * time.Millisecond,
				WrapSnapshot: func(w io.Writer) io.Writer {
					attempts++
					if attempts == 1 {
						return faults.NewWriter(w, budget)
					}
					return faults.NewWriter(w, 0)
				},
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			staging := filepath.Join(fdir, filepath.Base(ldr.SnapshotPath())+".incoming")
			deadline := time.Now().Add(10 * time.Second)
			for {
				if st, err := os.Stat(staging); err == nil && st.Size() >= int64(budget) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("torn transfer never staged %d bytes", budget)
				}
				time.Sleep(5 * time.Millisecond)
			}
			if err := f1.Close(); err != nil {
				t.Fatal(err)
			}
			st, err = os.Stat(staging)
			if err != nil {
				t.Fatal(err)
			}
			staged := st.Size()
			if staged <= 0 || staged >= int64(size) {
				t.Fatalf("staged %d bytes of %d; tear did not land mid-transfer", staged, size)
			}

			// Attempt 2: restart on the same directory, snooping the wire.
			var mu sync.Mutex
			var sent bytes.Buffer
			f2, err := cluster.StartFollower(openSnapShard(t, fdir), cluster.FollowerOptions{
				Name: "joiner", Addr: ldr.Addr(), Metrics: mts, Logf: t.Logf,
				Dial: func(addr string) (net.Conn, error) {
					nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
					if err != nil {
						return nil, err
					}
					return &snoopConn{Conn: nc, mu: &mu, buf: &sent}, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = f2.Close() }()
			waitCaughtUp(t, f2, ldr.WAL().LastLSN())
			if mts.SnapshotRestores.Value() != 1 {
				t.Fatalf("snapshot restores = %d, want 1", mts.SnapshotRestores.Value())
			}

			// The restarted follower asked the leader to resume at the
			// staged offset — the torn bytes were never re-transferred.
			resumed := false
			for _, f := range sentFrames(t, &mu, &sent) {
				if f.Op == mq.ReplOpSnap {
					if f.Offset != staged {
						t.Fatalf("snapshot request offset = %d, want staged %d", f.Offset, staged)
					}
					resumed = true
				}
			}
			if !resumed {
				t.Fatal("restarted follower never sent a snapshot request")
			}

			// Converged, and byte-identical to a replica that never tore.
			if n, err := f2.Engine().CountContext(t.Context(), "obs", nil); err != nil || n != 320 {
				t.Fatalf("rejoined replica count = %d, %v; want 320", n, err)
			}
			fresh, err := cluster.StartFollower(openSnapShard(t, filepath.Join(dir, "fresh")), cluster.FollowerOptions{
				Name: "fresh", Addr: ldr.Addr(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = fresh.Close() }()
			waitCaughtUp(t, fresh, ldr.WAL().LastLSN())
			if got, want := dumpEngine(t, f2.Engine()), dumpEngine(t, fresh.Engine()); got != want {
				t.Fatalf("torn-and-resumed state differs from fresh replica:\nrejoined %d bytes, fresh %d bytes", len(got), len(want))
			}
		})
	}
}
