package cluster

import (
	"bufio"
	"net"
	"time"

	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/wal"
)

// Leader side of the log-shipping protocol (see internal/mq/repl.go
// for the wire contract). One goroutine per follower connection; the
// stream is follower-driven pull, so the leader holds no per-follower
// send state beyond the ack tracker.

func (l *Leader) serve(ln net.Listener) {
	defer l.serveWG.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			_ = nc.Close()
			return
		}
		l.conns[nc] = struct{}{}
		l.serveWG.Add(1)
		l.mu.Unlock()
		go l.handle(nc)
	}
}

func (l *Leader) handle(nc net.Conn) {
	defer l.serveWG.Done()
	defer func() {
		l.mu.Lock()
		delete(l.conns, nc)
		l.mu.Unlock()
		_ = nc.Close()
	}()
	r := bufio.NewReader(nc)
	hello, _, err := mq.ReadReplFrame(r)
	if err != nil || hello.Op != mq.ReplOpHello {
		return
	}
	follower := hello.Follower
	if follower == "" {
		follower = nc.RemoteAddr().String()
	}
	w := l.WAL()
	if _, err := mq.WriteReplFrame(nc, &mq.ReplFrame{
		Op: mq.ReplOpHello, Shard: hello.Shard, LeaderLSN: w.DurableLSN(),
	}); err != nil {
		return
	}
	for {
		req, _, err := mq.ReadReplFrame(r)
		if err != nil || req.Op != mq.ReplOpFetch {
			return
		}
		// Every fetch is also an ack: the follower has durably applied
		// everything below AppliedLSN.
		l.acks.update(follower, req.AppliedLSN)
		maxRecs, maxBytes := req.MaxRecords, req.MaxBytes
		if maxRecs <= 0 || maxRecs > l.opt.BatchRecords {
			maxRecs = l.opt.BatchRecords
		}
		if maxBytes <= 0 || maxBytes > l.opt.BatchBytes {
			maxBytes = l.opt.BatchBytes
		}
		recs, err := l.readBatch(req.From, maxRecs, maxBytes)
		if err != nil {
			_, _ = mq.WriteReplFrame(nc, &mq.ReplFrame{Op: mq.ReplOpError, Error: err.Error()})
			return
		}
		batch := &mq.ReplFrame{Op: mq.ReplOpBatch, LeaderLSN: w.DurableLSN()}
		var payloadBytes int
		for _, rec := range recs {
			batch.Records = append(batch.Records, mq.ReplRecord{LSN: rec.LSN, Type: rec.Type, Payload: rec.Payload})
			payloadBytes += len(rec.Payload)
		}
		if _, err := mq.WriteReplFrame(nc, batch); err != nil {
			return
		}
		if m := l.opt.Metrics; m != nil {
			m.ShippedBatches.Inc()
			m.ShippedRecords.Add(uint64(len(recs)))
			m.ShippedBytes.Add(uint64(payloadBytes))
		}
	}
}

// readBatch reads records from the WAL starting at from, long-polling
// up to the heartbeat interval when the follower is caught up. The
// notify channel is armed before the read, so a commit landing between
// the read and the wait cannot be missed.
func (l *Leader) readBatch(from uint64, maxRecs, maxBytes int) ([]wal.Record, error) {
	w := l.WAL()
	deadline := time.Now().Add(l.opt.Heartbeat)
	for {
		notify := w.DurableNotify()
		recs, err := w.ReadFrom(from, maxRecs, maxBytes)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			return recs, nil
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, nil // heartbeat: empty batch
		}
		timer := time.NewTimer(wait)
		select {
		case <-notify:
			timer.Stop()
		case <-timer.C:
			return nil, nil
		}
	}
}
