package cluster

import (
	"bufio"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"time"

	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/wal"
)

// Leader side of the log-shipping protocol (see internal/mq/repl.go
// for the wire contract). One goroutine per follower connection; the
// stream is follower-driven pull, so the leader holds no per-follower
// send state beyond the ack tracker.
//
// Two session kinds share the listener: a hello opens a fetch stream
// (log tailing), a snap opens a snapshot transfer (checkpoint
// streaming for a follower the truncated log can no longer serve).
// An election Node owns its own listener and dispatches these same
// two ops into ServeSession, so the standalone accept loop below is
// only used by non-elected (PR 6 style) leaders.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func (l *Leader) serve(ln net.Listener) {
	defer l.serveWG.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !l.track(nc) {
			_ = nc.Close()
			return
		}
		go func() {
			defer l.serveWG.Done()
			defer l.untrack(nc)
			r := bufio.NewReader(nc)
			first, _, err := mq.ReadReplFrame(r)
			if err != nil {
				return
			}
			l.ServeSession(nc, r, first)
		}()
	}
}

// track registers a connection for teardown on Close/Depose; false
// means the leader is closed.
func (l *Leader) track(nc net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.conns[nc] = struct{}{}
	l.serveWG.Add(1)
	return true
}

func (l *Leader) untrack(nc net.Conn) {
	l.mu.Lock()
	delete(l.conns, nc)
	l.mu.Unlock()
	_ = nc.Close()
}

// Track registers an externally accepted connection (an election
// Node's dispatcher) so Depose/Close tear it down; the returned
// release must be called when the session ends. ok is false when the
// leader is closed.
func (l *Leader) Track(nc net.Conn) (release func(), ok bool) {
	if !l.track(nc) {
		return nil, false
	}
	return func() {
		l.serveWG.Done()
		l.mu.Lock()
		delete(l.conns, nc)
		l.mu.Unlock()
	}, true
}

// ServeSession runs one replication session whose first frame has
// already been read: a fetch stream for hello, a snapshot transfer for
// snap. It returns when the session ends; the caller owns the
// connection lifecycle.
func (l *Leader) ServeSession(nc net.Conn, r *bufio.Reader, first *mq.ReplFrame) {
	switch first.Op {
	case mq.ReplOpHello:
		l.serveFetch(nc, r, first)
	case mq.ReplOpSnap:
		l.serveSnapshot(nc, first)
	}
}

// replError writes a typed error frame.
func replError(nc net.Conn, code, msg string, decorate func(*mq.ReplFrame)) {
	f := &mq.ReplFrame{Op: mq.ReplOpError, Code: code, Error: msg}
	if decorate != nil {
		decorate(f)
	}
	_, _ = mq.WriteReplFrame(nc, f)
}

// serveFetch is the fetch/batch stream: every fetch acks follower
// progress, every batch carries the leader's term and durable LSN.
func (l *Leader) serveFetch(nc net.Conn, r *bufio.Reader, hello *mq.ReplFrame) {
	follower := hello.Follower
	if follower == "" {
		follower = nc.RemoteAddr().String()
	}
	if l.fenced.Load() {
		name, addr := l.hint()
		replError(nc, mq.ReplErrNotLeader, "leader deposed", func(f *mq.ReplFrame) {
			f.Term = l.term.Load()
			f.LeaderName, f.LeaderAddr = name, addr
		})
		return
	}
	w := l.WAL()
	if _, err := mq.WriteReplFrame(nc, &mq.ReplFrame{
		Op: mq.ReplOpHello, Shard: hello.Shard, LeaderLSN: w.DurableLSN(), Term: l.term.Load(),
	}); err != nil {
		return
	}
	for {
		req, _, err := mq.ReadReplFrame(r)
		if err != nil || req.Op != mq.ReplOpFetch {
			return
		}
		// Term discipline. A fetch carrying a higher term proves a
		// newer election committed somewhere: this leader is deposed
		// and must fence before serving (or accepting) anything else.
		// A lower-term fetch is a follower that missed the election
		// that elected us; it adopts our term from the error frame.
		if term := l.term.Load(); term != 0 && req.Term != 0 {
			if req.Term > term {
				l.Depose(req.Term, "", "")
				replError(nc, mq.ReplErrStaleTerm, "leader deposed by higher term", func(f *mq.ReplFrame) {
					f.Term = req.Term
				})
				return
			}
			if req.Term < term {
				replError(nc, mq.ReplErrStaleTerm, "fetch from older term", func(f *mq.ReplFrame) {
					f.Term = term
				})
				return
			}
		}
		if l.fenced.Load() {
			name, addr := l.hint()
			replError(nc, mq.ReplErrNotLeader, "leader deposed", func(f *mq.ReplFrame) {
				f.Term = l.term.Load()
				f.LeaderName, f.LeaderAddr = name, addr
			})
			return
		}
		// Every fetch is also an ack: the follower has durably applied
		// everything below AppliedLSN.
		l.acks.update(follower, req.AppliedLSN)
		// A fetch position above our log head means the follower holds
		// records we never had — a deposed ex-leader's unacked tail.
		// It must discard its log and bootstrap from a snapshot.
		if req.From > w.LastLSN()+1 {
			replError(nc, mq.ReplErrDiverged, "fetch position beyond leader log", func(f *mq.ReplFrame) {
				f.LeaderLSN = w.DurableLSN()
			})
			return
		}
		maxRecs, maxBytes := req.MaxRecords, req.MaxBytes
		if maxRecs <= 0 || maxRecs > l.opt.BatchRecords {
			maxRecs = l.opt.BatchRecords
		}
		if maxBytes <= 0 || maxBytes > l.opt.BatchBytes {
			maxBytes = l.opt.BatchBytes
		}
		recs, err := l.readBatch(req.From, maxRecs, maxBytes)
		if err != nil {
			l.writeFetchError(nc, err)
			return
		}
		batch := &mq.ReplFrame{Op: mq.ReplOpBatch, LeaderLSN: w.DurableLSN(), Term: l.term.Load()}
		var payloadBytes int
		for _, rec := range recs {
			batch.Records = append(batch.Records, mq.ReplRecord{LSN: rec.LSN, Type: rec.Type, Payload: rec.Payload})
			payloadBytes += len(rec.Payload)
		}
		if _, err := mq.WriteReplFrame(nc, batch); err != nil {
			return
		}
		if m := l.opt.Metrics; m != nil {
			m.ShippedBatches.Inc()
			m.ShippedRecords.Add(uint64(len(recs)))
			m.ShippedBytes.Add(uint64(payloadBytes))
		}
	}
}

// writeFetchError maps a WAL read failure onto the wire: a truncated
// position tells the follower to snapshot-bootstrap (with the LSN the
// leader's checkpoint covers), a corrupt sealed segment is localized
// by file and offset, anything else is opaque.
func (l *Leader) writeFetchError(nc net.Conn, err error) {
	var corrupt *wal.CorruptionError
	switch {
	case errors.Is(err, wal.ErrTruncated):
		replError(nc, mq.ReplErrTruncated, err.Error(), func(f *mq.ReplFrame) {
			f.SnapLSN = l.CheckpointLSN()
		})
	case errors.As(err, &corrupt):
		replError(nc, mq.ReplErrCorrupt, err.Error(), func(f *mq.ReplFrame) {
			f.Segment = corrupt.Segment
			f.Offset = corrupt.Offset
		})
	default:
		replError(nc, "", err.Error(), nil)
	}
}

// serveSnapshot streams the latest checkpoint from the requested byte
// offset in CRC-framed chunks. The file handle stays open across the
// whole transfer, so a concurrent checkpoint renaming a newer snapshot
// into place cannot tear this one mid-stream; the follower detects a
// changed snapshot between resumed sessions by SnapLSN/SnapSize and
// restarts from offset 0.
func (l *Leader) serveSnapshot(nc net.Conn, req *mq.ReplFrame) {
	if l.fenced.Load() {
		name, addr := l.hint()
		replError(nc, mq.ReplErrNotLeader, "leader deposed", func(f *mq.ReplFrame) {
			f.LeaderName, f.LeaderAddr = name, addr
		})
		return
	}
	f, lsn, size, err := l.ExportSnapshot()
	if err != nil {
		replError(nc, mq.ReplErrNoSnapshot, err.Error(), nil)
		return
	}
	defer func() { _ = f.Close() }()
	offset := req.Offset
	if offset < 0 || offset > size {
		offset = 0
	}
	buf := make([]byte, l.opt.SnapChunkBytes)
	for offset < size {
		n, err := f.ReadAt(buf, offset)
		if n == 0 {
			if err != nil && err != io.EOF {
				replError(nc, "", err.Error(), nil)
			}
			return
		}
		chunk := buf[:n]
		if _, err := mq.WriteReplFrame(nc, &mq.ReplFrame{
			Op:      mq.ReplOpSnapChunk,
			Offset:  offset,
			Data:    chunk,
			CRC:     crc32.Checksum(chunk, crcTable),
			SnapLSN: lsn, SnapSize: size,
		}); err != nil {
			return
		}
		offset += int64(n)
		if m := l.opt.Metrics; m != nil {
			m.SnapshotBytes.Add(uint64(n))
		}
	}
	// Zero-length snapshots still need the follower to learn SnapLSN
	// and SnapSize; send one empty terminal chunk.
	if size == 0 {
		_, _ = mq.WriteReplFrame(nc, &mq.ReplFrame{
			Op: mq.ReplOpSnapChunk, SnapLSN: lsn, SnapSize: 0,
		})
	}
}

// readBatch reads records from the WAL starting at from, long-polling
// up to the heartbeat interval when the follower is caught up. The
// notify channel is armed before the read, so a commit landing between
// the read and the wait cannot be missed.
func (l *Leader) readBatch(from uint64, maxRecs, maxBytes int) ([]wal.Record, error) {
	w := l.WAL()
	deadline := time.Now().Add(l.opt.Heartbeat)
	for {
		notify := w.DurableNotify()
		recs, err := w.ReadFrom(from, maxRecs, maxBytes)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			return recs, nil
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, nil // heartbeat: empty batch
		}
		timer := time.NewTimer(wait)
		select {
		case <-notify:
			timer.Stop()
		case <-timer.C:
			return nil, nil
		}
	}
}
