package goflow

import (
	"bytes"
	"io"
	"net"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/obs"
)

// lostReplyConn black-holes the read direction on demand so a publish
// response can be dropped deterministically (forcing a retry).
type lostReplyConn struct {
	net.Conn
	block     atomic.Bool
	closeOnce sync.Once
	closed    chan struct{}
}

func (c *lostReplyConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if c.block.Load() {
		<-c.closed
		return 0, io.EOF
	}
	return n, err
}

func (c *lostReplyConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// The resilience counters must flow from a recovering client conn to
// the Prometheus exposition: mq_reconnects_total,
// mq_replayed_topology_total and mq_publish_retries_total.
func TestMetricsExposeConnResilienceCounters(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)

	broker := mq.NewBroker()
	srv, err := mq.NewServer(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); broker.Close() })

	var first *lostReplyConn
	var dials atomic.Int32
	conn, err := mq.DialResilient(srv.Addr(), mq.ReconnectConfig{
		Dialer: func(addr string) (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 1 {
				first = &lostReplyConn{Conn: nc, closed: make(chan struct{})}
				return first, nil
			}
			return nc, nil
		},
		BackoffBase: time.Millisecond,
		Seed:        1,
		RPCTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	m.InstrumentConn(conn)

	if err := conn.DeclareExchange("E.m", mq.Fanout); err != nil {
		t.Fatal(err)
	}
	if err := conn.DeclareQueue("Q.m", mq.QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := conn.BindQueue("Q.m", "E.m", ""); err != nil {
		t.Fatal(err)
	}

	// Lose the response to the next publish: the conn must time out,
	// reconnect (replaying 3 journal entries) and retry the publish.
	first.block.Store(true)
	if _, err := conn.Publish("E.m", "k", nil, []byte("m")); err != nil {
		t.Fatalf("publish across lost response: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for conn.Stats().Reconnects < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("reconnect not recorded: %+v", conn.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	counter := func(name string) int {
		t.Helper()
		re := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`)
		match := re.FindStringSubmatch(out)
		if match == nil {
			t.Fatalf("family %s missing from exposition:\n%s", name, out)
		}
		n, err := strconv.Atoi(match[1])
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := counter("mq_reconnects_total"); got != 1 {
		t.Errorf("mq_reconnects_total = %d, want 1", got)
	}
	if got := counter("mq_replayed_topology_total"); got != 3 {
		t.Errorf("mq_replayed_topology_total = %d, want 3 (exchange, queue, binding)", got)
	}
	if got := counter("mq_publish_retries_total"); got < 1 {
		t.Errorf("mq_publish_retries_total = %d, want >= 1", got)
	}
}
