package goflow

import (
	"sort"
	"sync"
	"time"

	"github.com/urbancivics/goflow/internal/sensing"
)

// Analytics generates statistics about app and client operations
// (Figure 2's "crowd-sensing analytics" component): ingest counters
// per app, per client and per device model, plus error counters.
type Analytics struct {
	mu       sync.Mutex
	perApp   map[string]*AppAnalytics
	started  time.Time
	ingested uint64
	rejected uint64
}

// AppAnalytics aggregates one app's activity.
type AppAnalytics struct {
	AppID      string            `json:"appId"`
	Ingested   uint64            `json:"ingested"`
	Localized  uint64            `json:"localized"`
	ByModel    map[string]uint64 `json:"byModel"`
	ByClient   map[string]uint64 `json:"byClient"`
	LastIngest time.Time         `json:"lastIngest"`
}

// NewAnalytics returns an empty analytics sink.
func NewAnalytics() *Analytics {
	return &Analytics{
		perApp:  make(map[string]*AppAnalytics),
		started: time.Now(),
	}
}

// RecordIngest counts one stored observation.
func (a *Analytics) RecordIngest(appID, anonClientID, model string, localized bool, at time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ingested++
	st, ok := a.perApp[appID]
	if !ok {
		st = &AppAnalytics{
			AppID:    appID,
			ByModel:  make(map[string]uint64),
			ByClient: make(map[string]uint64),
		}
		a.perApp[appID] = st
	}
	st.Ingested++
	if localized {
		st.Localized++
	}
	st.ByModel[model]++
	st.ByClient[anonClientID]++
	if at.After(st.LastIngest) {
		st.LastIngest = at
	}
}

// RecordIngestBatch counts a run of stored observations from one
// client under a single lock acquisition; receivedAt[i] stamps
// observations[i]. Equivalent to calling RecordIngest per observation.
func (a *Analytics) RecordIngestBatch(appID, anonClientID string, observations []*sensing.Observation, receivedAt []time.Time) {
	if len(observations) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ingested += uint64(len(observations))
	st, ok := a.perApp[appID]
	if !ok {
		st = &AppAnalytics{
			AppID:    appID,
			ByModel:  make(map[string]uint64),
			ByClient: make(map[string]uint64),
		}
		a.perApp[appID] = st
	}
	st.Ingested += uint64(len(observations))
	st.ByClient[anonClientID] += uint64(len(observations))
	for i, o := range observations {
		if o.Localized() {
			st.Localized++
		}
		st.ByModel[o.DeviceModel]++
		if receivedAt[i].After(st.LastIngest) {
			st.LastIngest = receivedAt[i]
		}
	}
}

// RecordRejection counts one rejected (invalid) message.
func (a *Analytics) RecordRejection() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rejected++
}

// Summary is the global analytics snapshot.
type Summary struct {
	Ingested uint64   `json:"ingested"`
	Rejected uint64   `json:"rejected"`
	Apps     []string `json:"apps"`
}

// Summary snapshots the global counters.
func (a *Analytics) Summary() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	apps := make([]string, 0, len(a.perApp))
	for id := range a.perApp {
		apps = append(apps, id)
	}
	sort.Strings(apps)
	return Summary{Ingested: a.ingested, Rejected: a.rejected, Apps: apps}
}

// ForApp snapshots one app's analytics (deep copy).
func (a *Analytics) ForApp(appID string) (AppAnalytics, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.perApp[appID]
	if !ok {
		return AppAnalytics{}, false
	}
	cp := AppAnalytics{
		AppID:      st.AppID,
		Ingested:   st.Ingested,
		Localized:  st.Localized,
		ByModel:    make(map[string]uint64, len(st.ByModel)),
		ByClient:   make(map[string]uint64, len(st.ByClient)),
		LastIngest: st.LastIngest,
	}
	for k, v := range st.ByModel {
		cp.ByModel[k] = v
	}
	for k, v := range st.ByClient {
		cp.ByClient[k] = v
	}
	return cp, true
}
