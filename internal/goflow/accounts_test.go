package goflow

import (
	"errors"
	"strings"
	"testing"
)

func newAccounts(t *testing.T) *Accounts {
	t.Helper()
	a, err := NewAccounts()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRegisterAppAndDuplicate(t *testing.T) {
	a := newAccounts(t)
	app, err := a.RegisterApp("SC", "SoundCity", DataPolicy{SharedFields: []string{"spl"}})
	if err != nil {
		t.Fatal(err)
	}
	if app.Secret == "" {
		t.Fatal("app must get a secret")
	}
	if _, err := a.RegisterApp("SC", "again", DataPolicy{}); !errors.Is(err, ErrAppExists) {
		t.Fatalf("duplicate register = %v, want ErrAppExists", err)
	}
	if _, err := a.RegisterApp("", "noname", DataPolicy{}); err == nil {
		t.Fatal("empty app id must fail")
	}
	got, err := a.App("SC")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "SoundCity" || len(got.Policy.SharedFields) != 1 {
		t.Fatalf("App() = %+v", got)
	}
	if _, err := a.App("nope"); !errors.Is(err, ErrAppNotFound) {
		t.Fatalf("missing app = %v", err)
	}
}

func TestRegisterClient(t *testing.T) {
	a := newAccounts(t)
	if _, err := a.RegisterClient("SC", RoleClient); !errors.Is(err, ErrAppNotFound) {
		t.Fatalf("client for missing app = %v", err)
	}
	if _, err := a.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	c, err := a.RegisterClient("SC", RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == "" || c.AnonID == "" || c.AppID != "SC" {
		t.Fatalf("client = %+v", c)
	}
	got, err := a.Client(c.ID)
	if err != nil || got.AnonID != c.AnonID {
		t.Fatalf("Client() = %+v, %v", got, err)
	}
	if err := a.RemoveClient(c.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Client(c.ID); !errors.Is(err, ErrClientNotFound) {
		t.Fatalf("removed client lookup = %v", err)
	}
	if err := a.RemoveClient(c.ID); !errors.Is(err, ErrClientNotFound) {
		t.Fatalf("double remove = %v", err)
	}
}

func TestAnonymizeStableOneWayDistinct(t *testing.T) {
	a := newAccounts(t)
	id1 := a.Anonymize("client-1")
	id2 := a.Anonymize("client-1")
	id3 := a.Anonymize("client-2")
	if id1 != id2 {
		t.Fatal("anonymization must be stable per client")
	}
	if id1 == id3 {
		t.Fatal("different clients must get different anon ids")
	}
	if !strings.HasPrefix(id1, "anon-") {
		t.Fatalf("anon id %q lacks prefix", id1)
	}
	if strings.Contains(id1, "client-1") {
		t.Fatal("anon id must not leak the client id")
	}
	// A fresh account manager (fresh key) maps the same client
	// differently — the mapping is keyed, not a plain hash.
	b := newAccounts(t)
	if b.Anonymize("client-1") == id1 {
		t.Fatal("anonymization must depend on the instance key")
	}
}

func TestAuthenticateApp(t *testing.T) {
	a := newAccounts(t)
	app, err := a.RegisterApp("SC", "SoundCity", DataPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AuthenticateApp("SC", app.Secret); err != nil {
		t.Fatalf("valid auth failed: %v", err)
	}
	if err := a.AuthenticateApp("SC", "wrong"); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("wrong secret = %v", err)
	}
	if err := a.AuthenticateApp("nope", app.Secret); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("missing app = %v", err)
	}
}

func TestAppsSorted(t *testing.T) {
	a := newAccounts(t)
	for _, id := range []string{"zz", "aa", "mm"} {
		if _, err := a.RegisterApp(id, id, DataPolicy{}); err != nil {
			t.Fatal(err)
		}
	}
	got := a.Apps()
	if len(got) != 3 || got[0] != "aa" || got[2] != "zz" {
		t.Fatalf("Apps() = %v", got)
	}
}

func TestRoleString(t *testing.T) {
	if RoleClient.String() != "client" || RoleManager.String() != "manager" || RoleAdmin.String() != "admin" {
		t.Fatal("role names wrong")
	}
}
