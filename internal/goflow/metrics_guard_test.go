package goflow

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/obs"
	"github.com/urbancivics/goflow/internal/sensing"
)

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestGuardAndFlowMetricsExposition checks the overload-protection
// families flow into /metrics: guard_* from admission decisions,
// mq_flow_* from queue watermark transitions and
// mq_dropped_overflow_total from MaxLen drops.
func TestGuardAndFlowMetricsExposition(t *testing.T) {
	broker := mq.NewBroker()
	store := docstore.NewStore()
	server, err := NewServer(ServerConfig{
		Broker: broker,
		Store:  store,
		Admission: AdmissionConfig{
			RatePerDevice: 1,
			RateBurst:     1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	reg := obs.NewRegistry()
	Instrument(reg, server, store)
	handler := NewInstrumentedHTTPHandler(server, reg)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}

	// One admitted query, one admitted ingest, one rate-limited ingest.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/apps/SC/observations", nil))
	if rec.Code != 200 {
		t.Fatalf("query = %d", rec.Code)
	}
	o := obsAt(t, "A", 50, false, time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC))
	post := func() int {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/apps/SC/observations",
			jsonBody(t, ingestRequest{ClientID: "c", Observations: []*sensing.Observation{o}}))
		req.Header.Set("X-Device-ID", "dev-1")
		handler.ServeHTTP(rec, req)
		return rec.Code
	}
	if got := post(); got != 201 {
		t.Fatalf("first ingest = %d, want 201", got)
	}
	if got := post(); got != 429 {
		t.Fatalf("second ingest = %d, want 429", got)
	}

	// Flow + overflow traffic on the broker side.
	if err := broker.DeclareExchange("x", mq.Direct); err != nil {
		t.Fatal(err)
	}
	if err := broker.DeclareQueue("flowq", mq.QueueOptions{HighWatermark: 2}); err != nil {
		t.Fatal(err)
	}
	if err := broker.BindQueue("flowq", "x", "flow"); err != nil {
		t.Fatal(err)
	}
	if err := broker.DeclareQueue("overq", mq.QueueOptions{MaxLen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := broker.BindQueue("overq", "x", "over"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := broker.Publish("x", "flow", nil, []byte("m")); err != nil {
			t.Fatal(err)
		}
		if _, err := broker.Publish("x", "over", nil, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}

	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`guard_admitted_total{class="ingest"} 1`,
		`guard_admitted_total{class="query"} 1`,
		`guard_rejected_total{class="ingest",reason="rate_limited"} 1`,
		`guard_latency_seconds_count{class="query"} 1`,
		`guard_inflight{class="ingest"} 0`,
		`guard_p99_seconds`,
		`guard_breaker_state 0`,
		`mq_flow_paused_total{queue="other"} 1`,
		`mq_flow_paused 1`,
		`mq_dropped_overflow_total{queue="other"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
