// Package goflow implements the GoFlow crowd-sensing middleware
// server of Section 3: account and access management, channel
// management over the message broker, crowd-sensed data management
// and storage on the document store, background jobs, analytics, and
// a REST API (rest.go). Privacy follows the CNIL-style policy of the
// paper: contributions are stored under anonymized user ids and apps
// declare which fields they share as open data.
package goflow

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Role grants capabilities on an app's data.
type Role int

// Roles.
const (
	// RoleClient may publish observations and subscribe.
	RoleClient Role = iota + 1
	// RoleManager may run background jobs and read analytics.
	RoleManager
	// RoleAdmin may manage accounts.
	RoleAdmin
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RoleManager:
		return "manager"
	case RoleAdmin:
		return "admin"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Errors callers can match.
var (
	ErrAppExists      = errors.New("goflow: app already registered")
	ErrAppNotFound    = errors.New("goflow: app not found")
	ErrBadCredentials = errors.New("goflow: bad credentials")
	ErrClientNotFound = errors.New("goflow: client not found")
)

// DataPolicy is an app's open-data declaration: the observation
// fields it shares with other applications. Everything else is
// private to the contributing app.
type DataPolicy struct {
	// SharedFields of stored observation documents (e.g. "spl",
	// "zone", "sensedAt"). The anonymized user id is never shared.
	SharedFields []string `json:"sharedFields"`
}

// App is a registered crowd-sensing application.
type App struct {
	ID        string     `json:"id"`
	Name      string     `json:"name"`
	Secret    string     `json:"-"`
	Policy    DataPolicy `json:"policy"`
	CreatedAt time.Time  `json:"createdAt"`
}

// Client is a registered mobile (or web) client of an app.
type Client struct {
	// ID is the shared secret between client and server, used as a
	// binding filter on the client's exchange.
	ID string `json:"id"`
	// AnonID is the anonymized contributor id under which the
	// client's observations are stored.
	AnonID    string    `json:"anonId"`
	AppID     string    `json:"appId"`
	Role      Role      `json:"role"`
	CreatedAt time.Time `json:"createdAt"`
	// Exchange / Queue are the broker endpoints provisioned for the
	// client by channel management.
	Exchange string `json:"exchange"`
	Queue    string `json:"queue"`
}

// Accounts manages apps and clients.
type Accounts struct {
	// anonKey keys the HMAC that derives stable anonymous ids from
	// client ids, so the same contributor always maps to the same
	// anonymized id while the mapping stays one-way.
	anonKey []byte

	mu      sync.RWMutex
	apps    map[string]*App
	clients map[string]*Client
}

// NewAccounts builds an account manager with a fresh anonymization
// key.
func NewAccounts() (*Accounts, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("anonymization key: %w", err)
	}
	return &Accounts{
		anonKey: key,
		apps:    make(map[string]*App),
		clients: make(map[string]*Client),
	}, nil
}

// RegisterApp creates an app with the given policy; the returned App
// carries the generated secret.
func (a *Accounts) RegisterApp(id, name string, policy DataPolicy) (*App, error) {
	if id == "" {
		return nil, errors.New("goflow: app id must not be empty")
	}
	secret, err := randomToken()
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, exists := a.apps[id]; exists {
		return nil, fmt.Errorf("register app %q: %w", id, ErrAppExists)
	}
	app := &App{
		ID:        id,
		Name:      name,
		Secret:    secret,
		Policy:    policy,
		CreatedAt: time.Now(),
	}
	a.apps[id] = app
	cp := *app
	return &cp, nil
}

// App returns a copy of the registered app.
func (a *Accounts) App(id string) (*App, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	app, ok := a.apps[id]
	if !ok {
		return nil, fmt.Errorf("app %q: %w", id, ErrAppNotFound)
	}
	cp := *app
	return &cp, nil
}

// Apps returns all registered app ids sorted.
func (a *Accounts) Apps() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	ids := make([]string, 0, len(a.apps))
	for id := range a.apps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RegisterClient creates a client account for an app and derives its
// anonymized id.
func (a *Accounts) RegisterClient(appID string, role Role) (*Client, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.apps[appID]; !ok {
		return nil, fmt.Errorf("register client for %q: %w", appID, ErrAppNotFound)
	}
	id, err := randomToken()
	if err != nil {
		return nil, err
	}
	c := &Client{
		ID:        id,
		AnonID:    a.anonymizeLocked(id),
		AppID:     appID,
		Role:      role,
		CreatedAt: time.Now(),
	}
	a.clients[id] = c
	cp := *c
	return &cp, nil
}

// Client resolves a client id.
func (a *Accounts) Client(id string) (*Client, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	c, ok := a.clients[id]
	if !ok {
		return nil, fmt.Errorf("client: %w", ErrClientNotFound)
	}
	cp := *c
	return &cp, nil
}

// setClientChannels records the broker endpoints provisioned for a
// client.
func (a *Accounts) setClientChannels(id, exchange, queue string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.clients[id]
	if !ok {
		return fmt.Errorf("client channels: %w", ErrClientNotFound)
	}
	c.Exchange = exchange
	c.Queue = queue
	return nil
}

// RemoveClient deletes a client account (the user exercised their
// right to erasure; their stored observations remain anonymized).
func (a *Accounts) RemoveClient(id string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.clients[id]; !ok {
		return fmt.Errorf("remove client: %w", ErrClientNotFound)
	}
	delete(a.clients, id)
	return nil
}

// Anonymize derives the stable anonymous id for a client id.
func (a *Accounts) Anonymize(clientID string) string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.anonymizeLocked(clientID)
}

func (a *Accounts) anonymizeLocked(clientID string) string {
	mac := hmac.New(sha256.New, a.anonKey)
	mac.Write([]byte(clientID))
	return "anon-" + hex.EncodeToString(mac.Sum(nil))[:16]
}

// AuthenticateApp checks an app id/secret pair.
func (a *Accounts) AuthenticateApp(id, secret string) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	app, ok := a.apps[id]
	if !ok || subtleNeq(app.Secret, secret) {
		return ErrBadCredentials
	}
	return nil
}

// subtleNeq compares two tokens in constant time.
func subtleNeq(a, b string) bool {
	if len(a) != len(b) {
		return true
	}
	var v byte
	for i := 0; i < len(a); i++ {
		v |= a[i] ^ b[i]
	}
	return v != 0
}

// randomToken mints a 128-bit hex token.
func randomToken() (string, error) {
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		return "", fmt.Errorf("token: %w", err)
	}
	return hex.EncodeToString(buf), nil
}
