package goflow

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"github.com/urbancivics/goflow/internal/cluster"
	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/guard"
	"github.com/urbancivics/goflow/internal/obs"
	"github.com/urbancivics/goflow/internal/predict"
	"github.com/urbancivics/goflow/internal/sensing"
)

// REST API (Figure 2): clients and administrators authenticate and
// register publishers/subscribers, retrieve crowd-sensed data with
// filter parameters, manage accounts and submit background jobs.
//
// Routes:
//
//	POST /v1/apps                         register an app
//	POST /v1/apps/{app}/login             register a client, provision channels
//	POST /v1/apps/{app}/subscriptions     subscribe a client to datatype@zone
//	GET  /v1/apps/{app}/observations      retrieve with filters
//	GET  /v1/apps/{app}/observations/count
//	GET  /v1/apps/{app}/analytics
//	GET  /v1/apps/{app}/zones/{zone}/noise  per-zone noise summary
//	GET  /v1/apps/{app}/noisemap          noise summary of every zone
//	GET  /v1/zones/{zone}/forecast        T+30 exposure forecast for a zone
//	GET  /v1/noisemap/forecast            forecast for every warm zone
//	POST /v1/apps/{app}/jobs              submit a background job
//	GET  /v1/jobs/{id}                    job status
//	GET  /v1/healthz
type apiHandler struct {
	server *Server
}

// NewHTTPHandler exposes the server's REST API.
func NewHTTPHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	(&apiHandler{server: s}).register(mux)
	return mux
}

// register mounts the API routes on mux, each behind the admission
// chain for its priority class: ingest outranks channel/data queries,
// which outrank analytics and export — under overload the server
// degrades dashboards first and refuses sensed observations last.
// The health probe is never guarded: load balancers must see a
// draining server as alive while it finishes in-flight work.
func (h *apiHandler) register(mux *http.ServeMux) {
	g := h.server.Guard.Guard
	mux.HandleFunc("GET /v1/healthz", h.health)
	mux.HandleFunc("POST /v1/apps", g(guard.ClassQuery, h.registerApp))
	mux.HandleFunc("POST /v1/apps/{app}/login", g(guard.ClassQuery, h.login))
	mux.HandleFunc("POST /v1/apps/{app}/subscriptions", g(guard.ClassQuery, h.subscribe))
	mux.HandleFunc("POST /v1/apps/{app}/observations", g(guard.ClassIngest, h.ingestObservations))
	mux.HandleFunc("GET /v1/apps/{app}/observations", g(guard.ClassQuery, h.observations))
	mux.HandleFunc("GET /v1/apps/{app}/observations/count", g(guard.ClassQuery, h.observationCount))
	mux.HandleFunc("GET /v1/apps/{app}/observations/export", g(guard.ClassAnalytics, h.exportObservations))
	mux.HandleFunc("GET /v1/apps/{app}/analytics", g(guard.ClassAnalytics, h.analytics))
	mux.HandleFunc("GET /v1/apps/{app}/zones/{zone}/noise", g(guard.ClassAnalytics, h.zoneNoise))
	mux.HandleFunc("GET /v1/apps/{app}/noisemap", g(guard.ClassAnalytics, h.noisemap))
	mux.HandleFunc("GET /v1/zones/{zone}/forecast", g(guard.ClassAnalytics, h.zoneForecast))
	mux.HandleFunc("GET /v1/noisemap/forecast", g(guard.ClassAnalytics, h.noisemapForecast))
	mux.HandleFunc("POST /v1/apps/{app}/jobs", g(guard.ClassAnalytics, h.submitJob))
	mux.HandleFunc("GET /v1/jobs/{id}", g(guard.ClassAnalytics, h.jobStatus))
	// Live streams admit themselves (AdmitLive inside — see
	// live_http.go for why they bypass the Guard wrapper); the latest
	// cache is an ordinary bounded query.
	mux.HandleFunc("GET /v1/live/ws", h.liveWS)
	mux.HandleFunc("GET /v1/live/sse", h.liveSSE)
	mux.HandleFunc("GET /v1/live/latest", g(guard.ClassQuery, h.liveLatest))
}

// NewInstrumentedHTTPHandler is NewHTTPHandler plus observability: the
// API routes are wrapped in the obs HTTP middleware (request counts by
// route pattern and status class, latency histograms, response bytes,
// in-flight gauge) and the registry itself is exposed at GET /metrics
// (Prometheus text format) and GET /metrics.json. Route labels use the
// registered patterns — "/v1/apps/{app}/observations", not raw URLs —
// so label cardinality stays bounded no matter how many apps exist.
func NewInstrumentedHTTPHandler(s *Server, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	(&apiHandler{server: s}).register(mux)
	mux.Handle("GET /metrics", obs.Handler(reg))
	mux.Handle("GET /metrics.json", obs.JSONHandler(reg))
	m := obs.NewHTTPMetrics(reg)
	return obs.InstrumentHandler(m, obs.NormalizeByMux(mux), mux)
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ErrPayloadTooLarge reports an ingest body over the configured cap.
var ErrPayloadTooLarge = errors.New("goflow: payload too large")

// writeErr maps domain errors to HTTP statuses.
// notLeaderHeaders reports whether err means this replica cannot take
// the write — an unpromoted follower, or a fenced ex-leader
// (ErrStaleTerm wrapped underneath) — and if so sets the redirect
// headers. The condition is temporary by design: failover elects a
// successor within a few lease TTLs, so the client is told to retry,
// and when the node knows who leads now, where.
func notLeaderHeaders(w http.ResponseWriter, err error) bool {
	if !errors.Is(err, cluster.ErrNotLeader) {
		return false
	}
	w.Header().Set("Retry-After", "1")
	var notLeader *cluster.NotLeaderError
	if errors.As(err, &notLeader) {
		if hint := notLeader.Hint(); hint != "" {
			w.Header().Set("X-Leader-Hint", hint)
		}
	}
	return true
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case notLeaderHeaders(w, err):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrAppNotFound), errors.Is(err, ErrClientNotFound), errors.Is(err, ErrJobNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrAppExists):
		status = http.StatusConflict
	case errors.Is(err, ErrBadCredentials):
		status = http.StatusUnauthorized
	case errors.Is(err, ErrPayloadTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrBadCursor):
		status = http.StatusBadRequest
	case errors.Is(err, docstore.ErrCursorGone):
		// The anchor is unrecoverable: the client restarts its scan.
		status = http.StatusGone
	case errors.Is(err, ErrCursorUnsupported):
		status = http.StatusNotImplemented
	case errors.Is(err, predict.ErrNoSeries):
		// Forecasting is wired but the engine lost its series view —
		// same "not available here" contract as the disabled case.
		status = http.StatusNotImplemented
	case errors.Is(err, predict.ErrOutsideArea):
		status = http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		// The backend outlived its deadline: the admission timeout or
		// client disconnect cancelled the docstore scan mid-flight.
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (h *apiHandler) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type registerAppRequest struct {
	ID     string     `json:"id"`
	Name   string     `json:"name"`
	Policy DataPolicy `json:"policy"`
}

func (h *apiHandler) registerApp(w http.ResponseWriter, r *http.Request) {
	var req registerAppRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body"})
		return
	}
	app, err := h.server.RegisterApp(req.ID, req.Name, req.Policy)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":     app.ID,
		"secret": app.Secret,
	})
}

func (h *apiHandler) login(w http.ResponseWriter, r *http.Request) {
	appID := r.PathValue("app")
	c, err := h.server.Login(appID)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, c)
}

type subscribeRequest struct {
	ClientID string `json:"clientId"`
	Datatype string `json:"datatype"`
	Zone     string `json:"zone"`
}

func (h *apiHandler) subscribe(w http.ResponseWriter, r *http.Request) {
	appID := r.PathValue("app")
	var req subscribeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body"})
		return
	}
	if req.ClientID == "" || req.Datatype == "" || req.Zone == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "clientId, datatype and zone are required"})
		return
	}
	if _, err := h.server.Accounts.Client(req.ClientID); err != nil {
		writeErr(w, err)
		return
	}
	if err := h.server.Channels.Subscribe(appID, req.ClientID, req.Datatype, req.Zone); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "subscribed"})
}

// queryFromRequest decodes filter parameters from the URL.
func queryFromRequest(r *http.Request, appID string) Query {
	q := Query{AppID: appID}
	get := r.URL.Query().Get
	q.DeviceModel = get("model")
	q.Provider = get("provider")
	q.Mode = get("mode")
	q.AppVersion = get("version")
	q.Zone = get("zone")
	q.UserID = get("user")
	if v := get("localized"); v != "" {
		b := v == "true" || v == "1"
		q.Localized = &b
	}
	if v := get("from"); v != "" {
		if t, err := time.Parse(time.RFC3339, v); err == nil {
			q.From = &t
		}
	}
	if v := get("to"); v != "" {
		if t, err := time.Parse(time.RFC3339, v); err == nil {
			q.To = &t
		}
	}
	if v := get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			q.Limit = n
		}
	}
	if v := get("skip"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			q.Skip = n
		}
	}
	return q
}

// maxIngestBytes caps an HTTP ingest body: a day of buffered
// observations fits comfortably; anything larger is a bug or abuse.
const maxIngestBytes = 1 << 20

type ingestRequest struct {
	ClientID     string                 `json:"clientId"`
	Observations []*sensing.Observation `json:"observations"`
}

// ingestObservations stores a batch of sensed observations uploaded
// over HTTP — the fallback transport for clients that cannot hold a
// broker connection. The body is hard-capped: overload protection
// starts at the socket, not after an unbounded read.
func (h *apiHandler) ingestObservations(w http.ResponseWriter, r *http.Request) {
	appID := r.PathValue("app")
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBytes)
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, ErrPayloadTooLarge)
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body"})
		return
	}
	if req.ClientID == "" || len(req.Observations) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "clientId and observations are required"})
		return
	}
	if _, err := h.server.Accounts.App(appID); err != nil {
		writeErr(w, err)
		return
	}
	stored, err := h.server.BulkIngest(appID, req.ClientID, req.Observations)
	if err != nil {
		// The valid prefix is stored; report both. A not-leader
		// refusal keeps its retry semantics here too — 503 plus the
		// leader hint — instead of masquerading as a bad request.
		status := http.StatusBadRequest
		if notLeaderHeaders(w, err) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"error":  err.Error(),
			"stored": stored,
		})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"stored": stored})
}

func (h *apiHandler) observations(w http.ResponseWriter, r *http.Request) {
	appID := r.PathValue("app")
	q := queryFromRequest(r, appID)
	if q.Limit == 0 || q.Limit > 10000 {
		q.Limit = 10000 // packaging: bounded JSON pages
	}
	requester := r.URL.Query().Get("requester")
	if requester == "" {
		requester = appID
	}
	if r.URL.Query().Has("cursor") {
		h.observationsCursor(w, r, appID, requester, q)
		return
	}
	docs, err := h.server.Data.RetrieveSharedContext(r.Context(), appID, requester, q)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":        len(docs),
		"observations": docs,
	})
}

// observationsCursor serves the cursor form of the observations read:
// ?cursor= (empty) starts a walk, ?cursor=<token> resumes one, and
// every page carries nextCursor while more data may follow. This is
// the catch-up half of the live layer's exactly-once story — a client
// whose stream dropped replays what it missed from its last anchor.
func (h *apiHandler) observationsCursor(w http.ResponseWriter, r *http.Request, appID, requester string, q Query) {
	afterID := ""
	if token := r.URL.Query().Get("cursor"); token != "" {
		id, err := DecodeCursor(token)
		if err != nil {
			writeErr(w, err)
			return
		}
		afterID = id
	}
	docs, lastID, err := h.server.Data.RetrieveSharedAfterContext(r.Context(), appID, requester, afterID, q)
	if err != nil {
		writeErr(w, err)
		return
	}
	if h.server.Live != nil {
		h.server.Live.RecordCatchup()
	}
	resp := map[string]any{
		"count":        len(docs),
		"observations": docs,
	}
	if lastID != "" {
		resp["nextCursor"] = EncodeCursor(lastID)
	}
	writeJSON(w, http.StatusOK, resp)
}

// exportObservations streams the full matching result set as NDJSON
// or CSV (the "packaging solutions" of Figure 2), applying the
// owner's open-data policy for foreign requesters.
func (h *apiHandler) exportObservations(w http.ResponseWriter, r *http.Request) {
	appID := r.PathValue("app")
	format, err := ParseExportFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	requester := r.URL.Query().Get("requester")
	if requester == "" {
		requester = appID
	}
	q := queryFromRequest(r, appID)
	q.Limit, q.Skip = 0, 0 // the export pages internally
	switch format {
	case CSV:
		w.Header().Set("Content-Type", "text/csv")
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	if _, err := h.server.Data.Export(w, appID, requester, q, format); err != nil {
		// Headers are already sent; the broken stream is the signal.
		return
	}
}

func (h *apiHandler) observationCount(w http.ResponseWriter, r *http.Request) {
	appID := r.PathValue("app")
	n, err := h.server.Data.CountContext(r.Context(), queryFromRequest(r, appID))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"count": n})
}

func (h *apiHandler) analytics(w http.ResponseWriter, r *http.Request) {
	appID := r.PathValue("app")
	st, ok := h.server.Analytics.ForApp(appID)
	if !ok {
		writeJSON(w, http.StatusOK, AppAnalytics{AppID: appID})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// noiseRange parses the from/to query parameters (RFC 3339). The
// default window is the last 24 hours, matching the dashboard's
// opening view.
func noiseRange(r *http.Request) (time.Time, time.Time, error) {
	to := time.Now()
	from := to.Add(-24 * time.Hour)
	if s := r.URL.Query().Get("to"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return time.Time{}, time.Time{}, errors.New("bad 'to' timestamp: want RFC 3339")
		}
		to = t
		from = to.Add(-24 * time.Hour)
	}
	if s := r.URL.Query().Get("from"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return time.Time{}, time.Time{}, errors.New("bad 'from' timestamp: want RFC 3339")
		}
		from = t
	}
	return from, to, nil
}

// zoneNoise summarizes one zone's sound level: rollup-backed when the
// engine has a series attached, document scan otherwise.
func (h *apiHandler) zoneNoise(w http.ResponseWriter, r *http.Request) {
	from, to, err := noiseRange(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	st, err := h.server.Data.ZoneNoise(r.Context(), r.PathValue("zone"), from, to)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// noisemap summarizes every zone's sound level over the range.
func (h *apiHandler) noisemap(w http.ResponseWriter, r *http.Request) {
	from, to, err := noiseRange(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	zones, err := h.server.Data.Noisemap(r.Context(), from, to)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"from":  from,
		"to":    to,
		"count": len(zones),
		"zones": zones,
	})
}

type submitJobRequest struct {
	Name string `json:"name"`
}

// submitJob requires the app's secret (manager capability): jobs run
// arbitrary registered scripts over the app's data.
func (h *apiHandler) submitJob(w http.ResponseWriter, r *http.Request) {
	appID := r.PathValue("app")
	if err := h.server.Accounts.AuthenticateApp(appID, r.Header.Get("X-App-Secret")); err != nil {
		writeErr(w, err)
		return
	}
	var req submitJobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body"})
		return
	}
	id, err := h.server.Jobs.Submit(appID, req.Name)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"jobId": id})
}

func (h *apiHandler) jobStatus(w http.ResponseWriter, r *http.Request) {
	job, err := h.server.Jobs.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}
