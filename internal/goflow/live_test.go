package goflow

import (
	"bufio"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/textproto"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/sensing"
	"github.com/urbancivics/goflow/internal/series"
	"github.com/urbancivics/goflow/internal/storage"
)

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// goflowStableGoroutines samples the goroutine count until it stops
// decreasing (same idiom as the mq leak tests): handlers and readers
// need a moment to observe closed connections.
func goflowStableGoroutines(t *testing.T) int {
	t.Helper()
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur >= prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// newLiveAPI builds a server with the live layer configured, the
// SoundCity-style app registered, one logged-in client, ingest
// running, and the REST API served over a real HTTP listener (live
// streams need genuine flushing and hijacking, which
// httptest.ResponseRecorder cannot do).
func newLiveAPI(t *testing.T, cfg LiveConfig) (*Server, *mq.Broker, *httptest.Server, *Client) {
	t.Helper()
	broker := mq.NewBroker()
	server, err := NewServer(ServerConfig{Broker: broker, Store: docstore.NewStore(), Live: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Login("SC")
	if err != nil {
		t.Fatal(err)
	}
	if err := server.StartIngest(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandler(server))
	t.Cleanup(func() {
		ts.Close()
		server.Shutdown()
		broker.Close()
	})
	return server, broker, ts, cl
}

// publishLiveObs publishes one observation through the client's own
// exchange — the real transport path, so the event is both stored by
// the ingest loop and fanned out to live sockets.
func publishLiveObs(t *testing.T, broker *mq.Broker, cl *Client, zone string, spl float64) {
	t.Helper()
	at := time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC).Add(time.Duration(int(spl)) * time.Second)
	o := obsAt(t, "LGE NEXUS 5", spl, true, at)
	body, err := o.Encode()
	if err != nil {
		t.Fatal(err)
	}
	key := RoutingKey("SC", cl.ID, "obs", zone)
	if _, err := broker.PublishAt(cl.Exchange, key, nil, body, at); err != nil {
		t.Fatal(err)
	}
}

// sseClient consumes a live SSE stream in the background, surfacing
// parsed events and the terminal end frame over channels so tests can
// receive with timeouts.
type sseClient struct {
	resp   *http.Response
	events chan LiveEvent
	end    chan string
	once   sync.Once
}

func openSSE(t *testing.T, rawURL string) *sseClient {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("SSE open = %d (%s)", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	c := &sseClient{resp: resp, events: make(chan LiveEvent, 256), end: make(chan string, 1)}
	go c.loop()
	t.Cleanup(c.Close)
	return c
}

func (c *sseClient) Close() { c.once.Do(func() { c.resp.Body.Close() }) }

func (c *sseClient) loop() {
	defer close(c.events)
	sc := bufio.NewScanner(c.resp.Body)
	endNext := false
	for sc.Scan() {
		line := sc.Text()
		if line == "event: end" {
			endNext = true
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		if endNext {
			var e struct {
				Reason string `json:"reason"`
			}
			_ = json.Unmarshal([]byte(data), &e)
			c.end <- e.Reason
			return
		}
		var ev LiveEvent
		if json.Unmarshal([]byte(data), &ev) == nil {
			c.events <- ev
		}
	}
}

func (c *sseClient) recv(t *testing.T) LiveEvent {
	t.Helper()
	select {
	case ev, ok := <-c.events:
		if !ok {
			t.Fatal("SSE stream ended while waiting for an event")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a live SSE event")
	}
	return LiveEvent{}
}

func eventSPL(t *testing.T, ev LiveEvent) float64 {
	t.Helper()
	o, err := sensing.DecodeObservation(ev.Body)
	if err != nil {
		t.Fatalf("live event body: %v", err)
	}
	return o.SPL
}

// wsTestClient is a minimal masked-frame WebSocket client for
// exercising the real RFC 6455 handshake and framing.
type wsTestClient struct {
	conn net.Conn
	br   *bufio.Reader
}

func dialWS(t *testing.T, ts *httptest.Server, path string) *wsTestClient {
	t.Helper()
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		t.Fatal(err)
	}
	key := base64.StdEncoding.EncodeToString(nonce[:])
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: keep-alive, Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("handshake response: %v", err)
	}
	if !strings.Contains(status, "101") {
		t.Fatalf("handshake status = %q, want 101", strings.TrimSpace(status))
	}
	hdr, err := textproto.NewReader(br).ReadMIMEHeader()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := hdr.Get("Sec-Websocket-Accept"), wsAcceptKey(key); got != want {
		t.Fatalf("Sec-WebSocket-Accept = %q, want %q", got, want)
	}
	return &wsTestClient{conn: conn, br: br}
}

// writeFrame sends one masked client frame (RFC 6455 requires clients
// to mask).
func (c *wsTestClient) writeFrame(t *testing.T, opcode byte, payload []byte) {
	t.Helper()
	if len(payload) >= 126 {
		t.Fatalf("test client frames stay under 126 bytes, got %d", len(payload))
	}
	mask := [4]byte{0x2a, 0x17, 0x99, 0x5c}
	frame := []byte{0x80 | opcode, 0x80 | byte(len(payload))}
	frame = append(frame, mask[:]...)
	for i, b := range payload {
		frame = append(frame, b^mask[i%4])
	}
	if _, err := c.conn.Write(frame); err != nil {
		t.Fatal(err)
	}
}

// readFrame reads one unmasked server frame.
func (c *wsTestClient) readFrame(t *testing.T, timeout time.Duration) (opcode byte, payload []byte, err error) {
	t.Helper()
	_ = c.conn.SetReadDeadline(time.Now().Add(timeout))
	var hdr [2]byte
	if _, err = io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[1]&0x80 != 0 {
		t.Fatal("server frame must not be masked")
	}
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0] & 0x0F, payload, nil
}

// mustReadText reads frames until a text frame arrives.
func (c *wsTestClient) mustReadText(t *testing.T) []byte {
	t.Helper()
	for {
		op, payload, err := c.readFrame(t, 5*time.Second)
		if err != nil {
			t.Fatalf("read ws frame: %v", err)
		}
		if op == wsOpText {
			return payload
		}
	}
}

// docSPLs extracts the spl column from a cursor/observations response.
func docSPLs(t *testing.T, body map[string]any) []float64 {
	t.Helper()
	raw, ok := body["observations"].([]any)
	if !ok {
		t.Fatalf("response has no observations array: %v", body)
	}
	out := make([]float64, 0, len(raw))
	for _, d := range raw {
		doc, ok := d.(map[string]any)
		if !ok {
			t.Fatalf("bad observation shape: %v", d)
		}
		spl, ok := doc["spl"].(float64)
		if !ok {
			t.Fatalf("observation missing spl: %v", doc)
		}
		out = append(out, spl)
	}
	return out
}

// ---------------------------------------------------------------------------
// SSE conformance + cursor catch-up (the exactly-once story end to end)
// ---------------------------------------------------------------------------

func TestLiveSSEConformanceAndCursorCatchup(t *testing.T) {
	server, broker, ts, cl := newLiveAPI(t, LiveConfig{})
	stream := openSSE(t, ts.URL+"/v1/live/sse?app=SC&zone=FR75013")

	// Phase 1: stream delivers every matching event, in publish order.
	for i := 0; i < 5; i++ {
		publishLiveObs(t, broker, cl, "FR75013", 50+float64(i))
	}
	for i := 0; i < 5; i++ {
		ev := stream.recv(t)
		if ev.App != "SC" || ev.Zone != "FR75013" || ev.Datatype != "obs" {
			t.Fatalf("event routing = %s/%s/%s", ev.App, ev.Datatype, ev.Zone)
		}
		if got, want := eventSPL(t, ev), 50+float64(i); got != want {
			t.Fatalf("event %d spl = %v, want %v (publish order violated)", i, got, want)
		}
	}
	if err := server.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a cursor walk from the start pages over exactly the same
	// five observations, in the same order.
	var cursor string
	var walked []float64
	page := ts.URL + "/v1/apps/SC/observations?cursor=&limit=2"
	for {
		resp, body := doJSON(t, http.MethodGet, page, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cursor page = %d %v", resp.StatusCode, body)
		}
		spls := docSPLs(t, body)
		walked = append(walked, spls...)
		next, _ := body["nextCursor"].(string)
		if len(spls) == 0 {
			break
		}
		if next == "" {
			t.Fatal("non-empty page must carry nextCursor")
		}
		cursor = next
		page = ts.URL + "/v1/apps/SC/observations?cursor=" + url.QueryEscape(cursor) + "&limit=2"
	}
	if len(walked) != 5 {
		t.Fatalf("cursor walk saw %d observations, want 5 (%v)", len(walked), walked)
	}
	for i, spl := range walked {
		if spl != 50+float64(i) {
			t.Fatalf("cursor walk out of order: %v", walked)
		}
	}

	// Phase 3: disconnect, miss three events, resume from the saved
	// cursor — the catch-up returns exactly the missed three, once.
	stream.Close()
	for i := 0; i < 3; i++ {
		publishLiveObs(t, broker, cl, "FR75013", 60+float64(i))
	}
	if err := server.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	resp, body := doJSON(t, http.MethodGet,
		ts.URL+"/v1/apps/SC/observations?cursor="+url.QueryEscape(cursor)+"&limit=100", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catch-up = %d %v", resp.StatusCode, body)
	}
	caught := docSPLs(t, body)
	if len(caught) != 3 || caught[0] != 60 || caught[1] != 61 || caught[2] != 62 {
		t.Fatalf("catch-up = %v, want exactly the three missed events", caught)
	}
	// And the walk terminates: one more page from the new anchor is
	// empty with no further cursor.
	next, _ := body["nextCursor"].(string)
	resp, body = doJSON(t, http.MethodGet,
		ts.URL+"/v1/apps/SC/observations?cursor="+url.QueryEscape(next)+"&limit=100", nil)
	if resp.StatusCode != http.StatusOK || body["count"].(float64) != 0 {
		t.Fatalf("drained page = %d %v", resp.StatusCode, body)
	}
	if _, has := body["nextCursor"]; has {
		t.Fatal("empty page must not mint a nextCursor")
	}
	if got := server.Live.CatchupReads(); got < 4 {
		t.Fatalf("catch-up reads = %d, want every cursor request counted", got)
	}
}

func TestLiveSSEFiltersByZone(t *testing.T) {
	_, broker, ts, cl := newLiveAPI(t, LiveConfig{})
	stream := openSSE(t, ts.URL+"/v1/live/sse?app=SC&zone=FR75013")
	publishLiveObs(t, broker, cl, "FR75001", 40) // other zone: filtered out
	publishLiveObs(t, broker, cl, "FR75013", 41)
	if got := eventSPL(t, stream.recv(t)); got != 41 {
		t.Fatalf("zone filter leaked: first event spl = %v, want 41", got)
	}
	select {
	case ev := <-stream.events:
		t.Fatalf("unexpected extra event: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// ---------------------------------------------------------------------------
// WebSocket: handshake, push, ping/pong, close paths
// ---------------------------------------------------------------------------

func TestLiveWebSocketPushPingAndClientClose(t *testing.T) {
	before := goflowStableGoroutines(t)
	server, broker, ts, cl := newLiveAPI(t, LiveConfig{})

	ws := dialWS(t, ts, "/v1/live/ws?app=SC")
	publishLiveObs(t, broker, cl, "FR75013", 55)
	var ev LiveEvent
	if err := json.Unmarshal(ws.mustReadText(t), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.App != "SC" || ev.Zone != "FR75013" {
		t.Fatalf("ws event = %+v", ev)
	}
	if got := eventSPL(t, ev); got != 55 {
		t.Fatalf("ws event spl = %v", got)
	}

	// Control traffic: ping answered with an echoing pong.
	ws.writeFrame(t, wsOpPing, []byte("hi"))
	op, payload, err := ws.readFrame(t, 5*time.Second)
	if err != nil || op != wsOpPong || string(payload) != "hi" {
		t.Fatalf("pong = op %#x payload %q err %v", op, payload, err)
	}

	// Client-initiated close tears the socket down server-side.
	ws.writeFrame(t, wsOpClose, nil)
	ws.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for server.Live.Sockets() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("socket not released after client close: %d live", server.Live.Sockets())
		}
		time.Sleep(5 * time.Millisecond)
	}

	ts.Close()
	server.Shutdown()
	if after := goflowStableGoroutines(t); after > before+3 {
		t.Fatalf("goroutines leaked on the client-close path: %d -> %d", before, after)
	}
}

func TestLiveWebSocketDrainSendsGoingAway(t *testing.T) {
	server, _, ts, _ := newLiveAPI(t, LiveConfig{})
	ws := dialWS(t, ts, "/v1/live/ws?app=SC")
	server.Live.Close()
	op, payload, err := ws.readFrame(t, 5*time.Second)
	if err != nil {
		t.Fatalf("expected a close frame, got %v", err)
	}
	if op != wsOpClose || len(payload) < 2 {
		t.Fatalf("drain frame = op %#x payload %q", op, payload)
	}
	if code := binary.BigEndian.Uint16(payload); code != wsCloseGoingAway {
		t.Fatalf("drain close code = %d, want %d", code, wsCloseGoingAway)
	}
	if reason := string(payload[2:]); reason != "server draining" {
		t.Fatalf("drain reason = %q", reason)
	}
}

func TestLiveWebSocketShedCloseCode(t *testing.T) {
	// Buffer 1 and a negative budget: the first full-mailbox event
	// sheds. A 256-message batch fans out faster than the writer can
	// drain a one-slot mailbox through a socket, so the shed fires
	// deterministically in practice.
	server, broker, ts, cl := newLiveAPI(t, LiveConfig{Buffer: 1, SendBudget: -1})
	ws := dialWS(t, ts, "/v1/live/ws?app=SC")

	o := obsAt(t, "A", 50, true, time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC))
	body, err := o.Encode()
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]mq.PublishItem, 256)
	for i := range batch {
		batch[i] = mq.PublishItem{RoutingKey: RoutingKey("SC", cl.ID, "obs", "FR75013"), Body: body}
	}
	if _, err := broker.PublishBatch(cl.Exchange, batch); err != nil {
		t.Fatal(err)
	}

	// Delivered events may precede the close; the close must carry the
	// try-later code pointing the client at the cursor API.
	for {
		op, payload, err := ws.readFrame(t, 5*time.Second)
		if err != nil {
			t.Fatalf("expected a shed close frame, got %v", err)
		}
		if op != wsOpClose {
			continue
		}
		if code := binary.BigEndian.Uint16(payload); code != wsCloseTryLater {
			t.Fatalf("shed close code = %d, want %d", code, wsCloseTryLater)
		}
		if reason := string(payload[2:]); !strings.Contains(reason, "cursor") {
			t.Fatalf("shed reason %q must point at the cursor API", reason)
		}
		break
	}
	stats := broker.LiveStats()
	if stats.Shed != 1 {
		t.Fatalf("LiveStats.Shed = %d, want 1", stats.Shed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for server.Live.Sockets() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("shed socket not released")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLiveWebSocketBadHandshakeLeaksNothing(t *testing.T) {
	before := goflowStableGoroutines(t)
	server, _, ts, _ := newLiveAPI(t, LiveConfig{})
	// Plain GET without upgrade headers: refused before any
	// subscription or hijack, with the subscription released.
	resp, err := http.Get(ts.URL + "/v1/live/ws")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad handshake = %d, want 400", resp.StatusCode)
	}
	if server.Live.Sockets() != 0 {
		t.Fatalf("failed upgrade left %d subscriptions attached", server.Live.Sockets())
	}
	ts.Close()
	server.Shutdown()
	if after := goflowStableGoroutines(t); after > before+3 {
		t.Fatalf("goroutines leaked on the failed-upgrade path: %d -> %d", before, after)
	}
}

// ---------------------------------------------------------------------------
// Slow-consumer shed within budget — fake clock, no sleeps
// ---------------------------------------------------------------------------

// fakeClock is a hand-advanced clock for send-budget tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLiveSlowConsumerShedWithinBudget(t *testing.T) {
	clk := &fakeClock{t: time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)}
	broker := mq.NewBroker()
	server, err := NewServer(ServerConfig{
		Broker: broker,
		Store:  docstore.NewStore(),
		Live:   LiveConfig{Buffer: 1, SendBudget: 5 * time.Second, Now: clk.Now},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})

	slow, err := server.Live.Subscribe([]string{"SC.#"})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := server.Live.Subscribe([]string{"SC.#"})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Live.Release(fast)

	publish := func(n int) {
		t.Helper()
		if _, err := broker.Publish(GoFlowExchange, "SC.c1.obs.Z1", nil, []byte{byte(n)}); err != nil {
			t.Fatal(err)
		}
	}
	fastRecv := func(want int) {
		t.Helper()
		select {
		case m := <-fast.C():
			if int(m.Body[0]) != want {
				t.Fatalf("fast reader got %d, want %d", m.Body[0], want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("fast reader starved waiting for event %d", want)
		}
	}
	shed := func() bool {
		select {
		case <-slow.Done():
			return true
		default:
			return false
		}
	}

	// t=0: event 0 fills the slow mailbox; event 1 starts the full
	// streak. Neither sheds — the budget tolerates a full queue for 5s.
	publish(0)
	fastRecv(0)
	publish(1)
	fastRecv(1)
	if shed() {
		t.Fatal("shed before the budget elapsed")
	}

	// t=2.5s: still inside the budget.
	clk.Advance(2500 * time.Millisecond)
	publish(2)
	fastRecv(2)
	if shed() {
		t.Fatal("shed at half budget")
	}

	// t=5.1s: the streak has outlived the budget — the next full
	// enqueue sheds, with no wall-clock time spent.
	clk.Advance(2600 * time.Millisecond)
	publish(3)
	fastRecv(3)
	select {
	case <-slow.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("slow consumer not shed after its budget elapsed")
	}
	if !slow.Shed() {
		t.Fatal("Done without Shed: slow consumer must be marked shed, not drained")
	}

	// The slow mailbox still holds the one event it accepted; the rest
	// were dropped, not buffered — bounded memory under a stalled
	// reader. The fast reader saw all four with no interference.
	if got := len(slow.C()); got != 1 {
		t.Fatalf("slow mailbox holds %d events, want 1", got)
	}
	st := broker.LiveStats()
	if st.Shed != 1 || st.Dropped != 3 {
		t.Fatalf("LiveStats = %+v, want Shed 1, Dropped 3", st)
	}
}

// ---------------------------------------------------------------------------
// Cursor HTTP error mapping
// ---------------------------------------------------------------------------

func TestLiveCursorHTTPErrors(t *testing.T) {
	_, _, ts, _ := newLiveAPI(t, LiveConfig{})

	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/observations?cursor=%25%25", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage cursor = %d, want 400", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet,
		ts.URL+"/v1/apps/SC/observations?cursor="+url.QueryEscape(EncodeCursor("")), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-anchor cursor = %d, want 400", resp.StatusCode)
	}
	// An anchor that is neither present nor a store-assigned id cannot
	// be positioned: the cursor is permanently gone.
	resp, _ = doJSON(t, http.MethodGet,
		ts.URL+"/v1/apps/SC/observations?cursor="+url.QueryEscape(EncodeCursor("not-a-doc")), nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("unpositionable cursor = %d, want 410", resp.StatusCode)
	}
}

// noCursorEngine hides the CursorScanner capability of the wrapped
// engine, modeling storage backends (e.g. the cluster router) without
// a global scan order.
type noCursorEngine struct{ storage.Engine }

func TestLiveCursorUnsupportedEngine(t *testing.T) {
	broker := mq.NewBroker()
	server, err := NewServer(ServerConfig{
		Broker: broker,
		Data:   noCursorEngine{storage.NewLocal(docstore.NewStore())},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandler(server))
	t.Cleanup(ts.Close)
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/observations?cursor=", nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("cursor on non-scanning engine = %d, want 501", resp.StatusCode)
	}
}

// ---------------------------------------------------------------------------
// Latest-per-zone cache endpoint
// ---------------------------------------------------------------------------

func TestLiveLatestEndpoint(t *testing.T) {
	server, _, ts, _ := newLiveAPI(t, LiveConfig{})
	at := time.Date(2026, 3, 1, 10, 0, 0, 0, time.UTC)
	server.LiveCache.Observe([]series.Point{
		{TS: at.UnixMilli(), Value: 61.5, Zone: "FR75013"},
		{TS: at.Add(time.Minute).UnixMilli(), Value: 58.0, Zone: "FR75001"},
		{TS: at.Add(-time.Minute).UnixMilli(), Value: 99.0, Zone: "FR75013"}, // older: kept out
		{TS: at.UnixMilli(), Value: 70.0, Zone: ""},                          // unlocalized: skipped
	})

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/live/latest", nil)
	if resp.StatusCode != http.StatusOK || body["count"].(float64) != 2 {
		t.Fatalf("latest = %d %v", resp.StatusCode, body)
	}
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/live/latest?zone=FR75013", nil)
	if resp.StatusCode != http.StatusOK || body["spl"].(float64) != 61.5 {
		t.Fatalf("latest zone = %d %v (stale point must not win)", resp.StatusCode, body)
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/live/latest?zone=NOPE", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown zone = %d, want 404", resp.StatusCode)
	}
}

// ---------------------------------------------------------------------------
// Admission: socket cap and draining
// ---------------------------------------------------------------------------

func TestLiveSocketCapAndDraining(t *testing.T) {
	server, _, ts, _ := newLiveAPI(t, LiveConfig{MaxSockets: 1})
	stream := openSSE(t, ts.URL+"/v1/live/sse?app=SC")
	defer stream.Close()

	resp, err := http.Get(ts.URL + "/v1/live/sse?app=SC")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap subscribe = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatal("over-cap subscribe must carry Retry-After")
	}

	server.Guard.SetDraining(true)
	resp, err = http.Get(ts.URL + "/v1/live/sse?app=SC")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining subscribe = %d, want 503", resp.StatusCode)
	}
}

func TestLiveSSEDrainSendsEndEvent(t *testing.T) {
	before := goflowStableGoroutines(t)
	server, _, ts, _ := newLiveAPI(t, LiveConfig{})
	stream := openSSE(t, ts.URL+"/v1/live/sse?app=SC")
	server.Live.Close()
	select {
	case reason := <-stream.end:
		if reason != "draining" {
			t.Fatalf("end reason = %q, want draining", reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no end event after hub close")
	}
	stream.Close()
	ts.Close()
	server.Shutdown()
	if after := goflowStableGoroutines(t); after > before+3 {
		t.Fatalf("goroutines leaked on the drain path: %d -> %d", before, after)
	}
}

func TestLiveConfigValidation(t *testing.T) {
	cfg := LiveConfig{}.withDefaults()
	if cfg.Buffer != 256 || cfg.SendBudget != 5*time.Second || cfg.MaxSockets != 1024 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if got := (LiveConfig{SendBudget: -1}).withDefaults().SendBudget; got != 0 {
		t.Fatalf("negative budget = %v, want 0 (shed on first full)", got)
	}
	if _, err := livePatterns([]string{"a.b", ""}, "", "", ""); err == nil {
		t.Fatal("empty explicit pattern must be rejected")
	}
	pats, err := livePatterns(nil, "SC", "", "")
	if err != nil || len(pats) != 1 || pats[0] != "SC.*.*.#" {
		t.Fatalf("compiled patterns = %v err %v", pats, err)
	}
	pats, _ = livePatterns(nil, "SC", "obs", "FR75013")
	if pats[0] != "SC.*.obs.FR75013" {
		t.Fatalf("zone-pinned pattern = %v", pats)
	}
}
