package goflow

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/guard"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/sensing"
)

// admClock is a mutable fake clock shared by the guard chain.
type admClock struct {
	mu sync.Mutex
	t  time.Time
}

func newAdmClock() *admClock {
	return &admClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *admClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *admClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newGuardedServer(t *testing.T, admission AdmissionConfig) (*Server, *httptest.Server) {
	t.Helper()
	broker := mq.NewBroker()
	server, err := NewServer(ServerConfig{
		Broker:    broker,
		Store:     docstore.NewStore(),
		Admission: admission,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	ts := httptest.NewServer(NewHTTPHandler(server))
	t.Cleanup(ts.Close)
	return server, ts
}

func TestIngestEndpointStoresBatch(t *testing.T) {
	server, ts := newAPI(t)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	req := ingestRequest{
		ClientID:     "phone-1",
		Observations: []*sensing.Observation{obsAt(t, "A", 55, true, at), obsAt(t, "B", 60, false, at)},
	}
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/observations", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest = %d %v", resp.StatusCode, body)
	}
	if body["stored"] != float64(2) {
		t.Fatalf("stored = %v, want 2", body["stored"])
	}
	n, err := server.Data.Count(Query{AppID: "SC"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count after ingest = %d, want 2", n)
	}

	// Unknown app.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/apps/nope/observations", req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown app ingest = %d, want 404", resp.StatusCode)
	}
	// Missing fields.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/observations", ingestRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ingest = %d, want 400", resp.StatusCode)
	}
}

// TestIngestPayloadCap413: a body over maxIngestBytes is refused with
// the typed 413 before any of it is stored.
func TestIngestPayloadCap413(t *testing.T) {
	server, ts := newAPI(t)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	// A single observation padded by an oversized field blows the cap
	// without building millions of structs.
	huge := fmt.Sprintf(`{"clientId":"phone-1","observations":[{"userId":"u1","deviceModel":%q,"mode":"opportunistic","spl":50,"activity":"still","sensedAt":"2026-03-01T12:00:00Z"}]}`,
		strings.Repeat("x", maxIngestBytes+1024))
	resp, err := http.Post(ts.URL+"/v1/apps/SC/observations", "application/json", bytes.NewBufferString(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d, want 413", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "payload too large") {
		t.Fatalf("413 body = %v, want the typed error", body)
	}
	if n, _ := server.Data.Count(Query{AppID: "SC"}); n != 0 {
		t.Fatalf("oversized body stored %d observations", n)
	}
}

// TestAdmissionRateLimit429: ingest requests past the per-device
// bucket get 429 with Retry-After; a different device is unaffected.
func TestAdmissionRateLimit429(t *testing.T) {
	clk := newAdmClock()
	server, ts := newGuardedServer(t, AdmissionConfig{
		RatePerDevice: 1,
		RateBurst:     2,
		Now:           clk.Now,
	})
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	body := ingestRequest{ClientID: "c", Observations: []*sensing.Observation{obsAt(t, "A", 50, false, at)}}

	post := func(device string) *http.Response {
		t.Helper()
		resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/observations", body, "X-Device-ID", device)
		return resp
	}
	// Burst of 2 admitted, third refused.
	for i := 0; i < 2; i++ {
		if resp := post("dev-1"); resp.StatusCode != http.StatusCreated {
			t.Fatalf("burst request %d = %d, want 201", i, resp.StatusCode)
		}
	}
	resp := post("dev-1")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another device still has its own bucket.
	if resp := post("dev-2"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("other device = %d, want 201", resp.StatusCode)
	}
	// Tokens refill with the clock.
	clk.Advance(2 * time.Second)
	if resp := post("dev-1"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("after refill = %d, want 201", resp.StatusCode)
	}
}

// TestAdmissionShedsAnalyticsFirst drives the shedder to 1x pressure
// and checks the degradation order: analytics 503, queries and ingest
// still served.
func TestAdmissionShedsAnalyticsFirst(t *testing.T) {
	clk := newAdmClock()
	server, ts := newGuardedServer(t, AdmissionConfig{
		ShedTarget: 100 * time.Millisecond,
		Now:        clk.Now,
	})
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	// Feed the shedder a window of slow samples directly — driving
	// real handlers slow would make the test timing-dependent.
	for i := 0; i < 30; i++ {
		server.Guard.Shedder().Observe(150 * time.Millisecond)
	}

	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/analytics", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("analytics under pressure = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response without Retry-After")
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/observations", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query under 1x pressure = %d, want 200", resp.StatusCode)
	}
	at := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	body := ingestRequest{ClientID: "c", Observations: []*sensing.Observation{obsAt(t, "A", 50, false, at)}}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/observations", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest under 1x pressure = %d, want 201", resp.StatusCode)
	}

	// Pressure clears once the slow window ages out.
	clk.Advance(11 * time.Second)
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/analytics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analytics after recovery = %d, want 200", resp.StatusCode)
	}
}

// TestAdmissionDraining503: once draining, guarded routes refuse with
// 503 + Retry-After while the health probe stays green.
func TestAdmissionDraining503(t *testing.T) {
	server, ts := newAPI(t)
	server.Guard.SetDraining(true)
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/observations", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining query = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining response without Retry-After")
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health while draining = %d, want 200", resp.StatusCode)
	}
}

// TestAdmissionBreakerOpensOnBackendFailure: consecutive 5xx on the
// query path trip the breaker; further queries short-circuit with 503
// without reaching the handler, and the breaker re-closes after the
// cooldown and a successful probe.
func TestAdmissionBreakerTripsAndRecovers(t *testing.T) {
	clk := newAdmClock()
	broker := mq.NewBroker()
	server, err := NewServer(ServerConfig{
		Broker: broker,
		Store:  docstore.NewStore(),
		Admission: AdmissionConfig{
			BreakerFailures: 3,
			BreakerOpenFor:  time.Second,
			Now:             clk.Now,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	// A mux with one guarded route that fails on demand stands in for
	// a struggling backend.
	failing := true
	var handled int
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", server.Guard.Guard(guard.ClassQuery, func(w http.ResponseWriter, r *http.Request) {
		handled++
		if failing {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	get := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/boom")
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < 3; i++ {
		if got := get(); got != http.StatusInternalServerError {
			t.Fatalf("failing request %d = %d, want 500", i, got)
		}
	}
	if st := server.Guard.Breaker().State(); st != guard.BreakerOpen {
		t.Fatalf("breaker after 3 failures = %v, want open", st)
	}
	before := handled
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker request = %d, want 503", got)
	}
	if handled != before {
		t.Fatal("open breaker let a request through to the handler")
	}
	// Past the cooldown (OpenFor + 20% jitter ceiling) the half-open
	// probe goes through and a success re-closes.
	failing = false
	clk.Advance(1500 * time.Millisecond)
	if got := get(); got != http.StatusOK {
		t.Fatalf("half-open probe = %d, want 200", got)
	}
	if st := server.Guard.Breaker().State(); st != guard.BreakerClosed {
		t.Fatalf("breaker after probe success = %v, want closed", st)
	}
}

// TestDeadlinePropagationEndToEnd: a docstore scan that outlives the
// admission timeout is cancelled and surfaces as 504 from the REST
// layer.
func TestDeadlinePropagationEndToEnd(t *testing.T) {
	broker := mq.NewBroker()
	store := docstore.NewStore()
	server, err := NewServer(ServerConfig{
		Broker: broker,
		Store:  store,
		Admission: AdmissionConfig{
			Timeout: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	// Enough documents that the scan passes a cancellation checkpoint,
	// with a predicate that stalls past the deadline on first call.
	at := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	obs := make([]*sensing.Observation, 600)
	for i := range obs {
		obs[i] = obsAt(t, "A", 50, false, at.Add(time.Duration(i)*time.Second))
	}
	if _, err := server.BulkIngest("SC", "c", obs); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var once sync.Once
	slow := docstore.Predicate(func(v any) bool {
		once.Do(func() { <-release })
		return true
	})
	defer close(release)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /slow", server.Guard.Guard(guard.ClassQuery, func(w http.ResponseWriter, r *http.Request) {
		_, err := store.Collection(ObservationsCollection).FindContext(r.Context(),
			docstore.Doc{"deviceModel": slow}, docstore.FindOptions{})
		if err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	go func() {
		time.Sleep(150 * time.Millisecond)
		release <- struct{}{}
	}()
	resp, err := http.Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow scan = %d, want 504", resp.StatusCode)
	}
}

// TestShutdownContextDrains: ShutdownContext flips draining, stops the
// ingest loop, and repeated shutdowns are safe.
func TestShutdownContextDrains(t *testing.T) {
	server, _ := newTestServer(t)
	if err := server.StartIngest(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := server.ShutdownContext(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !server.Guard.Draining() {
		t.Fatal("shutdown did not flip the draining flag")
	}
	if err := server.ShutdownContext(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
