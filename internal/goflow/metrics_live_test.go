package goflow

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/obs"
)

// TestLiveMetricsExposition checks the live_* families flow into
// /metrics: delivery/drop/shed counters from the broker fan-out
// hooks, the connected-sockets gauge and catch-up counter from the
// hub, and the fan-out latency histogram.
func TestLiveMetricsExposition(t *testing.T) {
	broker := mq.NewBroker()
	store := docstore.NewStore()
	server, err := NewServer(ServerConfig{
		Broker: broker,
		Store:  store,
		// Buffer 1 with an instant budget: the second undrained event
		// drops and sheds, exercising every counter.
		Live: LiveConfig{Buffer: 1, SendBudget: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	Instrument(reg, server, store)
	handler := NewInstrumentedHTTPHandler(server, reg)

	// One delivered event, one dropped + shed on a never-draining sub.
	sub, err := server.Live.Subscribe([]string{"SC.#"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Publish(GoFlowExchange, "SC.c1.obs.Z1", nil, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Publish(GoFlowExchange, "SC.c1.obs.Z1", nil, []byte("b")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Done():
	default:
		t.Fatal("expected the stalled subscription to be shed")
	}
	// A stream handler releases its subscription on the way out; do
	// the same so the gauge reads zero.
	server.Live.Release(sub)

	// One cursor catch-up read (recorder is fine: not a stream).
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/apps/SC/observations?cursor=", nil))
	if rec.Code != 200 {
		t.Fatalf("cursor read = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"live_connected_sockets 0", // shed released the only sub
		"live_delivered_total 1",
		"live_dropped_total 1",
		"live_shed_total 1",
		"live_fanout_duration_seconds_count 2",
		"live_cursor_catchup_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
