package goflow

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/urbancivics/goflow/internal/guard"
)

// Admission is the server-side overload protection of the REST layer:
// every API request passes through priority-classed admission control
// before reaching its handler. The paper's large-scale deployment
// found that burst load from synchronized mobile clients (alarm-clock
// upload schedules, connectivity-restored floods) is the norm, not
// the exception — the server must degrade predictably instead of
// collapsing. Guards run cheapest-first:
//
//  1. draining flag — a shutting-down server refuses new work
//  2. per-device token bucket — one hot device cannot starve the rest
//  3. adaptive load shedder — under pressure, analytics requests are
//     refused first, then queries; sensed observations are dropped
//     only as the last resort (data is the product; dashboards wait)
//  4. circuit breaker on the query path — repeated backend failures
//     stop the stampede into a struggling store
//  5. per-class concurrency semaphore with a bounded wait queue —
//     bounded latency beats unbounded queueing
//
// Rejections carry Retry-After so well-behaved clients (the mq
// resilient dialer, the uploader transport) back off instead of
// hammering.
type Admission struct {
	limiter  *guard.RateLimiter
	shedder  *guard.Shedder
	breaker  *guard.Breaker
	sems     map[guard.Class]*guard.Semaphore
	timeout  time.Duration
	draining atomic.Bool

	// hooks observes admission decisions for metrics; the zero value
	// is inert.
	hooks AdmissionHooks
}

// AdmissionHooks observes guard decisions. Nil funcs are skipped.
type AdmissionHooks struct {
	// Admitted fires when a request passes every guard.
	Admitted func(class guard.Class)
	// Rejected fires with the guard that refused: "draining",
	// "rate_limited", "overloaded", "breaker_open" or "queue_full".
	Rejected func(class guard.Class, reason string)
	// Observed fires with the handler latency of admitted requests.
	Observed func(class guard.Class, d time.Duration)
	// BreakerChange fires on query-path breaker transitions.
	BreakerChange func(from, to guard.BreakerState)
}

// AdmissionConfig parameterizes NewAdmission. The zero value enables
// every guard with defaults sized for a single-node deployment.
type AdmissionConfig struct {
	// RatePerDevice is the sustained ingest requests/second allowed
	// per device key (X-Device-ID header, else client IP). 0 uses
	// DefaultRatePerDevice; negative disables rate limiting.
	RatePerDevice float64
	// RateBurst is the token-bucket burst (0 = 4x the rate).
	RateBurst float64
	// Concurrency bounds in-flight requests per class; 0 entries use
	// DefaultConcurrency.
	Concurrency map[guard.Class]int
	// MaxWaiting bounds the semaphore wait queue per class
	// (0 = same as the concurrency limit).
	MaxWaiting int
	// ShedTarget is the p99 latency above which shedding starts
	// (0 = DefaultShedTarget; negative disables the shedder).
	ShedTarget time.Duration
	// BreakerFailures trips the query breaker after that many
	// consecutive backend failures (0 = 5; negative disables).
	BreakerFailures int
	// BreakerOpenFor is the breaker cooldown (0 = 5s).
	BreakerOpenFor time.Duration
	// Timeout bounds each admitted request's context; the deadline
	// propagates through the data manager into docstore scans
	// (0 = DefaultRequestTimeout; negative disables).
	Timeout time.Duration
	// RetryAfter is the hint attached to shed responses (0 = 1s).
	RetryAfter time.Duration
	// Seed feeds the breaker's deterministic probe jitter.
	Seed int64
	// Now overrides the clock for tests.
	Now func() time.Time
}

// Defaults for AdmissionConfig zero values.
const (
	DefaultRatePerDevice  = 50.0
	DefaultConcurrency    = 64
	DefaultShedTarget     = 250 * time.Millisecond
	DefaultRequestTimeout = 10 * time.Second
)

// NewAdmission builds the guard chain.
func NewAdmission(cfg AdmissionConfig) *Admission {
	rate := cfg.RatePerDevice
	if rate == 0 {
		rate = DefaultRatePerDevice
	}
	if rate < 0 {
		rate = 0 // guard.RateLimiter treats 0 as unlimited
	}
	burst := cfg.RateBurst
	if burst == 0 {
		burst = 4 * rate
	}
	target := cfg.ShedTarget
	if target == 0 {
		target = DefaultShedTarget
	}
	if target < 0 {
		target = 0 // guard.Shedder treats 0 as disabled
	}
	retryAfter := cfg.RetryAfter
	if retryAfter == 0 {
		retryAfter = time.Second
	}
	failures := cfg.BreakerFailures
	if failures == 0 {
		failures = 5
	}
	openFor := cfg.BreakerOpenFor
	if openFor == 0 {
		openFor = 5 * time.Second
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	if timeout < 0 {
		timeout = 0
	}
	a := &Admission{
		limiter: guard.NewRateLimiter(guard.RateLimiterConfig{
			Rate:  rate,
			Burst: burst,
			Now:   cfg.Now,
		}),
		shedder: guard.NewShedder(guard.ShedderConfig{
			Target:     target,
			RetryAfter: retryAfter,
			Now:        cfg.Now,
		}),
		sems:    make(map[guard.Class]*guard.Semaphore, 3),
		timeout: timeout,
	}
	if cfg.BreakerFailures >= 0 {
		a.breaker = guard.NewBreaker(guard.BreakerConfig{
			FailureThreshold: failures,
			OpenFor:          openFor,
			Jitter:           openFor / 5,
			Seed:             cfg.Seed,
			Now:              cfg.Now,
			OnStateChange: func(from, to guard.BreakerState) {
				if a.hooks.BreakerChange != nil {
					a.hooks.BreakerChange(from, to)
				}
			},
		})
	}
	for _, c := range guard.Classes() {
		limit := cfg.Concurrency[c]
		if limit <= 0 {
			limit = DefaultConcurrency
		}
		maxWait := cfg.MaxWaiting
		if maxWait <= 0 {
			maxWait = limit
		}
		a.sems[c] = guard.NewSemaphore(limit, maxWait)
	}
	return a
}

// SetHooks installs decision observers. Call before serving traffic.
func (a *Admission) SetHooks(h AdmissionHooks) { a.hooks = h }

// SetDraining flips the draining flag: while set, every guarded
// request is refused with 503 so load balancers and clients move on
// during graceful shutdown.
func (a *Admission) SetDraining(v bool) { a.draining.Store(v) }

// Draining reports the flag.
func (a *Admission) Draining() bool { return a.draining.Load() }

// Breaker exposes the query-path breaker (nil when disabled).
func (a *Admission) Breaker() *guard.Breaker { return a.breaker }

// Shedder exposes the latency-driven shedder.
func (a *Admission) Shedder() *guard.Shedder { return a.shedder }

// InFlight reports admitted, unfinished requests of a class.
func (a *Admission) InFlight(c guard.Class) int { return a.sems[c].InUse() }

// deviceKey identifies the rate-limit bucket: the device id when the
// client sends one, else the remote IP (ports churn per connection
// and would defeat the bucket).
func deviceKey(r *http.Request) string {
	if id := r.Header.Get("X-Device-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// rejectHTTP writes a guard rejection: 429 for per-device rate
// limiting, 503 for everything else, always with Retry-After.
func rejectHTTP(w http.ResponseWriter, err error, fallback time.Duration) {
	status := http.StatusServiceUnavailable
	if errors.Is(err, guard.ErrRateLimited) {
		status = http.StatusTooManyRequests
	}
	retry := guard.RetryAfterHint(err)
	if retry <= 0 {
		retry = fallback
	}
	secs := int(retry / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusRecorder captures the handler's status code so the breaker
// can distinguish backend failure (5xx) from success.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Guard wraps an API handler with the admission chain for one
// priority class. A nil Admission passes requests straight through,
// so handlers never need to nil-check.
func (a *Admission) Guard(class guard.Class, next http.HandlerFunc) http.HandlerFunc {
	if a == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if a.draining.Load() {
			a.reject(class, "draining")
			rejectHTTP(w, guard.Reject(guard.ErrDraining, time.Second), time.Second)
			return
		}
		// Per-device fairness applies to ingest only: one misbehaving
		// device throttles itself, not the whole fleet; queries are
		// governed by the shedder and semaphores below.
		if class == guard.ClassIngest {
			if ok, retry := a.limiter.Allow(deviceKey(r)); !ok {
				a.reject(class, "rate_limited")
				rejectHTTP(w, guard.Reject(guard.ErrRateLimited, retry), retry)
				return
			}
		}
		if err := a.shedder.Admit(class); err != nil {
			a.reject(class, "overloaded")
			rejectHTTP(w, err, time.Second)
			return
		}
		useBreaker := a.breaker != nil && class == guard.ClassQuery
		if useBreaker {
			if err := a.breaker.Allow(); err != nil {
				a.reject(class, "breaker_open")
				rejectHTTP(w, err, time.Second)
				return
			}
		}
		sem := a.sems[class]
		if err := sem.Acquire(r.Context()); err != nil {
			a.reject(class, "queue_full")
			rejectHTTP(w, guard.Reject(err, time.Second), time.Second)
			return
		}
		defer sem.Release()

		if a.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), a.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if a.hooks.Admitted != nil {
			a.hooks.Admitted(class)
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next(rec, r)
		elapsed := time.Since(start)
		a.shedder.Observe(elapsed)
		if a.hooks.Observed != nil {
			a.hooks.Observed(class, elapsed)
		}
		if useBreaker {
			a.breaker.Record(rec.status < http.StatusInternalServerError)
		}
	}
}

// AdmitLive runs the admission guards that make sense for a live
// stream attach: the draining flag and the load shedder (ClassLive
// shares the bottom shed rank with analytics — a refused stream is
// recoverable via the cursor API). Streams deliberately skip Guard's
// per-request semaphore and timeout: a socket held for minutes would
// permanently occupy a slot sized for request/response traffic.
// Stream concurrency is bounded by the hub's MaxSockets and slow
// consumers by per-socket send budgets instead.
func (a *Admission) AdmitLive() error {
	if a == nil {
		return nil
	}
	if a.draining.Load() {
		a.reject(guard.ClassLive, "draining")
		return guard.Reject(guard.ErrDraining, time.Second)
	}
	if err := a.shedder.Admit(guard.ClassLive); err != nil {
		a.reject(guard.ClassLive, "overloaded")
		return err
	}
	if a.hooks.Admitted != nil {
		a.hooks.Admitted(guard.ClassLive)
	}
	return nil
}

func (a *Admission) reject(class guard.Class, reason string) {
	if a.hooks.Rejected != nil {
		a.hooks.Rejected(class, reason)
	}
}
