package goflow

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/urbancivics/goflow/internal/mq"
)

// HTTP surface of the live layer:
//
//	GET /v1/live/ws      WebSocket push stream
//	GET /v1/live/sse     Server-Sent Events push stream
//	GET /v1/live/latest  latest-per-zone cache snapshot
//
// Both streams accept the same selection parameters: either repeated
// pattern=<topic pattern> (raw broker syntax, * = one word, # = any
// tail), or the structured app=, datatype=, zone= trio compiled onto
// the canonical "<app>.<client>.<datatype>.<zone>" key shape.
//
// Stream handlers do NOT go through Admission.Guard: a stream holds
// its connection for minutes, and parking it in the per-request
// semaphore would let a handful of dashboards starve the query
// classes. They use AdmitLive (draining + shedder only); concurrency
// is bounded by the hub's MaxSockets and slow consumers by the
// per-socket send budget.

// livePatternsFromRequest compiles the selection parameters.
func livePatternsFromRequest(r *http.Request) ([]string, error) {
	qv := r.URL.Query()
	return livePatterns(qv["pattern"], qv.Get("app"), qv.Get("datatype"), qv.Get("zone"))
}

// liveSubscribe runs admission and attaches a hub subscription,
// writing the HTTP error itself when it fails.
func (h *apiHandler) liveSubscribe(w http.ResponseWriter, r *http.Request) (sub liveSubHandle, ok bool) {
	hub := h.server.Live
	if hub == nil {
		writeJSON(w, http.StatusNotImplemented, map[string]string{"error": "live subscriptions disabled"})
		return liveSubHandle{}, false
	}
	if err := h.server.Guard.AdmitLive(); err != nil {
		rejectHTTP(w, err, time.Second)
		return liveSubHandle{}, false
	}
	patterns, err := livePatternsFromRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return liveSubHandle{}, false
	}
	s, err := hub.Subscribe(patterns)
	if err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, ErrLiveLimit) {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return liveSubHandle{}, false
	}
	return liveSubHandle{hub: hub, sub: s}, true
}

// liveSubHandle pairs a subscription with its owning hub for release.
type liveSubHandle struct {
	hub *LiveHub
	sub *mq.LiveSub
}

// liveWS upgrades to WebSocket and streams matching events as text
// frames. A reader goroutine answers pings and notices client closes;
// every exit path closes the connection, which in turn ends the
// reader — no goroutine outlives the socket.
func (h *apiHandler) liveWS(w http.ResponseWriter, r *http.Request) {
	handle, ok := h.liveSubscribe(w, r)
	if !ok {
		return
	}
	sub := handle.sub
	ws, err := wsUpgrade(w, r, liveWriteTimeout(handle.hub))
	if err != nil {
		handle.hub.Release(sub)
		return
	}
	defer handle.hub.Release(sub)
	defer ws.Close()

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			op, payload, err := ws.ReadFrame()
			if err != nil {
				return
			}
			switch op {
			case wsOpClose:
				return
			case wsOpPing:
				if ws.WritePong(payload) != nil {
					return
				}
			}
		}
	}()

	ctx := r.Context()
	for {
		select {
		case m := <-sub.C():
			data, merr := json.Marshal(liveEventFromMessage(&m))
			if merr != nil {
				continue
			}
			if ws.WriteText(data) != nil {
				return
			}
		case <-sub.Done():
			code, reason := uint16(wsCloseGoingAway), "server draining"
			if sub.Shed() {
				code, reason = wsCloseTryLater, "send budget exhausted; reconnect and catch up with cursor"
			}
			_ = ws.WriteClose(code, reason)
			return
		case <-readerDone:
			return
		case <-ctx.Done():
			_ = ws.WriteClose(wsCloseGoingAway, "")
			return
		}
	}
}

// liveSSE streams matching events as Server-Sent Events — the
// curl-able transport: curl -N 'http://host/v1/live/sse?zone=FR75013'.
func (h *apiHandler) liveSSE(w http.ResponseWriter, r *http.Request) {
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported on this connection"})
		return
	}
	handle, ok := h.liveSubscribe(w, r)
	if !ok {
		return
	}
	sub := handle.sub
	defer handle.hub.Release(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	rc := http.NewResponseController(w)
	timeout := liveWriteTimeout(handle.hub)
	ctx := r.Context()
	for {
		select {
		case m := <-sub.C():
			data, merr := json.Marshal(liveEventFromMessage(&m))
			if merr != nil {
				continue
			}
			_ = rc.SetWriteDeadline(time.Now().Add(timeout))
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		case <-sub.Done():
			reason := "draining"
			if sub.Shed() {
				reason = "shed"
			}
			_ = rc.SetWriteDeadline(time.Now().Add(timeout))
			fmt.Fprintf(w, "event: end\ndata: {\"reason\":%q}\n\n", reason)
			fl.Flush()
			return
		case <-ctx.Done():
			return
		}
	}
}

// liveWriteTimeout bounds each frame/event write: the send budget's
// grace when one is configured, a conservative default otherwise. A
// peer that cannot absorb a frame within the time we would tolerate a
// full mailbox has no claim on the writer.
func liveWriteTimeout(hub *LiveHub) time.Duration {
	if t := hub.Config().SendBudget; t > 0 {
		return t
	}
	return 10 * time.Second
}

// liveLatest serves the latest-per-zone cache: the whole map, or one
// zone with ?zone=.
func (h *apiHandler) liveLatest(w http.ResponseWriter, r *http.Request) {
	cache := h.server.LiveCache
	if cache == nil {
		writeJSON(w, http.StatusNotImplemented, map[string]string{"error": "latest cache disabled"})
		return
	}
	if zone := r.URL.Query().Get("zone"); zone != "" {
		e, ok := cache.Zone(zone)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no observations for zone " + zone})
			return
		}
		writeJSON(w, http.StatusOK, e)
		return
	}
	entries := cache.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(entries),
		"zones": entries,
	})
}
