package goflow

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Minimal server-side WebSocket (RFC 6455), stdlib only: the live
// layer needs exactly a handshake, text frames out, and control
// frames in — not a dependency. Fragmented messages and extensions
// are not supported; the server never sends fragmented frames and a
// client has no reason to fragment the nothing-or-control traffic it
// sends here.

// wsGUID is the protocol-fixed accept-key suffix (RFC 6455 §1.3).
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket opcodes.
const (
	wsOpText  = 0x1
	wsOpClose = 0x8
	wsOpPing  = 0x9
	wsOpPong  = 0xA
)

// WebSocket close codes used by the live layer.
const (
	wsCloseGoingAway = 1001 // server drain
	wsCloseTryLater  = 1013 // shed slow consumer: reconnect and cursor-catch-up
)

// wsMaxClientFrame caps inbound payloads. Clients of the live API
// send only control frames and the occasional subscription keepalive;
// anything bigger is abuse.
const wsMaxClientFrame = 4096

// wsAcceptKey computes the Sec-WebSocket-Accept token.
func wsAcceptKey(key string) string {
	sum := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(sum[:])
}

// wsConn is an upgraded connection. Writes are mutex-serialized: the
// event writer and the control-frame reader (pong replies) share the
// socket.
type wsConn struct {
	conn net.Conn
	br   *bufio.Reader

	// writeTimeout bounds every frame write so a black-holed TCP peer
	// surfaces as an error instead of blocking the writer forever.
	writeTimeout time.Duration

	wmu sync.Mutex
}

// wsUpgrade performs the server handshake. On failure it has already
// written the HTTP error response.
func wsUpgrade(w http.ResponseWriter, r *http.Request, writeTimeout time.Duration) (*wsConn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") ||
		!headerContainsToken(r.Header.Get("Connection"), "upgrade") {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "websocket upgrade required"})
		return nil, errors.New("goflow: not a websocket upgrade request")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" || r.Header.Get("Sec-WebSocket-Version") != "13" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad websocket handshake"})
		return nil, errors.New("goflow: bad websocket handshake")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "websocket unsupported on this connection"})
		return nil, errors.New("goflow: response writer cannot hijack")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("goflow: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAcceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close()
		return nil, err
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return &wsConn{conn: conn, br: rw.Reader, writeTimeout: writeTimeout}, nil
}

// headerContainsToken reports whether a comma-separated header value
// carries the token (case-insensitive) — "Connection: keep-alive,
// Upgrade" must match.
func headerContainsToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// Close tears down the underlying connection.
func (c *wsConn) Close() error { return c.conn.Close() }

// writeFrame sends one unmasked (server→client) frame.
func (c *wsConn) writeFrame(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.writeTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return err
		}
	}
	var hdr [10]byte
	hdr[0] = 0x80 | opcode // FIN set, no fragmentation
	n := 2
	switch l := len(payload); {
	case l < 126:
		hdr[1] = byte(l)
	case l <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(l))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(l))
		n = 10
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

// WriteText sends a text frame.
func (c *wsConn) WriteText(payload []byte) error {
	return c.writeFrame(wsOpText, payload)
}

// WritePong answers a ping.
func (c *wsConn) WritePong(payload []byte) error {
	return c.writeFrame(wsOpPong, payload)
}

// WriteClose sends a close frame with a code and reason.
func (c *wsConn) WriteClose(code uint16, reason string) error {
	if len(reason) > 123 {
		reason = reason[:123]
	}
	payload := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(payload, code)
	copy(payload[2:], reason)
	return c.writeFrame(wsOpClose, payload)
}

// ReadFrame reads one client frame, unmasking the payload. Client
// frames must be masked (RFC 6455 §5.1) and fit wsMaxClientFrame.
func (c *wsConn) ReadFrame() (opcode byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	opcode = hdr[0] & 0x0F
	if hdr[0]&0x80 == 0 {
		return 0, nil, errors.New("goflow: fragmented client frame unsupported")
	}
	masked := hdr[1]&0x80 != 0
	if !masked {
		return 0, nil, errors.New("goflow: unmasked client frame")
	}
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > wsMaxClientFrame {
		return 0, nil, fmt.Errorf("goflow: client frame of %d bytes exceeds cap", length)
	}
	var mask [4]byte
	if _, err = io.ReadFull(c.br, mask[:]); err != nil {
		return 0, nil, err
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	for i := range payload {
		payload[i] ^= mask[i%4]
	}
	return opcode, payload, nil
}
