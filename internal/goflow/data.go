package goflow

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/geo"
	"github.com/urbancivics/goflow/internal/sensing"
	"github.com/urbancivics/goflow/internal/storage"
)

// Crowd-sensed data management: observations arriving through the
// broker (or bulk-loaded by simulations) are validated, anonymized,
// stamped and stored as documents; retrieval applies filter
// parameters and, for foreign apps, the owning app's open-data
// policy.

// ObservationsCollection is the docstore collection name.
const ObservationsCollection = "observations"

// DataManager stores and retrieves crowd-sensed observations. It
// talks to storage exclusively through the Engine seam, so the same
// code serves a bare in-memory store, a WAL-backed single node, or a
// sharded replicated cluster.
type DataManager struct {
	data     storage.Engine
	accounts *Accounts
	zones    *geo.ZoneGrid
}

// NewDataManager wires the storage layer over a plain document store.
// zones may be nil to skip zone derivation.
func NewDataManager(store *docstore.Store, accounts *Accounts, zones *geo.ZoneGrid) *DataManager {
	return NewDataManagerEngine(storage.NewLocal(store), accounts, zones)
}

// NewDataManagerEngine wires the storage layer over an arbitrary
// engine (a Local, a cluster Router, a replicated shard leader).
func NewDataManagerEngine(data storage.Engine, accounts *Accounts, zones *geo.ZoneGrid) *DataManager {
	for _, field := range []string{"deviceModel", "appId", "userId", "provider", "mode", "appVersion", "zone"} {
		data.EnsureIndex(ObservationsCollection, field)
	}
	return &DataManager{data: data, accounts: accounts, zones: zones}
}

// Engine exposes the storage engine, for jobs and server wiring.
func (dm *DataManager) Engine() storage.Engine { return dm.data }

// Ingest validates, anonymizes and stores one observation published
// by clientID for appID; it returns the stored document id.
func (dm *DataManager) Ingest(appID, clientID string, o *sensing.Observation, receivedAt time.Time) (string, error) {
	if o == nil {
		return "", errors.New("goflow: nil observation")
	}
	if err := o.Validate(); err != nil {
		return "", fmt.Errorf("ingest: %w", err)
	}
	doc := dm.toDoc(appID, clientID, o, receivedAt)
	id, err := dm.data.Insert(ObservationsCollection, doc)
	if err != nil {
		return "", fmt.Errorf("store observation: %w", err)
	}
	return id, nil
}

// IngestBatch validates, anonymizes and stores a run of observations
// from one client through a single store operation; it returns the
// ids of the stored documents. On the first invalid observation the
// valid prefix is still stored and the error returned, mirroring
// Ingest called in a loop. Anonymization runs once for the whole
// batch.
func (dm *DataManager) IngestBatch(appID, clientID string, observations []*sensing.Observation, receivedAt []time.Time) ([]string, error) {
	if len(observations) == 0 {
		return nil, nil
	}
	anonID := dm.accounts.Anonymize(clientID)
	docs := make([]docstore.Doc, 0, len(observations))
	var buildErr error
	for i, o := range observations {
		if o == nil {
			buildErr = fmt.Errorf("ingest #%d: nil observation", i)
			break
		}
		if err := o.Validate(); err != nil {
			buildErr = fmt.Errorf("ingest #%d: %w", i, err)
			break
		}
		docs = append(docs, dm.toDocAnon(appID, anonID, o, receivedAt[i]))
	}
	ids, err := dm.data.InsertMany(ObservationsCollection, docs)
	if err != nil {
		return ids, fmt.Errorf("store observations: %w", err)
	}
	return ids, buildErr
}

// toDoc flattens an observation into a document. The contributor is
// stored under the anonymized id only (CNIL privacy policy).
func (dm *DataManager) toDoc(appID, clientID string, o *sensing.Observation, receivedAt time.Time) docstore.Doc {
	return dm.toDocAnon(appID, dm.accounts.Anonymize(clientID), o, receivedAt)
}

// toDocAnon is toDoc with the contributor already anonymized — batch
// ingest resolves the anonymous id once instead of per observation.
func (dm *DataManager) toDocAnon(appID, anonID string, o *sensing.Observation, receivedAt time.Time) docstore.Doc {
	doc := docstore.Doc{
		"appId":        appID,
		"userId":       anonID,
		"deviceModel":  o.DeviceModel,
		"appVersion":   o.AppVersion,
		"mode":         o.Mode.String(),
		"spl":          o.SPL,
		"activity":     o.Activity.String(),
		"activityConf": o.ActivityConfidence,
		"sensedAt":     o.SensedAt,
		"receivedAt":   receivedAt,
		"localized":    o.Localized(),
		"provider":     sensing.ProviderNone.String(),
	}
	if o.Loc != nil {
		doc["provider"] = o.Loc.Provider.String()
		doc["lat"] = o.Loc.Point.Lat
		doc["lon"] = o.Loc.Point.Lon
		doc["accuracyM"] = o.Loc.AccuracyM
		if dm.zones != nil {
			doc["zone"] = dm.zones.ZoneID(o.Loc.Point)
		}
	}
	return doc
}

// Query selects stored observations.
type Query struct {
	AppID       string     `json:"appId,omitempty"`
	DeviceModel string     `json:"deviceModel,omitempty"`
	UserID      string     `json:"userId,omitempty"` // anonymized id
	Provider    string     `json:"provider,omitempty"`
	Mode        string     `json:"mode,omitempty"`
	AppVersion  string     `json:"appVersion,omitempty"`
	Zone        string     `json:"zone,omitempty"`
	Localized   *bool      `json:"localized,omitempty"`
	From        *time.Time `json:"from,omitempty"`
	To          *time.Time `json:"to,omitempty"`
	MinSPL      *float64   `json:"minSpl,omitempty"`
	MaxSPL      *float64   `json:"maxSpl,omitempty"`
	Limit       int        `json:"limit,omitempty"`
	Skip        int        `json:"skip,omitempty"`
}

// toFilter compiles the query into a docstore filter.
func (q Query) toFilter() docstore.Doc {
	f := docstore.Doc{}
	if q.AppID != "" {
		f["appId"] = q.AppID
	}
	if q.DeviceModel != "" {
		f["deviceModel"] = q.DeviceModel
	}
	if q.UserID != "" {
		f["userId"] = q.UserID
	}
	if q.Provider != "" {
		f["provider"] = q.Provider
	}
	if q.Mode != "" {
		f["mode"] = q.Mode
	}
	if q.AppVersion != "" {
		f["appVersion"] = q.AppVersion
	}
	if q.Zone != "" {
		f["zone"] = q.Zone
	}
	if q.Localized != nil {
		f["localized"] = *q.Localized
	}
	timeCond := map[string]any{}
	if q.From != nil {
		timeCond["$gte"] = *q.From
	}
	if q.To != nil {
		timeCond["$lt"] = *q.To
	}
	if len(timeCond) > 0 {
		f["sensedAt"] = timeCond
	}
	splCond := map[string]any{}
	if q.MinSPL != nil {
		splCond["$gte"] = *q.MinSPL
	}
	if q.MaxSPL != nil {
		splCond["$lt"] = *q.MaxSPL
	}
	if len(splCond) > 0 {
		f["spl"] = splCond
	}
	return f
}

// Retrieve returns matching observation documents sorted by sensing
// time.
func (dm *DataManager) Retrieve(q Query) ([]docstore.Doc, error) {
	return dm.RetrieveContext(context.Background(), q)
}

// RetrieveContext is Retrieve bounded by ctx: the deadline propagates
// into the docstore scan, so a query outliving its HTTP handler (or
// the admission timeout) is cancelled instead of holding the
// collection lock to completion.
func (dm *DataManager) RetrieveContext(ctx context.Context, q Query) ([]docstore.Doc, error) {
	docs, err := dm.data.FindContext(ctx, ObservationsCollection, q.toFilter(), docstore.FindOptions{
		SortField: "sensedAt",
		Skip:      q.Skip,
		Limit:     q.Limit,
	})
	if err != nil {
		return nil, fmt.Errorf("retrieve: %w", err)
	}
	return docs, nil
}

// ErrCursorUnsupported reports a storage engine without a stable
// global scan order (the cluster Router: shards scan independently).
// The HTTP layer maps it to 501 — clients fall back to offset pages.
var ErrCursorUnsupported = errors.New("goflow: cursor pagination not supported by this storage engine")

// RetrieveAfterContext returns up to q.Limit observations strictly
// after the document afterID ("" = from the beginning) together with
// the last returned document's id — the anchor for the next cursor.
// Cursor reads keep the engine's stable scan order (insertion order),
// not the sensedAt sort of offset reads: the no-gap/no-duplicate
// resume guarantee needs a total order that new inserts only append
// to, and arrival order is exactly that.
func (dm *DataManager) RetrieveAfterContext(ctx context.Context, afterID string, q Query) ([]docstore.Doc, string, error) {
	sc, ok := dm.data.(storage.CursorScanner)
	if !ok {
		return nil, "", ErrCursorUnsupported
	}
	docs, err := sc.ScanAfter(ctx, ObservationsCollection, afterID, q.toFilter(), q.Limit)
	if err != nil {
		return nil, "", fmt.Errorf("retrieve after: %w", err)
	}
	lastID := ""
	if len(docs) > 0 {
		lastID, _ = docs[len(docs)-1][docstore.IDField].(string)
	}
	return docs, lastID, nil
}

// RetrieveSharedAfterContext is RetrieveAfterContext under the owning
// app's open-data policy. The next-cursor anchor is captured before
// the policy projection strips the _id field.
func (dm *DataManager) RetrieveSharedAfterContext(ctx context.Context, ownerApp, requestingApp, afterID string, q Query) ([]docstore.Doc, string, error) {
	q.AppID = ownerApp
	docs, lastID, err := dm.RetrieveAfterContext(ctx, afterID, q)
	if err != nil {
		return nil, "", err
	}
	if requestingApp != ownerApp {
		app, aerr := dm.accounts.App(ownerApp)
		if aerr != nil {
			return nil, "", aerr
		}
		docs = applyPolicy(docs, app.Policy)
	}
	return docs, lastID, nil
}

// Count returns the number of matching observations.
func (dm *DataManager) Count(q Query) (int, error) {
	return dm.CountContext(context.Background(), q)
}

// CountContext is Count bounded by ctx.
func (dm *DataManager) CountContext(ctx context.Context, q Query) (int, error) {
	return dm.data.CountContext(ctx, ObservationsCollection, q.toFilter())
}

// RetrieveShared returns matching observations of appID as visible to
// requestingApp under the owning app's open-data policy: foreign apps
// see only the declared shared fields and never the contributor id.
func (dm *DataManager) RetrieveShared(ownerApp, requestingApp string, q Query) ([]docstore.Doc, error) {
	return dm.RetrieveSharedContext(context.Background(), ownerApp, requestingApp, q)
}

// RetrieveSharedContext is RetrieveShared bounded by ctx.
func (dm *DataManager) RetrieveSharedContext(ctx context.Context, ownerApp, requestingApp string, q Query) ([]docstore.Doc, error) {
	q.AppID = ownerApp
	docs, err := dm.RetrieveContext(ctx, q)
	if err != nil {
		return nil, err
	}
	if requestingApp == ownerApp {
		return docs, nil
	}
	app, err := dm.accounts.App(ownerApp)
	if err != nil {
		return nil, err
	}
	return applyPolicy(docs, app.Policy), nil
}

// applyPolicy projects documents to an app's shared fields; user ids
// are never shared.
func applyPolicy(docs []docstore.Doc, policy DataPolicy) []docstore.Doc {
	shared := make(map[string]bool, len(policy.SharedFields))
	for _, f := range policy.SharedFields {
		if f == "userId" {
			continue
		}
		shared[f] = true
	}
	out := make([]docstore.Doc, len(docs))
	for i, d := range docs {
		p := docstore.Doc{}
		for k, v := range d {
			if shared[k] {
				p[k] = v
			}
		}
		out[i] = p
	}
	return out
}

// DeleteUserData erases a contributor's stored observations (right to
// erasure); it returns the number of documents removed.
func (dm *DataManager) DeleteUserData(anonID string) (int, error) {
	return dm.data.DeleteMany(ObservationsCollection, docstore.Doc{"userId": anonID})
}

// ObservationFromDoc rebuilds a sensing.Observation from its stored
// document form (the inverse of the ingest flattening). Server-side
// analyses — background jobs, the SoundCity exposure dashboards —
// use it to run the sensing-layer algorithms on stored data.
func ObservationFromDoc(d docstore.Doc) (*sensing.Observation, error) {
	o := &sensing.Observation{}
	var ok bool
	if o.UserID, ok = d["userId"].(string); !ok {
		return nil, errors.New("goflow: document without userId")
	}
	if o.DeviceModel, ok = d["deviceModel"].(string); !ok {
		return nil, errors.New("goflow: document without deviceModel")
	}
	o.AppVersion, _ = d["appVersion"].(string)
	modeStr, _ := d["mode"].(string)
	mode, err := sensing.ParseMode(modeStr)
	if err != nil {
		return nil, err
	}
	o.Mode = mode
	if o.SPL, ok = docFloat(d["spl"]); !ok {
		return nil, errors.New("goflow: document without spl")
	}
	actStr, _ := d["activity"].(string)
	if act, err := sensing.ParseActivity(actStr); err == nil {
		o.Activity = act
	} else {
		o.Activity = sensing.ActivityUnknown
	}
	if conf, ok := docFloat(d["activityConf"]); ok {
		o.ActivityConfidence = conf
	}
	if o.SensedAt, ok = d["sensedAt"].(time.Time); !ok {
		return nil, errors.New("goflow: document without sensedAt")
	}
	o.ReceivedAt, _ = d["receivedAt"].(time.Time)
	if localized, _ := d["localized"].(bool); localized {
		lat, latOK := docFloat(d["lat"])
		lon, lonOK := docFloat(d["lon"])
		acc, accOK := docFloat(d["accuracyM"])
		providerStr, _ := d["provider"].(string)
		provider, err := sensing.ParseProvider(providerStr)
		if latOK && lonOK && accOK && err == nil {
			o.Loc = &sensing.Location{
				Point:     geo.Point{Lat: lat, Lon: lon},
				AccuracyM: acc,
				Provider:  provider,
			}
		}
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("rebuild observation: %w", err)
	}
	return o, nil
}

// docFloat accepts the numeric kinds a document may carry.
func docFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	default:
		return 0, false
	}
}
