package goflow

import (
	"net/http"
	"sort"
	"time"

	"github.com/urbancivics/goflow/internal/predict"
)

// Forecast endpoints: the predictive layer's REST surface.
//
//	GET /v1/zones/{zone}/forecast   one zone's T+horizon forecast
//	GET /v1/noisemap/forecast       every warm zone's forecast
//
// Both run under the analytics admission class — forecasts are
// dashboard reads and are the first thing shed under overload; ingest
// never queues behind them. Like the noise endpoints they aggregate
// across apps and expose no contributor data. When the server runs
// without forecasting (-predict off, or no series view) they answer
// 501 so clients can distinguish "not enabled" from "no data".

// errPredictDisabled is the 501 body for servers without forecasting.
func errPredictDisabled(w http.ResponseWriter) {
	writeJSON(w, http.StatusNotImplemented, map[string]string{
		"error": "forecasting not enabled on this server (start with -predict over a -series engine)",
	})
}

// zoneForecast serves one zone's forecast at the current instant.
func (h *apiHandler) zoneForecast(w http.ResponseWriter, r *http.Request) {
	f := h.server.Predict
	if f == nil {
		errPredictDisabled(w)
		return
	}
	fc, ok, err := f.ZoneForecast(r.Context(), r.PathValue("zone"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "no forecast: zone has insufficient recent history",
		})
		return
	}
	writeJSON(w, http.StatusOK, fc)
}

// noisemapForecast serves the whole-city forecast sweep, sorted by
// zone id.
func (h *apiHandler) noisemapForecast(w http.ResponseWriter, r *http.Request) {
	f := h.server.Predict
	if f == nil {
		errPredictDisabled(w)
		return
	}
	fcs, err := f.Sweep(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	zones := make([]predict.Forecast, 0, len(fcs))
	for _, fc := range fcs {
		zones = append(zones, fc)
	}
	sort.Slice(zones, func(i, j int) bool { return zones[i].Zone < zones[j].Zone })
	var generatedAt, target time.Time
	if len(zones) > 0 {
		generatedAt, target = zones[0].GeneratedAt, zones[0].Target
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generatedAt": generatedAt,
		"target":      target,
		"horizon":     f.Horizon().String(),
		"count":       len(zones),
		"zones":       zones,
	})
}
