package goflow

import (
	"strings"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/guard"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/obs"
	"github.com/urbancivics/goflow/internal/predict"
	"github.com/urbancivics/goflow/internal/series"
	"github.com/urbancivics/goflow/internal/wal"
)

// Metrics adapts the hook streams of the broker, the document store
// and the ingest pipeline into obs metric families. Label values are
// classified rather than passed through raw: with one exchange and
// queue per mobile client (Figure 3's topology at 3,000+ registered
// users), labeling by queue name would explode the registry, so
// broker-side labels collapse to a bounded class —
// "goflow" (GFX/GF), "client" (E.*/Q.*), "location" (loc.*) and
// "app" (everything else).
type Metrics struct {
	reg *obs.Registry

	// Broker families, labeled by exchange/queue class.
	published  *obs.CounterVec
	unroutable *obs.CounterVec
	enqueued   *obs.CounterVec
	delivered  *obs.CounterVec
	acked      *obs.CounterVec
	nacked     *obs.CounterVec
	dropped    *obs.CounterVec
	expired    *obs.CounterVec
	queueReady *obs.GaugeVec
	queueCount *obs.GaugeVec
	conns      *obs.Gauge
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter

	// Route-cache effectiveness of the broker fast path.
	routeHits          *obs.Counter
	routeMisses        *obs.Counter
	routeInvalidations *obs.Counter

	// Client-connection resilience (reconnect/replay/retry machinery
	// of mq.DialResilient), fed through InstrumentConn.
	reconnects       *obs.Counter
	replayedTopology *obs.Counter
	publishRetries   *obs.Counter

	// Docstore families, labeled by collection (one per app, bounded).
	opDuration *obs.HistogramVec
	queries    *obs.CounterVec

	// Broker flow control and overflow accounting.
	flowPaused      *obs.CounterVec
	flowResumed     *obs.CounterVec
	flowPausedNow   *obs.Gauge
	droppedOverflow *obs.CounterVec

	// Ingest pipeline.
	ingested *obs.CounterVec
	rejected *obs.Counter

	// REST admission guards.
	guardAdmitted *obs.CounterVec
	guardRejected *obs.CounterVec
	guardLatency  *obs.HistogramVec
	guardInflight *obs.GaugeVec
	guardP99      *obs.Gauge
	breakerState  *obs.Gauge
}

// NewMetrics builds the GoFlow metric families on reg. Call
// InstrumentBroker / InstrumentStore / InstrumentServer to start
// feeding them.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg: reg,
		published: reg.CounterVec("mq_published_total",
			"Messages published, by exchange class.", "exchange"),
		unroutable: reg.CounterVec("mq_unroutable_total",
			"Publishes that matched no queue, by exchange class.", "exchange"),
		enqueued: reg.CounterVec("mq_enqueued_total",
			"Messages enqueued, by queue class.", "queue"),
		delivered: reg.CounterVec("mq_delivered_total",
			"Messages handed to consumers, by queue class.", "queue"),
		acked: reg.CounterVec("mq_acked_total",
			"Deliveries acknowledged, by queue class.", "queue"),
		nacked: reg.CounterVec("mq_nacked_total",
			"Deliveries rejected, by queue class.", "queue"),
		dropped: reg.CounterVec("mq_dropped_total",
			"Messages dropped by overflow or nack, by queue class.", "queue"),
		expired: reg.CounterVec("mq_expired_total",
			"Messages expired by TTL, by queue class.", "queue"),
		queueReady: reg.GaugeVec("mq_queue_ready",
			"Ready messages summed over the queues of a class.", "queue"),
		queueCount: reg.GaugeVec("mq_queue_count",
			"Declared queues per class.", "queue"),
		conns: reg.Gauge("mq_connections",
			"Open wire-protocol connections."),
		bytesIn: reg.Counter("mq_wire_read_bytes_total",
			"Bytes read from wire-protocol connections."),
		bytesOut: reg.Counter("mq_wire_written_bytes_total",
			"Bytes written to wire-protocol connections."),
		routeHits: reg.Counter("mq_route_cache_hits_total",
			"Publishes resolved from the memoized route cache."),
		routeMisses: reg.Counter("mq_route_cache_misses_total",
			"Publishes that walked the binding indexes."),
		routeInvalidations: reg.Counter("mq_route_cache_invalidations_total",
			"Route-cache flushes caused by topology changes."),
		reconnects: reg.Counter("mq_reconnects_total",
			"Client reconnects completed with topology replay."),
		replayedTopology: reg.Counter("mq_replayed_topology_total",
			"Topology journal entries and consumers replayed on reconnect."),
		publishRetries: reg.Counter("mq_publish_retries_total",
			"Publish frames re-sent after a transport failure."),
		opDuration: reg.HistogramVec("docstore_op_duration_seconds",
			"Document store operation latency.", nil, "collection", "op"),
		queries: reg.CounterVec("docstore_queries_total",
			"Queries by collection and index outcome.", "collection", "index"),
		flowPaused: reg.CounterVec("mq_flow_paused_total",
			"Queue flow pauses at the high watermark, by queue class.", "queue"),
		flowResumed: reg.CounterVec("mq_flow_resumed_total",
			"Queue flow resumes at the low watermark, by queue class.", "queue"),
		flowPausedNow: reg.Gauge("mq_flow_paused",
			"Queues currently pausing their publishers."),
		droppedOverflow: reg.CounterVec("mq_dropped_overflow_total",
			"Messages dropped to MaxLen overflow, by queue class.", "queue"),
		ingested: reg.CounterVec("goflow_ingested_total",
			"Observations stored by the ingest pipeline, by app.", "app"),
		rejected: reg.Counter("goflow_rejected_total",
			"Deliveries the ingest pipeline rejected."),
		guardAdmitted: reg.CounterVec("guard_admitted_total",
			"API requests admitted past every guard, by priority class.", "class"),
		guardRejected: reg.CounterVec("guard_rejected_total",
			"API requests refused by an admission guard, by class and guard.", "class", "reason"),
		guardLatency: reg.HistogramVec("guard_latency_seconds",
			"Handler latency of admitted requests, by priority class.", nil, "class"),
		guardInflight: reg.GaugeVec("guard_inflight",
			"Admitted, unfinished API requests, by priority class.", "class"),
		guardP99: reg.Gauge("guard_p99_seconds",
			"Moving-window p99 handler latency driving the load shedder."),
		breakerState: reg.Gauge("guard_breaker_state",
			"Query-path circuit breaker state (0 closed, 1 half-open, 2 open)."),
	}
}

// exchangeClass collapses an exchange name to a bounded label value
// following the channel-management naming scheme.
func exchangeClass(name string) string {
	switch {
	case name == GoFlowExchange:
		return "goflow"
	case strings.HasPrefix(name, "E."):
		return "client"
	case strings.HasPrefix(name, "loc."):
		return "location"
	default:
		return "app"
	}
}

// queueClass collapses a queue name to a bounded label value.
func queueClass(name string) string {
	switch {
	case name == GoFlowQueue:
		return "goflow"
	case strings.HasPrefix(name, "Q."):
		return "client"
	default:
		return "other"
	}
}

// classedCounters caches one counter child per name class so the
// per-event hook is a prefix check plus an atomic increment — the
// broker hooks sit on the publish hot path and must not pay the
// labeled With lookup there.
type classedCounters struct {
	goflow, client, location, app, other *obs.Counter
}

func exchangeClassed(v *obs.CounterVec) classedCounters {
	return classedCounters{
		goflow:   v.With("goflow"),
		client:   v.With("client"),
		location: v.With("location"),
		app:      v.With("app"),
	}
}

func (c *classedCounters) forExchange(name string) *obs.Counter {
	switch {
	case name == GoFlowExchange:
		return c.goflow
	case strings.HasPrefix(name, "E."):
		return c.client
	case strings.HasPrefix(name, "loc."):
		return c.location
	default:
		return c.app
	}
}

func queueClassed(v *obs.CounterVec) classedCounters {
	return classedCounters{
		goflow: v.With("goflow"),
		client: v.With("client"),
		other:  v.With("other"),
	}
}

func (c *classedCounters) forQueue(name string) *obs.Counter {
	switch {
	case name == GoFlowQueue:
		return c.goflow
	case strings.HasPrefix(name, "Q."):
		return c.client
	default:
		return c.other
	}
}

// InstrumentBroker installs hooks on the broker and registers a
// collect-time sampler that refreshes per-class queue depth gauges
// from the lock-free stats fast path.
func (m *Metrics) InstrumentBroker(b *mq.Broker) {
	published := exchangeClassed(m.published)
	unroutable := exchangeClassed(m.unroutable)
	enqueued := queueClassed(m.enqueued)
	delivered := queueClassed(m.delivered)
	acked := queueClassed(m.acked)
	nacked := queueClassed(m.nacked)
	dropped := queueClassed(m.dropped)
	expired := queueClassed(m.expired)
	overflowed := queueClassed(m.droppedOverflow)
	flowPaused := queueClassed(m.flowPaused)
	flowResumed := queueClassed(m.flowResumed)
	b.SetHooks(mq.Hooks{
		Published: func(exchange string, n int) {
			published.forExchange(exchange).Inc()
			if n == 0 {
				unroutable.forExchange(exchange).Inc()
			}
		},
		Enqueued:  func(q string) { enqueued.forQueue(q).Inc() },
		Delivered: func(q string) { delivered.forQueue(q).Inc() },
		Acked:     func(q string) { acked.forQueue(q).Inc() },
		Nacked: func(q string, requeue bool) {
			nacked.forQueue(q).Inc()
		},
		Dropped:    func(q string) { dropped.forQueue(q).Inc() },
		Overflowed: func(q string) { overflowed.forQueue(q).Inc() },
		Expired: func(q string, n int) {
			expired.forQueue(q).Add(uint64(n))
		},
		FlowPaused:            func(q string) { flowPaused.forQueue(q).Inc() },
		FlowResumed:           func(q string) { flowResumed.forQueue(q).Inc() },
		ConnOpened:            func() { m.conns.Inc() },
		ConnClosed:            func() { m.conns.Dec() },
		BytesRead:             func(n int) { m.bytesIn.Add(uint64(n)) },
		BytesWritten:          func(n int) { m.bytesOut.Add(uint64(n)) },
		RouteCacheHit:         m.routeHits.Inc,
		RouteCacheMiss:        m.routeMisses.Inc,
		RouteCacheInvalidated: m.routeInvalidations.Inc,
	})
	m.reg.OnCollect(func() {
		ready := map[string]float64{}
		count := map[string]float64{}
		for _, name := range b.Queues() {
			st, err := b.QueueStatsFast(name)
			if err != nil {
				continue // deleted between listing and sampling
			}
			cls := queueClass(name)
			ready[cls] += float64(st.Ready)
			count[cls]++
		}
		// Touch every known class so a drained class reads 0 rather
		// than holding its last sampled value.
		for _, cls := range []string{"goflow", "client", "other"} {
			m.queueReady.With(cls).Set(ready[cls])
			m.queueCount.With(cls).Set(count[cls])
		}
		m.flowPausedNow.Set(float64(len(b.PausedQueues())))
	})
}

// InstrumentAdmission feeds the guard_* families from the REST
// admission chain's decision hooks and samples the shedder p99,
// per-class in-flight gauges and breaker state at collect time.
func (m *Metrics) InstrumentAdmission(a *Admission) {
	a.SetHooks(AdmissionHooks{
		Admitted: func(c guard.Class) { m.guardAdmitted.With(c.String()).Inc() },
		Rejected: func(c guard.Class, reason string) {
			m.guardRejected.With(c.String(), reason).Inc()
		},
		Observed: func(c guard.Class, d time.Duration) {
			m.guardLatency.With(c.String()).ObserveDuration(d)
		},
	})
	m.reg.OnCollect(func() {
		m.guardP99.Set(a.Shedder().P99().Seconds())
		for _, c := range guard.Classes() {
			m.guardInflight.With(c.String()).Set(float64(a.InFlight(c)))
		}
		if b := a.Breaker(); b != nil {
			var v float64
			switch b.State() {
			case guard.BreakerHalfOpen:
				v = 1
			case guard.BreakerOpen:
				v = 2
			}
			m.breakerState.Set(v)
		}
	})
}

// InstrumentConn installs resilience hooks on a client connection
// opened with mq.DialResilient, feeding the mq_reconnects_total,
// mq_replayed_topology_total and mq_publish_retries_total families.
func (m *Metrics) InstrumentConn(c *mq.Conn) {
	c.SetConnHooks(m.ConnHooks())
}

// ConnHooks returns hooks feeding the resilience counters; pass them
// in ReconnectConfig.Hooks or install with InstrumentConn.
func (m *Metrics) ConnHooks() mq.ConnHooks {
	return mq.ConnHooks{
		Reconnected:      func(int) { m.reconnects.Inc() },
		TopologyReplayed: func(n int) { m.replayedTopology.Add(uint64(n)) },
		PublishRetried:   m.publishRetries.Inc,
	}
}

// InstrumentWAL registers the wal_* families and feeds them from the
// write-ahead log's hooks and stats. Families are created here rather
// than in NewMetrics so servers running without a WAL don't expose
// dead zero-valued series.
func (m *Metrics) InstrumentWAL(w *wal.WAL) {
	records := m.reg.Counter("wal_records_total",
		"Records appended to the write-ahead log.")
	walBytes := m.reg.Counter("wal_bytes_total",
		"Framed bytes appended to the write-ahead log.")
	fsyncs := m.reg.Counter("wal_fsyncs_total",
		"Write-ahead log segment fsync calls.")
	fsyncSeconds := m.reg.Histogram("wal_fsync_duration_seconds",
		"Latency of write-ahead log segment fsyncs.", nil)
	batch := m.reg.Histogram("wal_commit_batch_records",
		"Records made durable per group-commit fsync.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	rotations := m.reg.Counter("wal_rotations_total",
		"Write-ahead log segment rotations.")
	truncated := m.reg.Counter("wal_truncated_segments_total",
		"Sealed segments deleted by checkpoints.")
	segments := m.reg.Gauge("wal_segments",
		"Live log segments, including the active one.")
	lastLSN := m.reg.Gauge("wal_last_lsn",
		"Highest assigned log sequence number.")
	durableLSN := m.reg.Gauge("wal_durable_lsn",
		"Highest log sequence number known fsynced.")
	replayedRecords := m.reg.Gauge("wal_replayed_records",
		"Records replayed by the last crash recovery.")
	replaySeconds := m.reg.Gauge("wal_replay_seconds",
		"Wall time of the last crash-recovery replay.")
	w.SetHooks(wal.Hooks{
		Appended: func(n, b int) {
			records.Add(uint64(n))
			walBytes.Add(uint64(b))
		},
		Synced: func(n int, d time.Duration) {
			fsyncs.Inc()
			fsyncSeconds.ObserveDuration(d)
			batch.Observe(float64(n))
		},
		Rotated:   rotations.Inc,
		Truncated: func(n int) { truncated.Add(uint64(n)) },
	})
	m.reg.OnCollect(func() {
		st := w.Stats()
		segments.Set(float64(st.Segments))
		lastLSN.Set(float64(st.LastLSN))
		durableLSN.Set(float64(st.DurableLSN))
		replayedRecords.Set(float64(st.ReplayedRecords))
		replaySeconds.Set(st.ReplayDuration.Seconds())
	})
}

// InstrumentSeries registers the series_* families and feeds them
// from the time-series engine's hooks and stats. Like InstrumentWAL,
// the families are created here so servers running without a series
// engine don't expose dead zero-valued series.
func (m *Metrics) InstrumentSeries(db *series.DB) {
	appended := m.reg.Counter("series_appended_total",
		"Observation points appended to the series engine.")
	seals := m.reg.Counter("series_seals_total",
		"Chunks sealed (filled or checkpointed).")
	sealedBytes := m.reg.Counter("series_sealed_bytes_total",
		"Encoded bytes of sealed chunks.")
	queryDur := m.reg.HistogramVec("series_query_duration_seconds",
		"Series query latency, by query kind.", nil, "kind")
	scanned := m.reg.Counter("series_chunks_scanned_total",
		"Chunks decoded by series queries.")
	skipped := m.reg.Counter("series_chunks_skipped_total",
		"Chunks pruned by the sparse min/max index.")
	retChunks := m.reg.Counter("series_retention_chunks_total",
		"Raw chunks dropped by retention.")
	retPoints := m.reg.Counter("series_retention_points_total",
		"Raw points dropped by retention (rollups keep their history).")
	rebuilds := m.reg.Counter("series_rollup_rebuilds_total",
		"Rollup rebuilds from chunks (recovery mismatch or corruption).")
	ckptDur := m.reg.Histogram("series_checkpoint_duration_seconds",
		"Series checkpoint latency.", nil)
	ckptChunks := m.reg.Counter("series_checkpoint_chunks_total",
		"Chunks persisted by checkpoints.")
	points := m.reg.Gauge("series_points",
		"Points held across raw chunks.")
	chunks := m.reg.Gauge("series_sealed_chunks",
		"Sealed immutable chunks.")
	chunkBytes := m.reg.Gauge("series_sealed_chunk_bytes",
		"Encoded bytes across sealed chunks.")
	zones := m.reg.Gauge("series_zones",
		"Zones with at least one rollup bucket.")
	buckets := m.reg.Gauge("series_rollup_buckets",
		"Live (zone, time-bucket) rollup aggregates.")
	watermark := m.reg.Gauge("series_watermark_lsn",
		"Highest commit-log LSN folded into the series engine.")
	db.SetHooks(&series.Hooks{
		Append: func(n int) { appended.Add(uint64(n)) },
		Seal: func(p, b int) {
			seals.Inc()
			sealedBytes.Add(uint64(b))
		},
		Query: func(kind string, d time.Duration, sc, sk int) {
			queryDur.With(kind).ObserveDuration(d)
			scanned.Add(uint64(sc))
			skipped.Add(uint64(sk))
		},
		Retention: func(c, p int) {
			retChunks.Add(uint64(c))
			retPoints.Add(uint64(p))
		},
		Rebuild: rebuilds.Inc,
		Checkpoint: func(d time.Duration, saved int) {
			ckptDur.ObserveDuration(d)
			ckptChunks.Add(uint64(saved))
		},
	})
	m.reg.OnCollect(func() {
		st := db.Stats()
		points.Set(float64(st.Points))
		chunks.Set(float64(st.SealedChunks))
		chunkBytes.Set(float64(st.SealedBytes))
		zones.Set(float64(st.Zones))
		buckets.Set(float64(st.RollupBuckets))
		watermark.Set(float64(st.Watermark))
	})
}

// InstrumentPredict registers the predict_* families and feeds them
// from the forecaster's hooks. Created here, not unconditionally, so
// servers running without -predict don't expose dead zero-valued
// series.
func (m *Metrics) InstrumentPredict(f *predict.Forecaster) {
	if f == nil {
		return
	}
	sweeps := m.reg.Counter("predict_sweeps_total",
		"Whole-city forecast sweeps.")
	forecastZones := m.reg.Gauge("predict_forecast_zones",
		"Zones with a forecast in the latest sweep.")
	coldZones := m.reg.Gauge("predict_cold_zones",
		"Zones skipped in the latest sweep for insufficient history.")
	sweepDur := m.reg.Histogram("predict_sweep_duration_seconds",
		"Whole-city forecast sweep latency.", nil)
	zoneReqs := m.reg.CounterVec("predict_zone_forecasts_total",
		"Single-zone forecast requests, by outcome.", "outcome")
	zoneDur := m.reg.Histogram("predict_zone_forecast_duration_seconds",
		"Single-zone forecast latency.", nil)
	reroutes := m.reg.CounterVec("predict_reroutes_total",
		"Quiet-route requests, by outcome.", "outcome")
	rerouteDur := m.reg.Histogram("predict_reroute_duration_seconds",
		"Quiet-route scoring latency (sweep plus path search).", nil)
	f.SetHooks(&predict.Hooks{
		Sweep: func(zones, cold int, d time.Duration) {
			sweeps.Inc()
			forecastZones.Set(float64(zones))
			coldZones.Set(float64(cold))
			sweepDur.ObserveDuration(d)
		},
		Zone: func(ok bool, d time.Duration) {
			if ok {
				zoneReqs.With("forecast").Inc()
			} else {
				zoneReqs.With("cold").Inc()
			}
			zoneDur.ObserveDuration(d)
		},
		Reroute: func(rerouted bool, d time.Duration) {
			if rerouted {
				reroutes.With("rerouted").Inc()
			} else {
				reroutes.With("kept").Inc()
			}
			rerouteDur.ObserveDuration(d)
		},
	})
}

// InstrumentLive registers the live_* families and feeds them from
// the broker's live fan-out hooks and the hub. Like InstrumentWAL,
// the families are created here so servers running without live
// subscriptions don't expose dead zero-valued series.
func (m *Metrics) InstrumentLive(s *Server) {
	connected := m.reg.Gauge("live_connected_sockets",
		"Live push subscriptions currently attached.")
	delivered := m.reg.Counter("live_delivered_total",
		"Events enqueued onto live socket mailboxes.")
	dropped := m.reg.Counter("live_dropped_total",
		"Events dropped because a live mailbox was full.")
	shed := m.reg.Counter("live_shed_total",
		"Live subscriptions disconnected for exhausting their send budget.")
	fanout := m.reg.Histogram("live_fanout_duration_seconds",
		"Per-publish live fan-out latency (trie match plus mailbox sends).",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1})
	catchups := m.reg.Counter("live_cursor_catchup_total",
		"Cursor catch-up reads served by GET /v1/observations.")
	s.broker.SetLiveHooks(mq.LiveHooks{
		Fanout:    func(subs int, d time.Duration) { fanout.ObserveDuration(d) },
		Delivered: delivered.Inc,
		Dropped:   dropped.Inc,
		Shed:      shed.Inc,
	})
	m.reg.OnCollect(func() {
		if s.Live != nil {
			connected.Set(float64(s.Live.Sockets()))
			// The counter family is monotonic; the hub's total only
			// moves forward, so Set-via-delta is safe here.
			cur := s.Live.CatchupReads()
			if prev := catchups.Value(); cur > prev {
				catchups.Add(cur - prev)
			}
		}
	})
}

// InstrumentStore installs hooks on the document store.
func (m *Metrics) InstrumentStore(s *docstore.Store) {
	s.SetHooks(docstore.Hooks{
		Insert: func(col string, d time.Duration) {
			m.opDuration.With(col, "insert").ObserveDuration(d)
		},
		Query: func(col string, d time.Duration, indexUsed bool) {
			m.opDuration.With(col, "query").ObserveDuration(d)
			outcome := "miss"
			if indexUsed {
				outcome = "hit"
			}
			m.queries.With(col, outcome).Inc()
		},
		Update: func(col string, d time.Duration) {
			m.opDuration.With(col, "update").ObserveDuration(d)
		},
		Delete: func(col string, d time.Duration) {
			m.opDuration.With(col, "delete").ObserveDuration(d)
		},
	})
}

// InstrumentServer installs the ingest-pipeline counters.
func (m *Metrics) InstrumentServer(s *Server) {
	s.SetIngestHooks(
		func(appID string) { m.ingested.With(appID).Inc() },
		func() { m.rejected.Inc() },
	)
}

// Instrument wires every layer of a server — broker, store via the
// server's data manager, and ingest pipeline — into reg and returns
// the adapter.
func Instrument(reg *obs.Registry, s *Server, store *docstore.Store) *Metrics {
	m := NewMetrics(reg)
	m.InstrumentBroker(s.broker)
	m.InstrumentStore(store)
	m.InstrumentServer(s)
	m.InstrumentAdmission(s.Guard)
	m.InstrumentLive(s)
	m.InstrumentPredict(s.Predict)
	return m
}
