package goflow

import (
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/geo"
	"github.com/urbancivics/goflow/internal/sensing"
)

func newDataManager(t *testing.T) (*DataManager, *Accounts) {
	t.Helper()
	accounts := newAccounts(t)
	dm := NewDataManager(docstore.NewStore(), accounts, geo.ParisZones())
	return dm, accounts
}

func obsAt(t *testing.T, model string, spl float64, localized bool, at time.Time) *sensing.Observation {
	t.Helper()
	o := &sensing.Observation{
		UserID:             "u1",
		DeviceModel:        model,
		AppVersion:         "1.3",
		Mode:               sensing.Opportunistic,
		SPL:                spl,
		Activity:           sensing.ActivityStill,
		ActivityConfidence: 0.9,
		SensedAt:           at,
	}
	if localized {
		o.Loc = &sensing.Location{
			Point:     geo.Point{Lat: 48.8566, Lon: 2.3522},
			AccuracyM: 30,
			Provider:  sensing.ProviderNetwork,
		}
	}
	return o
}

func TestIngestStoresAnonymizedDoc(t *testing.T) {
	dm, accounts := newDataManager(t)
	at := time.Date(2016, 2, 1, 10, 0, 0, 0, time.UTC)
	id, err := dm.Ingest("SC", "client-1", obsAt(t, "LGE NEXUS 5", 61, true, at), at)
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("ingest must return a doc id")
	}
	docs, err := dm.Retrieve(Query{AppID: "SC"})
	if err != nil || len(docs) != 1 {
		t.Fatalf("retrieve: %d docs, %v", len(docs), err)
	}
	d := docs[0]
	if d["userId"] != accounts.Anonymize("client-1") {
		t.Fatal("stored user id must be the anonymized id")
	}
	if d["zone"] == nil || d["provider"] != "network" || d["localized"] != true {
		t.Fatalf("stored doc incomplete: %v", d)
	}
}

func TestIngestRejectsInvalid(t *testing.T) {
	dm, _ := newDataManager(t)
	bad := obsAt(t, "M", 61, false, time.Now())
	bad.SPL = 999
	if _, err := dm.Ingest("SC", "c", bad, time.Now()); err == nil {
		t.Fatal("invalid observation must be rejected")
	}
	if _, err := dm.Ingest("SC", "c", nil, time.Now()); err == nil {
		t.Fatal("nil observation must be rejected")
	}
}

func TestRetrieveFilters(t *testing.T) {
	dm, _ := newDataManager(t)
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	seed := []*sensing.Observation{
		obsAt(t, "A", 30, true, base),
		obsAt(t, "A", 60, false, base.Add(time.Hour)),
		obsAt(t, "B", 45, true, base.Add(2*time.Hour)),
	}
	for _, o := range seed {
		if _, err := dm.Ingest("SC", "c1", o, o.SensedAt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dm.Ingest("OTHER", "c2", obsAt(t, "A", 80, true, base), base); err != nil {
		t.Fatal(err)
	}

	loc := true
	from := base.Add(30 * time.Minute)
	minSPL := 40.0
	tests := []struct {
		name string
		q    Query
		want int
	}{
		{"by app", Query{AppID: "SC"}, 3},
		{"by model", Query{AppID: "SC", DeviceModel: "A"}, 2},
		{"by localized", Query{AppID: "SC", Localized: &loc}, 2},
		{"by provider", Query{AppID: "SC", Provider: "network"}, 2},
		{"by time", Query{AppID: "SC", From: &from}, 2},
		{"by spl", Query{AppID: "SC", MinSPL: &minSPL}, 2},
		{"combined", Query{AppID: "SC", DeviceModel: "A", Localized: &loc}, 1},
		{"limit", Query{AppID: "SC", Limit: 2}, 2},
		{"skip", Query{AppID: "SC", Skip: 2}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			docs, err := dm.Retrieve(tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if len(docs) != tt.want {
				t.Fatalf("got %d docs, want %d", len(docs), tt.want)
			}
		})
	}
	n, err := dm.Count(Query{AppID: "SC"})
	if err != nil || n != 3 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestRetrieveSortedBySensedAt(t *testing.T) {
	dm, _ := newDataManager(t)
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	// Insert out of order.
	for _, offset := range []time.Duration{2 * time.Hour, 0, time.Hour} {
		o := obsAt(t, "A", 50, false, base.Add(offset))
		if _, err := dm.Ingest("SC", "c", o, o.SensedAt); err != nil {
			t.Fatal(err)
		}
	}
	docs, err := dm.Retrieve(Query{AppID: "SC"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(docs); i++ {
		prev, ok1 := docs[i-1]["sensedAt"].(time.Time)
		cur, ok2 := docs[i]["sensedAt"].(time.Time)
		if !ok1 || !ok2 || cur.Before(prev) {
			t.Fatal("results must be sorted by sensing time")
		}
	}
}

func TestRetrieveSharedAppliesPolicy(t *testing.T) {
	dm, accounts := newDataManager(t)
	if _, err := accounts.RegisterApp("SC", "SoundCity", DataPolicy{
		SharedFields: []string{"spl", "zone", "userId"}, // userId must be ignored
	}); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2016, 2, 1, 10, 0, 0, 0, time.UTC)
	if _, err := dm.Ingest("SC", "c1", obsAt(t, "A", 61, true, at), at); err != nil {
		t.Fatal(err)
	}
	// The owner sees everything.
	own, err := dm.RetrieveShared("SC", "SC", Query{})
	if err != nil || len(own) != 1 {
		t.Fatalf("owner retrieve: %d, %v", len(own), err)
	}
	if own[0]["deviceModel"] != "A" {
		t.Fatal("owner must see full documents")
	}
	// A foreign app sees only the shared fields, never the user.
	foreign, err := dm.RetrieveShared("SC", "OTHER", Query{})
	if err != nil || len(foreign) != 1 {
		t.Fatalf("foreign retrieve: %d, %v", len(foreign), err)
	}
	d := foreign[0]
	if d["spl"] != 61.0 || d["zone"] == nil {
		t.Fatalf("shared fields missing: %v", d)
	}
	if _, has := d["deviceModel"]; has {
		t.Fatal("unshared field leaked")
	}
	if _, has := d["userId"]; has {
		t.Fatal("user id must never be shared")
	}
}

func TestDeleteUserData(t *testing.T) {
	dm, accounts := newDataManager(t)
	at := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := dm.Ingest("SC", "c1", obsAt(t, "A", 50, false, at), at); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dm.Ingest("SC", "c2", obsAt(t, "A", 50, false, at), at); err != nil {
		t.Fatal(err)
	}
	n, err := dm.DeleteUserData(accounts.Anonymize("c1"))
	if err != nil || n != 3 {
		t.Fatalf("DeleteUserData = %d, %v, want 3", n, err)
	}
	total, err := dm.Count(Query{AppID: "SC"})
	if err != nil || total != 1 {
		t.Fatalf("remaining = %d, %v", total, err)
	}
}
