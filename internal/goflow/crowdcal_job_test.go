package goflow

import (
	"math"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
)

// seedCrossModelObservations ingests observations from several models
// with known relative biases, co-located by hour (the default
// crowd-calibration cell).
func seedCrossModelObservations(t *testing.T, dm *DataManager) map[string]float64 {
	t.Helper()
	biases := map[string]float64{"MODEL-A": -4, "MODEL-B": 0, "MODEL-C": 4}
	base := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	for model, bias := range biases {
		for cell := 0; cell < 12; cell++ {
			ambient := 40.0 + float64(cell)
			for k := 0; k < 15; k++ {
				o := obsAt(t, model, ambient+bias, false, base.Add(time.Duration(cell)*time.Hour))
				if _, err := dm.Ingest("SC", "c-"+model, o, o.SensedAt); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return biases
}

func TestCrowdCalibrateJob(t *testing.T) {
	j, dm := newJobs(t, 1)
	biases := seedCrossModelObservations(t, dm)

	id, err := j.Submit("SC", "crowd-calibrate")
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	job, err := j.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobDone {
		t.Fatalf("job state = %v (error %q)", job.State, job.Error)
	}
	summary, ok := job.Result.(map[string]int)
	if !ok || summary["models"] != 3 {
		t.Fatalf("job result = %v", job.Result)
	}

	// The calibration collection holds crowd entries whose relative
	// spacing matches the seeded biases (zero-median gauge).
	got := make(map[string]float64, 3)
	for model := range biases {
		docs, err := dm.Engine().FindContext(t.Context(), CalibrationCollection,
			docstore.Doc{"appId": "SC", "model": model, "source": "crowd"}, docstore.FindOptions{Limit: 1})
		if err != nil || len(docs) == 0 {
			t.Fatalf("calibration doc for %s: %v", model, err)
		}
		doc := docs[0]
		bias, ok := doc["biasDb"].(float64)
		if !ok {
			t.Fatalf("biasDb missing: %v", doc)
		}
		got[model] = bias
	}
	if d := got["MODEL-C"] - got["MODEL-A"]; math.Abs(d-8) > 0.5 {
		t.Fatalf("C-A bias gap = %.2f, want ~8", d)
	}
	if math.Abs(got["MODEL-B"]) > 0.5 {
		t.Fatalf("median model bias = %.2f, want ~0 (gauge)", got["MODEL-B"])
	}

	// Re-running updates in place instead of duplicating.
	id2, err := j.Submit("SC", "crowd-calibrate")
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	job2, err := j.Status(id2)
	if err != nil || job2.State != JobDone {
		t.Fatalf("rerun state = %v, %v", job2.State, err)
	}
	n, err := dm.Engine().CountContext(t.Context(), CalibrationCollection, docstore.Doc{"appId": "SC", "source": "crowd"})
	if err != nil || n != 3 {
		t.Fatalf("calibration docs after rerun = %d, want 3", n)
	}
}

func TestCrowdCalibrateJobInsufficientData(t *testing.T) {
	j, dm := newJobs(t, 1)
	// One model only: no cross-model overlap.
	at := time.Now()
	for i := 0; i < 30; i++ {
		if _, err := dm.Ingest("SC", "c", obsAt(t, "LONELY", 50, false, at), at); err != nil {
			t.Fatal(err)
		}
	}
	id, err := j.Submit("SC", "crowd-calibrate")
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	job, err := j.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobFailed {
		t.Fatalf("job state = %v, want failed (insufficient overlap)", job.State)
	}
}
