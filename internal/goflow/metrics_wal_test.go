package goflow

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/obs"
	"github.com/urbancivics/goflow/internal/wal"
)

// TestMetricsWALExposition attaches a WAL to an instrumented server,
// pushes mutations and a checkpoint through it, and checks that the
// wal_* families show up in the /metrics exposition with live values.
func TestMetricsWALExposition(t *testing.T) {
	broker := mq.NewBroker()
	store := docstore.NewStore()
	w, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.FsyncGrouped})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := docstore.RecoverWAL(store, w); err != nil {
		t.Fatal(err)
	}
	docstore.AttachWAL(store, w)
	server, err := NewServer(ServerConfig{Broker: broker, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
		w.Close()
	})
	reg := obs.NewRegistry()
	m := Instrument(reg, server, store)
	m.InstrumentWAL(w)
	handler := NewInstrumentedHTTPHandler(server, reg)

	obsCol := store.Collection("observations")
	var ids []string
	for i := 0; i < 20; i++ {
		id, err := obsCol.Insert(docstore.Doc{"db": i})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := obsCol.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	// A checkpoint exercises the rotation and truncation families.
	cut, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	body := rr.Body.String()
	// Counts are not pinned exactly: the server itself journals its
	// collection setup (ensure-index records), so the test asserts the
	// families exist and the checkpoint-driven ones have their known
	// values.
	for _, want := range []string{
		"wal_records_total 2",
		"wal_fsyncs_total",
		"wal_fsync_duration_seconds_count",
		"wal_commit_batch_records_sum",
		"wal_rotations_total 1",
		"wal_truncated_segments_total 1",
		"wal_segments 1",
		"wal_last_lsn 2",
		"wal_durable_lsn 2",
		"wal_replayed_records 0",
		"wal_bytes_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "wal_") {
				t.Logf("%s", line)
			}
		}
	}
}
