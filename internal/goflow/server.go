package goflow

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/geo"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/predict"
	"github.com/urbancivics/goflow/internal/sensing"
	"github.com/urbancivics/goflow/internal/simclock"
	"github.com/urbancivics/goflow/internal/storage"
)

// Server is the GoFlow crowd-sensing server: it wires the account
// manager, channel management over the broker, the data manager over
// the document store, analytics and background jobs, and runs the
// ingest loop that drains the GoFlow queue.
type Server struct {
	Accounts  *Accounts
	Channels  *Channels
	Data      *DataManager
	Analytics *Analytics
	Jobs      *Jobs
	// Guard is the REST admission chain; every API route except the
	// health probe passes through it.
	Guard *Admission
	// Live owns push subscriptions (WebSocket/SSE fan-out off the
	// broker trie); closed first at drain time.
	Live *LiveHub
	// LiveCache is the latest-per-zone view behind GET /v1/live/latest.
	// It is fed by the series point observer when a series DB is
	// attached (see cmd/goflow-server); without one it stays empty.
	LiveCache *LatestCache
	// Predict serves per-zone exposure forecasts (nil unless the
	// server was built with ServerConfig.Predict over an engine whose
	// series view supports bucket reads).
	Predict *predict.Forecaster
	// Reroute proposes quiet-path alternatives over the forecasts
	// (nil exactly when Predict is).
	Reroute *predict.Rerouter

	broker *mq.Broker
	clock  simclock.Clock

	mu       sync.Mutex
	consumer *mq.Consumer
	done     chan struct{}

	// Ingest instrumentation hooks; nil funcs are skipped. Set before
	// StartIngest — see SetIngestHooks.
	onIngest func(appID string)
	onReject func()
}

// SetIngestHooks installs observers for the ingest pipeline: onIngest
// fires after each stored observation, onReject after each rejected
// delivery. Call before StartIngest; either func may be nil.
func (s *Server) SetIngestHooks(onIngest func(appID string), onReject func()) {
	s.onIngest = onIngest
	s.onReject = onReject
}

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	// Broker is the messaging substrate (required).
	Broker *mq.Broker
	// Store is the document store. Exactly one of Store and Data must
	// be set.
	Store *docstore.Store
	// Data is a storage engine (a WAL-backed Local, a cluster Router,
	// a replicated leader) to use instead of Store. When set, the
	// server runs against it unchanged — sharding and replication are
	// invisible above the Engine seam.
	Data storage.Engine
	// Zones derives observation zone ids; nil defaults to the Paris
	// grid.
	Zones *geo.ZoneGrid
	// Clock stamps ReceivedAt; nil defaults to the system clock.
	Clock simclock.Clock
	// MaxConcurrentJobs bounds background-job parallelism.
	MaxConcurrentJobs int
	// Admission parameterizes the REST overload guards; the zero
	// value enables every guard with defaults.
	Admission AdmissionConfig
	// Live parameterizes push subscriptions; the zero value enables
	// them with defaults.
	Live LiveConfig
	// Predict, when non-nil, enables the forecasting subsystem with
	// this model configuration (zero-value Config = defaults). It
	// requires an engine exposing bucket-granular rollups
	// (storage.RollupReader) — i.e. a series view attached; otherwise
	// NewServer fails rather than silently serving no forecasts.
	Predict *predict.Config
	// RerouteCfg parameterizes the quiet-path rerouter (zero value =
	// defaults); only read when Predict is set.
	RerouteCfg predict.RerouteConfig
}

// NewServer builds a server and provisions the GoFlow broker
// topology. Call StartIngest to begin draining the queue and Shutdown
// to stop.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Broker == nil {
		return nil, errors.New("goflow: server needs a broker")
	}
	if cfg.Store == nil && cfg.Data == nil {
		return nil, errors.New("goflow: server needs a store or a storage engine")
	}
	if cfg.Store != nil && cfg.Data != nil {
		return nil, errors.New("goflow: set either Store or Data, not both")
	}
	if cfg.Zones == nil {
		cfg.Zones = geo.ParisZones()
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real()
	}
	if cfg.MaxConcurrentJobs <= 0 {
		cfg.MaxConcurrentJobs = 2
	}
	accounts, err := NewAccounts()
	if err != nil {
		return nil, err
	}
	channels, err := NewChannels(cfg.Broker)
	if err != nil {
		return nil, err
	}
	data := cfg.Data
	if data == nil {
		data = storage.NewLocal(cfg.Store)
	}
	dm := NewDataManagerEngine(data, accounts, cfg.Zones)
	s := &Server{
		Accounts:  accounts,
		Channels:  channels,
		Data:      dm,
		Analytics: NewAnalytics(),
		Jobs:      NewJobs(dm, cfg.MaxConcurrentJobs),
		Guard:     NewAdmission(cfg.Admission),
		Live:      NewLiveHub(cfg.Broker, cfg.Live),
		LiveCache: NewLatestCache(),
		broker:    cfg.Broker,
		clock:     cfg.Clock,
	}
	if cfg.Predict != nil {
		src, ok := data.(predict.Source)
		if !ok {
			return nil, errors.New("goflow: forecasting needs a storage engine with a series view (bucket rollup reads)")
		}
		s.Predict = predict.New(src, *cfg.Predict, cfg.Clock)
		s.Reroute = predict.NewRerouter(cfg.Zones, s.Predict, cfg.RerouteCfg)
	}
	return s, nil
}

// RegisterApp registers an application and provisions its exchange.
func (s *Server) RegisterApp(id, name string, policy DataPolicy) (*App, error) {
	app, err := s.Accounts.RegisterApp(id, name, policy)
	if err != nil {
		return nil, err
	}
	if err := s.Channels.ProvisionApp(id); err != nil {
		return nil, err
	}
	return app, nil
}

// Login registers a client of an app and provisions its private
// exchange and queue (Figure 3); the returned Client carries the
// endpoint names.
func (s *Server) Login(appID string) (*Client, error) {
	c, err := s.Accounts.RegisterClient(appID, RoleClient)
	if err != nil {
		return nil, err
	}
	ex, q, err := s.Channels.ProvisionClient(appID, c.ID)
	if err != nil {
		return nil, err
	}
	if err := s.Accounts.setClientChannels(c.ID, ex, q); err != nil {
		return nil, err
	}
	c.Exchange = ex
	c.Queue = q
	return c, nil
}

// Logout deprovisions a client's endpoints.
func (s *Server) Logout(clientID string) error {
	return s.Channels.DeprovisionClient(clientID)
}

// StartIngest launches the consumer loop on the GoFlow queue. It is
// idempotent.
func (s *Server) StartIngest() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.consumer != nil {
		return nil
	}
	consumer, err := s.broker.Consume(GoFlowQueue, 256)
	if err != nil {
		return fmt.Errorf("ingest consumer: %w", err)
	}
	s.consumer = consumer
	s.done = make(chan struct{})
	go s.ingestLoop(consumer, s.done)
	return nil
}

// ingestLoop drains deliveries until the consumer channel closes.
func (s *Server) ingestLoop(consumer *mq.Consumer, done chan struct{}) {
	defer close(done)
	for d := range consumer.C() {
		if err := s.ingestDelivery(d.Message); err != nil {
			s.Analytics.RecordRejection()
			if s.onReject != nil {
				s.onReject()
			}
			log.Printf("goflow ingest: %v", err)
			if nackErr := consumer.Nack(d.Tag, false); nackErr != nil {
				log.Printf("goflow ingest nack: %v", nackErr)
			}
			continue
		}
		if err := consumer.Ack(d.Tag); err != nil {
			log.Printf("goflow ingest ack: %v", err)
		}
	}
}

// ingestDelivery decodes and stores one broker message. The routing
// key carries "<app>.<client>.<datatype>.<zone>".
func (s *Server) ingestDelivery(m mq.Message) error {
	parts := strings.Split(m.RoutingKey, ".")
	if len(parts) < 3 {
		return fmt.Errorf("malformed routing key %q", m.RoutingKey)
	}
	appID, clientID, datatype := parts[0], parts[1], parts[2]
	if datatype != "obs" {
		// Feedback / journey notifications are fan-out only; the
		// server stores observations.
		return nil
	}
	obs, err := sensing.DecodeObservation(m.Body)
	if err != nil {
		return err
	}
	receivedAt := s.clock.Now()
	if !m.PublishedAt.IsZero() {
		receivedAt = m.PublishedAt
	}
	if _, err := s.Data.Ingest(appID, clientID, obs, receivedAt); err != nil {
		return err
	}
	s.Analytics.RecordIngest(appID, s.Accounts.Anonymize(clientID), obs.DeviceModel, obs.Localized(), receivedAt)
	if s.onIngest != nil {
		s.onIngest(appID)
	}
	return nil
}

// BulkIngest stores observations directly through the ingest pipeline
// (validation, anonymization, analytics) without broker transport —
// the fast path used by the large-scale simulations. The whole run is
// stored through one batch insert and one analytics update; on error
// the valid prefix is stored and counted, exactly as the previous
// per-observation loop behaved.
func (s *Server) BulkIngest(appID, clientID string, observations []*sensing.Observation) (int, error) {
	if len(observations) == 0 {
		return 0, nil
	}
	receivedAt := make([]time.Time, len(observations))
	for i, o := range observations {
		if o == nil {
			continue // IngestBatch reports the error at this index
		}
		receivedAt[i] = o.ReceivedAt
		if receivedAt[i].IsZero() {
			receivedAt[i] = o.SensedAt
		}
	}
	ids, err := s.Data.IngestBatch(appID, clientID, observations, receivedAt)
	stored := len(ids)
	s.Analytics.RecordIngestBatch(appID, s.Accounts.Anonymize(clientID), observations[:stored], receivedAt[:stored])
	if s.onIngest != nil {
		for i := 0; i < stored; i++ {
			s.onIngest(appID)
		}
	}
	if err != nil {
		return stored, fmt.Errorf("bulk ingest #%d: %w", stored, err)
	}
	return stored, nil
}

// WaitIdle blocks until the GoFlow queue is fully drained and acked
// (test/simulation synchronization helper).
func (s *Server) WaitIdle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.broker.QueueStats(GoFlowQueue)
		if err != nil {
			return err
		}
		if st.Ready == 0 && st.Unacked == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goflow: queue not drained (ready=%d unacked=%d)", st.Ready, st.Unacked)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Shutdown stops the ingest loop and background jobs, waiting as long
// as it takes. Use ShutdownContext to bound the drain.
func (s *Server) Shutdown() {
	_ = s.ShutdownContext(context.Background())
}

// ShutdownContext drains the server gracefully: the admission layer
// flips to draining (new API requests get 503 + Retry-After while the
// health probe stays green), the ingest consumer is cancelled and its
// loop waited for, and background jobs are stopped. A ctx that ends
// before the ingest loop drains returns ctx.Err() with the consumer
// already cancelled — the loop finishes in the background, and
// unacked deliveries are requeued by the broker either way.
func (s *Server) ShutdownContext(ctx context.Context) error {
	s.Guard.SetDraining(true)
	// End live streams first: each client gets a going-away close and
	// reconnects elsewhere, catching up over the cursor API — idle
	// dashboards must not hold the drain open.
	if s.Live != nil {
		s.Live.Close()
	}
	s.mu.Lock()
	consumer := s.consumer
	done := s.done
	s.consumer = nil
	s.done = nil
	s.mu.Unlock()
	if consumer != nil {
		consumer.Cancel()
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.Jobs.Shutdown()
	return nil
}
