package goflow

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
)

// Data packaging (Figure 2's crowd-sensed data management: "various
// packaging solutions (file, json stream, ...)"). Exports stream
// pages from the store so arbitrarily large result sets never
// materialize in memory at once.

// ExportFormat selects the packaging.
type ExportFormat int

// Export formats.
const (
	// NDJSON streams one JSON document per line.
	NDJSON ExportFormat = iota + 1
	// CSV streams a header plus one row per document.
	CSV
)

// ParseExportFormat converts a wire string to a format.
func ParseExportFormat(s string) (ExportFormat, error) {
	switch s {
	case "ndjson", "":
		return NDJSON, nil
	case "csv":
		return CSV, nil
	default:
		return 0, fmt.Errorf("goflow: unknown export format %q", s)
	}
}

// exportPageSize bounds per-page memory during exports.
const exportPageSize = 2000

// Export streams the observations matching q (its Limit/Skip are
// overridden for paging) of ownerApp as visible to requestingApp, in
// the given format. It returns the number of documents written.
func (dm *DataManager) Export(w io.Writer, ownerApp, requestingApp string, q Query, format ExportFormat) (int, error) {
	switch format {
	case NDJSON:
		return dm.exportPaged(ownerApp, requestingApp, q, func(docs []docstore.Doc) error {
			enc := json.NewEncoder(w)
			for _, d := range docs {
				if err := enc.Encode(d); err != nil {
					return fmt.Errorf("encode document: %w", err)
				}
			}
			return nil
		})
	case CSV:
		return dm.exportCSV(w, ownerApp, requestingApp, q)
	default:
		return 0, errors.New("goflow: invalid export format")
	}
}

// exportPaged walks result pages through the policy-applying
// retrieval path.
func (dm *DataManager) exportPaged(ownerApp, requestingApp string, q Query, emit func([]docstore.Doc) error) (int, error) {
	written := 0
	skip := 0
	for {
		page := q
		page.Skip = skip
		page.Limit = exportPageSize
		docs, err := dm.RetrieveShared(ownerApp, requestingApp, page)
		if err != nil {
			return written, err
		}
		if len(docs) == 0 {
			return written, nil
		}
		if err := emit(docs); err != nil {
			return written, err
		}
		written += len(docs)
		skip += len(docs)
		if len(docs) < exportPageSize {
			return written, nil
		}
	}
}

// exportCSV streams CSV with a stable column set: the union of the
// first page's fields, sorted (documents are homogeneous per app in
// practice).
func (dm *DataManager) exportCSV(w io.Writer, ownerApp, requestingApp string, q Query) (int, error) {
	cw := csv.NewWriter(w)
	var columns []string
	written, err := dm.exportPaged(ownerApp, requestingApp, q, func(docs []docstore.Doc) error {
		if columns == nil {
			fieldSet := make(map[string]bool)
			for _, d := range docs {
				for k := range d {
					fieldSet[k] = true
				}
			}
			columns = make([]string, 0, len(fieldSet))
			for k := range fieldSet {
				columns = append(columns, k)
			}
			sort.Strings(columns)
			if err := cw.Write(columns); err != nil {
				return err
			}
		}
		row := make([]string, len(columns))
		for _, d := range docs {
			for i, col := range columns {
				row[i] = csvCell(d[col])
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return written, err
	}
	cw.Flush()
	return written, cw.Error()
}

// csvCell renders a document value for CSV.
func csvCell(v any) string {
	switch t := v.(type) {
	case nil:
		return ""
	case string:
		return t
	case bool:
		return strconv.FormatBool(t)
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case int:
		return strconv.Itoa(t)
	case time.Time:
		return t.Format(time.RFC3339Nano)
	default:
		raw, err := json.Marshal(t)
		if err != nil {
			return fmt.Sprintf("%v", t)
		}
		return string(raw)
	}
}
