package goflow

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/series"
	"github.com/urbancivics/goflow/internal/storage"
)

// Noise analytics: per-zone sound-level summaries over a time range,
// the query behind the SoundCity noisemap. When the storage engine
// carries a series engine (storage.SeriesQuerier), answers come from
// the continuous per-(zone, bucket) rollups in microseconds; otherwise
// the same numbers are computed by scanning observation documents, so
// both paths return identical statistics and callers cannot tell them
// apart except by the Source field and the latency.
//
// Noise is a property of a place, not of the app that measured it:
// these summaries aggregate across apps, unlike the filtered document
// retrieval API which scopes by owner and open-data policy. Only the
// sound level leaves this layer — no contributor, device or trajectory
// data — so the cross-app aggregation is privacy-preserving by
// construction.

// NoiseStats summarizes the sound level of one zone over a range.
type NoiseStats struct {
	Zone   string  `json:"zone"`
	Count  uint64  `json:"count"`
	LAeq   float64 `json:"laeq"` // energetic mean, the acoustics standard
	Mean   float64 `json:"mean"` // arithmetic mean dB
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"`
	P50    float64 `json:"p50"` // median, within the histogram bin width
	P95    float64 `json:"p95"`
	Source string  `json:"source"` // "rollup" or "scan"
}

// noiseStats derives the exported summary from an aggregate.
func noiseStats(zone string, a *series.Agg, source string) NoiseStats {
	if a.Count == 0 {
		return NoiseStats{Zone: zone, Source: source}
	}
	return NoiseStats{
		Zone:   zone,
		Count:  a.Count,
		LAeq:   a.LAeq(),
		Mean:   a.Mean(),
		Min:    a.Min,
		Max:    a.Max,
		Stddev: a.Stddev(),
		P50:    a.Percentile(50),
		P95:    a.Percentile(95),
		Source: source,
	}
}

// ZoneNoise summarizes one zone's sound level over [from, to).
func (dm *DataManager) ZoneNoise(ctx context.Context, zone string, from, to time.Time) (NoiseStats, error) {
	if sq, ok := dm.data.(storage.SeriesQuerier); ok {
		agg, has, err := sq.SeriesZoneAggregate(ctx, zone, from, to)
		if err != nil {
			return NoiseStats{}, fmt.Errorf("zone noise: %w", err)
		}
		if has {
			return noiseStats(zone, &agg, "rollup"), nil
		}
	}
	aggs, err := dm.scanNoise(ctx, zone, from, to)
	if err != nil {
		return NoiseStats{}, err
	}
	a := aggs[zone]
	if a == nil {
		a = &series.Agg{}
	}
	return noiseStats(zone, a, "scan"), nil
}

// Noisemap summarizes every zone's sound level over [from, to),
// sorted by zone id.
func (dm *DataManager) Noisemap(ctx context.Context, from, to time.Time) ([]NoiseStats, error) {
	var (
		byZone map[string]*series.Agg
		source = "scan"
	)
	if sq, ok := dm.data.(storage.SeriesQuerier); ok {
		m, has, err := sq.SeriesNoisemap(ctx, from, to)
		if err != nil {
			return nil, fmt.Errorf("noisemap: %w", err)
		}
		if has {
			byZone = make(map[string]*series.Agg, len(m))
			for z, a := range m {
				cp := a
				byZone[z] = &cp
			}
			source = "rollup"
		}
	}
	if byZone == nil {
		var err error
		byZone, err = dm.scanNoise(ctx, "", from, to)
		if err != nil {
			return nil, err
		}
	}
	out := make([]NoiseStats, 0, len(byZone))
	for z, a := range byZone {
		out = append(out, noiseStats(z, a, source))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Zone < out[j].Zone })
	return out, nil
}

// scanNoise is the fallback path: aggregate observation documents by
// zone with the exact arithmetic the series engine uses (same
// quantization, same histogram), so switching an engine to rollups
// never changes an answer, only its latency. zone == "" scans all
// zones. This is a full range scan — the cost the rollups exist to
// avoid.
func (dm *DataManager) scanNoise(ctx context.Context, zone string, from, to time.Time) (map[string]*series.Agg, error) {
	filter := docstore.Doc{
		"sensedAt": map[string]any{"$gte": from, "$lt": to},
	}
	if zone != "" {
		filter["zone"] = zone
	}
	docs, err := dm.data.FindContext(ctx, ObservationsCollection, filter, docstore.FindOptions{})
	if err != nil {
		return nil, fmt.Errorf("noise scan: %w", err)
	}
	byZone := map[string]*series.Agg{}
	for _, d := range docs {
		// Missing zone buckets under "", exactly like
		// series.PointFromObservation — the two paths must produce the
		// same zone set or switching an engine to rollups would change
		// the noisemap's rows, not just its latency.
		z, _ := d["zone"].(string)
		spl, ok := docFloat(d["spl"])
		if !ok {
			continue
		}
		a := byZone[z]
		if a == nil {
			a = &series.Agg{}
			byZone[z] = a
		}
		a.Add(series.Quantize(spl))
	}
	return byZone, nil
}
