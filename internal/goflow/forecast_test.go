package goflow

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/geo"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/obs"
	"github.com/urbancivics/goflow/internal/predict"
	"github.com/urbancivics/goflow/internal/series"
	"github.com/urbancivics/goflow/internal/simclock"
	"github.com/urbancivics/goflow/internal/storage"
)

var forecastTestAsOf = time.Date(2026, 5, 6, 9, 0, 0, 0, time.UTC)

// newForecastServer builds a predict-enabled server over a series
// engine, seeds one warm zone with six 5-minute buckets of history,
// and returns the instrumented handler plus the warm zone's id.
func newForecastServer(t *testing.T) (http.Handler, *obs.Registry, string) {
	t.Helper()
	broker := mq.NewBroker()
	store := docstore.NewStore()
	engine := storage.NewLocal(store)
	engine.AttachSeries(series.New(series.Options{}), ObservationsCollection)
	server, err := NewServer(ServerConfig{
		Broker:  broker,
		Data:    engine,
		Clock:   simclock.NewSim(forecastTestAsOf),
		Predict: &predict.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Login("SC")
	if err != nil {
		t.Fatal(err)
	}
	for b := 6; b >= 1; b-- {
		for j := 0; j < 3; j++ {
			o := obsAt(t, "LGE NEXUS 5", 70+float64(j), true,
				forecastTestAsOf.Add(-time.Duration(b)*5*time.Minute+time.Duration(j)*time.Second))
			if _, err := server.Data.Ingest("SC", cl.ID, o, o.SensedAt); err != nil {
				t.Fatal(err)
			}
		}
	}
	reg := obs.NewRegistry()
	Instrument(reg, server, store)
	handler := NewInstrumentedHTTPHandler(server, reg)
	warm := geo.ParisZones().ZoneID(geo.Point{Lat: 48.8566, Lon: 2.3522})
	return handler, reg, warm
}

func TestForecastEndpoints(t *testing.T) {
	handler, _, warm := newForecastServer(t)

	// Warm zone: a forecast with the model's full diagnostics.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/zones/"+warm+"/forecast", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("warm zone forecast = %d: %s", rec.Code, rec.Body.String())
	}
	var fc struct {
		Zone    string  `json:"zone"`
		ValueDB float64 `json:"valueDb"`
		Buckets int     `json:"buckets"`
		Basis   string  `json:"basis"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&fc); err != nil {
		t.Fatal(err)
	}
	if fc.Zone != warm || fc.Buckets < 4 || fc.Basis == "" {
		t.Fatalf("forecast body %+v", fc)
	}
	if fc.ValueDB < 60 || fc.ValueDB > 80 {
		t.Fatalf("forecast over a ~71 dB history predicted %.1f dB", fc.ValueDB)
	}

	// Cold zone: 404, distinguishable from "not enabled".
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/zones/FR75001/forecast", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("cold zone forecast = %d, want 404", rec.Code)
	}

	// City sweep: exactly the one warm zone, sorted envelope.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/noisemap/forecast", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("noisemap forecast = %d", rec.Code)
	}
	var sweep struct {
		Horizon string             `json:"horizon"`
		Count   int                `json:"count"`
		Zones   []predict.Forecast `json:"zones"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Count != 1 || len(sweep.Zones) != 1 || sweep.Zones[0].Zone != warm {
		t.Fatalf("sweep body %+v", sweep)
	}
	if sweep.Horizon != predict.DefaultHorizon.String() {
		t.Fatalf("horizon %q, want %q", sweep.Horizon, predict.DefaultHorizon)
	}
}

func TestForecastEndpointsDisabled(t *testing.T) {
	broker := mq.NewBroker()
	server, err := NewServer(ServerConfig{Broker: broker, Store: docstore.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	handler := NewHTTPHandler(server)
	for _, path := range []string{"/v1/zones/FR75001/forecast", "/v1/noisemap/forecast"} {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusNotImplemented {
			t.Fatalf("GET %s on a predict-less server = %d, want 501", path, rec.Code)
		}
	}
}

func TestPredictMetricsExposed(t *testing.T) {
	handler, _, warm := newForecastServer(t)
	for _, path := range []string{
		"/v1/zones/" + warm + "/forecast", // outcome=forecast
		"/v1/zones/FR75001/forecast",      // outcome=cold
		"/v1/noisemap/forecast",           // one sweep
	} {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	for _, want := range []string{
		`predict_sweeps_total 1`,
		`predict_forecast_zones 1`,
		`predict_zone_forecasts_total{outcome="forecast"} 1`,
		`predict_zone_forecasts_total{outcome="cold"} 1`,
		`predict_sweep_duration_seconds_count 1`,
		`predict_zone_forecast_duration_seconds_count 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
