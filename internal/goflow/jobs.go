package goflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/sensing"
)

// Background jobs (Figure 2): application managers submit scripts
// that run over the app's stored crowd-sensed data — recomputing
// statistics, exporting extracts, purging stale data. Jobs run
// asynchronously with tracked status.

// JobFunc is a background script: it receives the app's observation
// query surface and returns an arbitrary JSON-compatible result.
type JobFunc func(ctx context.Context, dm *DataManager, appID string) (any, error)

// JobState is a job's lifecycle phase.
type JobState int

// Job states.
const (
	JobPending JobState = iota + 1
	JobRunning
	JobDone
	JobFailed
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Job tracks one submission.
type Job struct {
	ID          string    `json:"id"`
	AppID       string    `json:"appId"`
	Name        string    `json:"name"`
	State       JobState  `json:"state"`
	SubmittedAt time.Time `json:"submittedAt"`
	FinishedAt  time.Time `json:"finishedAt,omitempty"`
	Result      any       `json:"result,omitempty"`
	Error       string    `json:"error,omitempty"`
}

// ErrJobNotFound is returned for unknown job ids.
var ErrJobNotFound = errors.New("goflow: job not found")

// Jobs runs background scripts with bounded concurrency.
type Jobs struct {
	dm *DataManager

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int

	sem  chan struct{}
	wg   sync.WaitGroup
	ctx  context.Context
	stop context.CancelFunc

	registry map[string]JobFunc
}

// NewJobs builds a job manager allowing maxConcurrent parallel jobs.
func NewJobs(dm *DataManager, maxConcurrent int) *Jobs {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Jobs{
		dm:       dm,
		jobs:     make(map[string]*Job),
		sem:      make(chan struct{}, maxConcurrent),
		ctx:      ctx,
		stop:     cancel,
		registry: builtinJobs(),
	}
}

// builtinJobs are the scripts available out of the box.
func builtinJobs() map[string]JobFunc {
	return map[string]JobFunc{
		// count-observations reports the app's total and localized
		// observation counts.
		"count-observations": func(_ context.Context, dm *DataManager, appID string) (any, error) {
			total, err := dm.Count(Query{AppID: appID})
			if err != nil {
				return nil, err
			}
			loc := true
			localized, err := dm.Count(Query{AppID: appID, Localized: &loc})
			if err != nil {
				return nil, err
			}
			return map[string]int{"total": total, "localized": localized}, nil
		},
		// purge-unlocalized deletes the app's unlocalized observations.
		"purge-unlocalized": func(_ context.Context, dm *DataManager, appID string) (any, error) {
			n, err := dm.data.DeleteMany(ObservationsCollection, docstore.Doc{
				"appId":     appID,
				"localized": false,
			})
			if err != nil {
				return nil, err
			}
			return map[string]int{"deleted": n}, nil
		},
		// crowd-calibrate runs the cross-model median polish over the
		// app's stored observations and upserts the per-model biases
		// into the calibration collection (source "crowd"). Relative
		// biases only — the zero-median gauge; party-calibrated
		// anchors can re-reference them offline.
		"crowd-calibrate": crowdCalibrateJob,
	}
}

// CalibrationCollection stores server-side per-model calibration
// results.
const CalibrationCollection = "calibration"

// crowdCalibrateJob reconstructs the app's observations page by page
// and feeds them to the crowd-calibration algorithm.
func crowdCalibrateJob(ctx context.Context, dm *DataManager, appID string) (any, error) {
	const page = 5000
	var obs []*sensing.Observation
	skip := 0
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		docs, err := dm.Retrieve(Query{AppID: appID, Skip: skip, Limit: page})
		if err != nil {
			return nil, err
		}
		for _, d := range docs {
			o, err := ObservationFromDoc(d)
			if err != nil {
				continue // tolerate legacy documents
			}
			obs = append(obs, o)
		}
		if len(docs) < page {
			break
		}
		skip += len(docs)
	}
	res, err := sensing.CrowdCalibrate(obs, sensing.CrowdCalOptions{})
	if err != nil {
		return nil, fmt.Errorf("crowd-calibrate %q: %w", appID, err)
	}
	dm.data.EnsureIndex(CalibrationCollection, "model")
	updated := 0
	for model, bias := range res.Biases {
		filter := docstore.Doc{"appId": appID, "model": model, "source": "crowd"}
		existing, err := dm.data.FindContext(ctx, CalibrationCollection, filter, docstore.FindOptions{Limit: 1})
		if err != nil {
			return nil, err
		}
		if len(existing) > 0 {
			id, _ := existing[0][docstore.IDField].(string)
			if err := dm.data.Update(CalibrationCollection, id, docstore.Doc{"biasDb": bias, "updatedAt": time.Now()}); err != nil {
				return nil, err
			}
		} else {
			if _, err := dm.data.Insert(CalibrationCollection, docstore.Doc{
				"appId":     appID,
				"model":     model,
				"biasDb":    bias,
				"source":    "crowd",
				"updatedAt": time.Now(),
			}); err != nil {
				return nil, err
			}
		}
		updated++
	}
	return map[string]int{
		"models":       updated,
		"observations": res.ObsUsed,
		"iterations":   res.Iterations,
	}, nil
}

// Register adds a named script to the registry (overwriting any
// previous definition).
func (j *Jobs) Register(name string, fn JobFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.registry[name] = fn
}

// Names lists registered script names, sorted.
func (j *Jobs) Names() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	names := make([]string, 0, len(j.registry))
	for n := range j.registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Submit enqueues a registered script for an app and returns the job
// id immediately.
func (j *Jobs) Submit(appID, name string) (string, error) {
	j.mu.Lock()
	fn, ok := j.registry[name]
	if !ok {
		j.mu.Unlock()
		return "", fmt.Errorf("goflow: unknown job %q", name)
	}
	j.nextID++
	id := "job-" + strconv.Itoa(j.nextID)
	job := &Job{
		ID:          id,
		AppID:       appID,
		Name:        name,
		State:       JobPending,
		SubmittedAt: time.Now(),
	}
	j.jobs[id] = job
	j.mu.Unlock()

	j.wg.Add(1)
	go j.run(job, fn)
	return id, nil
}

func (j *Jobs) run(job *Job, fn JobFunc) {
	defer j.wg.Done()
	select {
	case j.sem <- struct{}{}:
		defer func() { <-j.sem }()
	case <-j.ctx.Done():
		j.finish(job, nil, j.ctx.Err())
		return
	}
	j.mu.Lock()
	job.State = JobRunning
	j.mu.Unlock()
	result, err := fn(j.ctx, j.dm, job.AppID)
	j.finish(job, result, err)
}

func (j *Jobs) finish(job *Job, result any, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	job.FinishedAt = time.Now()
	if err != nil {
		job.State = JobFailed
		job.Error = err.Error()
		return
	}
	job.State = JobDone
	job.Result = result
}

// Status returns a copy of the job record.
func (j *Jobs) Status(id string) (Job, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	job, ok := j.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("job %q: %w", id, ErrJobNotFound)
	}
	return *job, nil
}

// Wait blocks until every submitted job has finished.
func (j *Jobs) Wait() { j.wg.Wait() }

// Shutdown cancels pending jobs and waits for running ones.
func (j *Jobs) Shutdown() {
	j.stop()
	j.wg.Wait()
}
