package goflow

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func seededDataManager(t *testing.T, n int) (*DataManager, *Accounts) {
	t.Helper()
	dm, accounts := newDataManager(t)
	if _, err := accounts.RegisterApp("SC", "SoundCity", DataPolicy{
		SharedFields: []string{"spl", "sensedAt", "localized"},
	}); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 2, 1, 10, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		o := obsAt(t, "LGE NEXUS 5", 40+float64(i%50), i%2 == 0, base.Add(time.Duration(i)*time.Minute))
		if _, err := dm.Ingest("SC", "c1", o, o.SensedAt); err != nil {
			t.Fatal(err)
		}
	}
	return dm, accounts
}

func TestExportNDJSON(t *testing.T) {
	dm, _ := seededDataManager(t, 25)
	var buf bytes.Buffer
	n, err := dm.Export(&buf, "SC", "SC", Query{}, NDJSON)
	if err != nil || n != 25 {
		t.Fatalf("Export = %d, %v", n, err)
	}
	scanner := bufio.NewScanner(&buf)
	lines := 0
	for scanner.Scan() {
		var doc map[string]any
		if err := json.Unmarshal(scanner.Bytes(), &doc); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if doc["spl"] == nil {
			t.Fatalf("line %d missing spl: %v", lines, doc)
		}
		lines++
	}
	if lines != 25 {
		t.Fatalf("exported %d lines, want 25", lines)
	}
}

func TestExportCSV(t *testing.T) {
	dm, _ := seededDataManager(t, 10)
	var buf bytes.Buffer
	n, err := dm.Export(&buf, "SC", "SC", Query{}, CSV)
	if err != nil || n != 10 {
		t.Fatalf("Export = %d, %v", n, err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 11 { // header + rows
		t.Fatalf("csv rows = %d, want 11", len(records))
	}
	header := records[0]
	colIdx := -1
	for i, c := range header {
		if c == "spl" {
			colIdx = i
		}
		if i > 0 && header[i-1] > c {
			t.Fatal("header columns must be sorted")
		}
	}
	if colIdx < 0 {
		t.Fatalf("header misses spl: %v", header)
	}
	if records[1][colIdx] == "" {
		t.Fatal("spl cell empty")
	}
}

func TestExportPagination(t *testing.T) {
	// More documents than one export page: paging must cover all.
	dm, _ := seededDataManager(t, exportPageSize+50)
	var buf bytes.Buffer
	n, err := dm.Export(&buf, "SC", "SC", Query{}, NDJSON)
	if err != nil || n != exportPageSize+50 {
		t.Fatalf("Export = %d, %v, want %d", n, err, exportPageSize+50)
	}
}

func TestExportAppliesPolicyForForeignApps(t *testing.T) {
	dm, _ := seededDataManager(t, 5)
	var buf bytes.Buffer
	if _, err := dm.Export(&buf, "SC", "OTHER", Query{}, NDJSON); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(&buf)
	for scanner.Scan() {
		var doc map[string]any
		if err := json.Unmarshal(scanner.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		if _, has := doc["deviceModel"]; has {
			t.Fatal("foreign export leaked an unshared field")
		}
		if _, has := doc["userId"]; has {
			t.Fatal("foreign export leaked the user id")
		}
		if _, has := doc["spl"]; !has {
			t.Fatal("foreign export misses shared field")
		}
	}
}

func TestExportFilterApplies(t *testing.T) {
	dm, _ := seededDataManager(t, 20)
	loc := true
	var buf bytes.Buffer
	n, err := dm.Export(&buf, "SC", "SC", Query{Localized: &loc}, NDJSON)
	if err != nil || n != 10 {
		t.Fatalf("filtered export = %d, %v, want 10", n, err)
	}
}

func TestParseExportFormat(t *testing.T) {
	if f, err := ParseExportFormat(""); err != nil || f != NDJSON {
		t.Fatal("empty format must default to ndjson")
	}
	if f, err := ParseExportFormat("csv"); err != nil || f != CSV {
		t.Fatal("csv format")
	}
	if _, err := ParseExportFormat("xml"); err == nil {
		t.Fatal("unknown format must fail")
	}
}

func TestRESTExportEndpoint(t *testing.T) {
	server, ts := newAPI(t)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{SharedFields: []string{"spl"}}); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 2, 1, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 7; i++ {
		o := obsAt(t, "A", 50, false, base.Add(time.Duration(i)*time.Hour))
		if _, err := server.Data.Ingest("SC", "c1", o, o.SensedAt); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/apps/SC/observations/export?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("export status=%d type=%q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(string(body)), "\n") + 1; lines != 7 {
		t.Fatalf("exported %d lines, want 7", lines)
	}
	// CSV variant.
	respCSV, err := http.Get(ts.URL + "/v1/apps/SC/observations/export?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = respCSV.Body.Close() }()
	if respCSV.Header.Get("Content-Type") != "text/csv" {
		t.Fatalf("csv content type = %q", respCSV.Header.Get("Content-Type"))
	}
	// Bad format.
	respBad, err := http.Get(ts.URL + "/v1/apps/SC/observations/export?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = respBad.Body.Close() }()
	if respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format status = %d", respBad.StatusCode)
	}
}
