package goflow

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/faults"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/sensing"
)

// Chaos suite for the live layer: the REST+stream listener is wrapped
// in a seeded fault injector, so server→client writes are reset
// mid-stream, one-way partitioned (writes swallowed, the client hears
// nothing), or delayed — the nemeses the paper's deployment met in the
// wild. The client under test does what a real dashboard must do:
// notice the dead stream, catch up over the cursor API (itself served
// through the same faulty listener, with retries), reconnect, and
// keep going. The invariant is the live layer's contract: the union
// of streamed and caught-up events is exactly the published set, with
// neither channel ever duplicating an event.

func TestLiveChaosStreamResumesWithCursor(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runLiveChaos(t, seed) })
	}
}

// chaosStream is a raw-TCP SSE consumer with per-read deadlines, so a
// partitioned (silently black-holed) stream surfaces as a timeout
// instead of hanging the test.
type chaosStream struct {
	conn net.Conn
	br   *bufio.Reader
}

func openChaosStream(addr string) (*chaosStream, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	req := "GET /v1/live/sse?app=SC HTTP/1.1\r\nHost: " + addr + "\r\nAccept: text/event-stream\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !strings.Contains(status, "200") {
		conn.Close()
		return nil, fmt.Errorf("stream status %q", strings.TrimSpace(status))
	}
	// Skip response headers.
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, err
		}
		if line == "\r\n" || line == "\n" {
			break
		}
	}
	return &chaosStream{conn: conn, br: br}, nil
}

func (s *chaosStream) Close() { s.conn.Close() }

// next reads one live event, decoding the observation SPL as the
// event's identity. Any error — reset, EOF, deadline from a partition
// — means the stream is dead.
func (s *chaosStream) next(timeout time.Duration) (float64, error) {
	_ = s.conn.SetReadDeadline(time.Now().Add(timeout))
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			return 0, err
		}
		data, ok := strings.CutPrefix(strings.TrimRight(line, "\r\n"), "data: ")
		if !ok {
			continue
		}
		var ev LiveEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return 0, fmt.Errorf("bad event frame: %w", err)
		}
		o, err := sensing.DecodeObservation(ev.Body)
		if err != nil {
			return 0, fmt.Errorf("bad event body: %w", err)
		}
		return o.SPL, nil
	}
}

func runLiveChaos(t *testing.T, seed int64) {
	before := goflowStableGoroutines(t)
	rng := rand.New(rand.NewSource(seed))
	plan := faults.Plan{
		// Reset nemesis: kill the connection on every Nth server write.
		ResetEvery: 3 + rng.Intn(6),
		// Slow-reader nemesis: stall a fraction of writes.
		DelayProb: 0.2,
		Delay:     time.Millisecond,
	}
	if rng.Intn(2) == 0 {
		// One-way partition nemesis: after N writes the connection
		// black-holes — the server keeps "succeeding", the client
		// hears nothing and must notice via its read deadline.
		plan.PartitionAfterWrites = 4 + rng.Intn(8)
	}
	in := faults.New(seed, plan)

	broker := mq.NewBroker()
	server, err := NewServer(ServerConfig{Broker: broker, Store: docstore.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Login("SC")
	if err != nil {
		t.Fatal(err)
	}
	if err := server.StartIngest(); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: NewHTTPHandler(server)}
	go func() { _ = httpSrv.Serve(in.Listener(ln)) }()
	addr := ln.Addr().String()

	seenStream := make(map[float64]int)
	seenCatch := make(map[float64]int)
	cursor := ""

	// catchUp walks cursor pages until one comes back empty. The pages
	// travel the same faulty listener, so individual requests may die;
	// the cursor makes retries safe — a page is only recorded (and the
	// cursor only advanced) when it decoded in full.
	httpc := &http.Client{Timeout: 2 * time.Second}
	catchUp := func() {
		t.Helper()
		for attempt := 0; attempt < 50; attempt++ {
			pageURL := fmt.Sprintf("http://%s/v1/apps/SC/observations?cursor=%s&limit=100",
				addr, url.QueryEscape(cursor))
			resp, err := httpc.Get(pageURL)
			if err != nil {
				continue
			}
			var body map[string]any
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				continue
			}
			docs, _ := body["observations"].([]any)
			for _, d := range docs {
				doc := d.(map[string]any)
				seenCatch[doc["spl"].(float64)]++
			}
			if nc, ok := body["nextCursor"].(string); ok {
				cursor = nc
			}
			if len(docs) == 0 {
				return
			}
		}
		t.Fatal("cursor catch-up never completed through the faulty link")
	}

	const rounds, perRound = 4, 5
	published := 0
	inUnion := func(spl float64) bool {
		return seenStream[spl] > 0 || seenCatch[spl] > 0
	}
	var stream *chaosStream
	for round := 0; round < rounds; round++ {
		// (Re)connect before publishing, so everything published this
		// round is either streamed to this connection or durably
		// stored behind the cursor. The handshake itself can be hit.
		for attempt := 0; stream == nil; attempt++ {
			if attempt >= 20 {
				t.Fatal("could not open a live stream through the faulty link")
			}
			stream, _ = openChaosStream(addr)
		}
		for i := 0; i < perRound; i++ {
			publishLiveObs(t, broker, cl, "FR75013", 50+float64(published))
			published++
		}
		if err := server.WaitIdle(5 * time.Second); err != nil {
			t.Fatal(err)
		}

		// Drain the stream until every published event is accounted
		// for or the stream dies.
		for {
			missing := 0
			for i := 0; i < published; i++ {
				if !inUnion(50 + float64(i)) {
					missing++
				}
			}
			if missing == 0 {
				break
			}
			spl, err := stream.next(time.Second)
			if err != nil {
				stream.Close()
				stream = nil
				break
			}
			seenStream[spl]++
			if seenStream[spl] > 1 {
				t.Fatalf("seed=%d: stream delivered %v twice", seed, spl)
			}
		}
		if stream == nil {
			catchUp()
		}
	}
	if stream != nil {
		stream.Close()
	}
	// Whatever the final stream state, a last catch-up must leave the
	// union complete.
	catchUp()

	for i := 0; i < published; i++ {
		spl := 50 + float64(i)
		if !inUnion(spl) {
			t.Errorf("seed=%d: event %v lost (not streamed, not caught up)", seed, spl)
		}
	}
	for spl, n := range seenCatch {
		if n > 1 {
			t.Errorf("seed=%d: cursor catch-up returned %v %d times", seed, spl, n)
		}
	}
	counts := in.Counts()
	if counts.Resets+counts.Partitions+counts.Delays == 0 {
		t.Errorf("seed=%d: no faults fired — the chaos run was not chaotic (counts %+v)", seed, counts)
	}

	// Drain: no socket lifecycle path may leak a goroutine — including
	// partitioned handlers whose writes were silently swallowed.
	server.Live.Close()
	_ = httpSrv.Close()
	server.Shutdown()
	broker.Close()
	if after := goflowStableGoroutines(t); after > before+3 {
		t.Fatalf("seed=%d: goroutines leaked across the chaos run: %d -> %d", seed, before, after)
	}
}
