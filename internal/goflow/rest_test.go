package goflow

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/cluster"
	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/sensing"
	"github.com/urbancivics/goflow/internal/storage"
)

func newAPI(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	server, _ := newTestServer(t)
	ts := httptest.NewServer(NewHTTPHandler(server))
	t.Cleanup(ts.Close)
	return server, ts
}

func doJSON(t *testing.T, method, url string, body any, headers ...string) (*http.Response, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(headers); i += 2 {
		req.Header.Set(headers[i], headers[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

func TestRESTHealth(t *testing.T) {
	_, ts := newAPI(t)
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health = %d %v", resp.StatusCode, body)
	}
}

func TestRESTRegisterAppAndConflict(t *testing.T) {
	_, ts := newAPI(t)
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/apps", registerAppRequest{ID: "SC", Name: "SoundCity"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register = %d %v", resp.StatusCode, body)
	}
	if body["secret"] == "" {
		t.Fatal("register must return the secret")
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/apps", registerAppRequest{ID: "SC"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register = %d, want 409", resp.StatusCode)
	}
	// Malformed body.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/apps", bytes.NewBufferString("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Body.Close() }()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", raw.StatusCode)
	}
}

func TestRESTLoginSubscribeAndErrors(t *testing.T) {
	_, ts := newAPI(t)
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/login", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("login to missing app = %d, want 404", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/apps", registerAppRequest{ID: "SC"}); resp.StatusCode != http.StatusCreated {
		t.Fatal("register failed")
	}
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/login", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("login = %d %v", resp.StatusCode, body)
	}
	clientID, ok := body["id"].(string)
	if !ok || clientID == "" {
		t.Fatalf("login body = %v", body)
	}
	if body["exchange"] != "E."+clientID || body["queue"] != "Q."+clientID {
		t.Fatalf("endpoints = %v", body)
	}
	// Subscribe.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/subscriptions",
		subscribeRequest{ClientID: clientID, Datatype: "feedback", Zone: "FR75013"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe = %d", resp.StatusCode)
	}
	// Missing fields.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/subscriptions", subscribeRequest{ClientID: clientID})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("incomplete subscribe = %d, want 400", resp.StatusCode)
	}
	// Unknown client.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/subscriptions",
		subscribeRequest{ClientID: "ghost", Datatype: "feedback", Zone: "FR75013"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown client subscribe = %d, want 404", resp.StatusCode)
	}
}

func TestRESTObservationsQuery(t *testing.T) {
	server, ts := newAPI(t)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{SharedFields: []string{"spl"}}); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 2, 1, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		o := obsAt(t, "LGE NEXUS 5", 40+float64(i)*5, i%2 == 0, base.Add(time.Duration(i)*time.Hour))
		if _, err := server.Data.Ingest("SC", "c1", o, o.SensedAt); err != nil {
			t.Fatal(err)
		}
	}
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/observations?localized=true", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observations = %d", resp.StatusCode)
	}
	if int(body["count"].(float64)) != 3 {
		t.Fatalf("localized count = %v, want 3", body["count"])
	}
	// Time filter.
	from := base.Add(90 * time.Minute).Format(time.RFC3339)
	_, body = doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/observations?from="+from, nil)
	if int(body["count"].(float64)) != 3 {
		t.Fatalf("from-filtered count = %v, want 3", body["count"])
	}
	// Count endpoint.
	_, body = doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/observations/count?model=LGE+NEXUS+5", nil)
	if int(body["count"].(float64)) != 5 {
		t.Fatalf("count = %v", body["count"])
	}
	// Foreign requester gets the policy-projected view.
	_, body = doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/observations?requester=OTHER", nil)
	observations, ok := body["observations"].([]any)
	if !ok || len(observations) != 5 {
		t.Fatalf("foreign observations = %v", body["observations"])
	}
	first, ok := observations[0].(map[string]any)
	if !ok {
		t.Fatal("bad observation shape")
	}
	if _, has := first["deviceModel"]; has {
		t.Fatal("foreign view must hide unshared fields")
	}
	if _, has := first["spl"]; !has {
		t.Fatal("foreign view must include shared fields")
	}
	// Limit + skip.
	_, body = doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/observations?limit=2&skip=4", nil)
	if int(body["count"].(float64)) != 1 {
		t.Fatalf("paged count = %v, want 1", body["count"])
	}
}

func TestRESTAnalyticsAndJobs(t *testing.T) {
	server, ts := newAPI(t)
	app, err := server.RegisterApp("SC", "SoundCity", DataPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Now()
	if _, err := server.BulkIngest("SC", "c1", []*sensing.Observation{obsAt(t, "A", 50, true, at)}); err != nil {
		t.Fatal(err)
	}
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/apps/SC/analytics", nil)
	if resp.StatusCode != http.StatusOK || int(body["ingested"].(float64)) != 1 {
		t.Fatalf("analytics = %d %v", resp.StatusCode, body)
	}
	// Unknown app analytics returns the zero record, not an error.
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/apps/GHOST/analytics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ghost analytics = %d", resp.StatusCode)
	}
	// Jobs are a manager capability: no secret, no job.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/jobs", submitJobRequest{Name: "count-observations"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated job submit = %d, want 401", resp.StatusCode)
	}
	// Submit a job with the app secret and poll it.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/jobs",
		submitJobRequest{Name: "count-observations"}, "X-App-Secret", app.Secret)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit job = %d %v", resp.StatusCode, body)
	}
	jobID, ok := body["jobId"].(string)
	if !ok {
		t.Fatalf("job body = %v", body)
	}
	server.Jobs.Wait()
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+jobID, nil)
	if resp.StatusCode != http.StatusOK || int(body["state"].(float64)) != int(JobDone) {
		t.Fatalf("job status = %d %v", resp.StatusCode, body)
	}
	// Unknown job.
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
	// Unknown job name.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/jobs",
		submitJobRequest{Name: "nope"}, "X-App-Secret", app.Secret)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown job name = %d, want 400", resp.StatusCode)
	}
}

// TestRESTNotLeaderMapping: writes routed to a node that cannot take
// them — an unpromoted follower or a fenced ex-leader — surface as 503
// with a Retry-After and, when the node knows who leads, an
// X-Leader-Hint for redirect-following clients. The condition is
// transient by design (failover elects a successor within a few lease
// TTLs), so it must never map to a 500.
func TestRESTNotLeaderMapping(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantHint   string
		wantRetry  bool
	}{
		{
			name:       "follower with leader hint",
			err:        &cluster.NotLeaderError{Leader: "n2", Addr: "10.0.0.2:7600"},
			wantStatus: http.StatusServiceUnavailable,
			wantHint:   "10.0.0.2:7600",
			wantRetry:  true,
		},
		{
			name:       "follower with name-only hint",
			err:        &cluster.NotLeaderError{Leader: "n2"},
			wantStatus: http.StatusServiceUnavailable,
			wantHint:   "n2",
			wantRetry:  true,
		},
		{
			name:       "fenced ex-leader (stale term)",
			err:        &cluster.NotLeaderError{Leader: "n3", Addr: "10.0.0.3:7600", Err: cluster.ErrStaleTerm},
			wantStatus: http.StatusServiceUnavailable,
			wantHint:   "10.0.0.3:7600",
			wantRetry:  true,
		},
		{
			name:       "bare ErrNotLeader without hint",
			err:        cluster.ErrNotLeader,
			wantStatus: http.StatusServiceUnavailable,
			wantRetry:  true,
		},
		{
			name:       "wrapped in ingest context",
			err:        fmt.Errorf("insert %q: commit log: %w", "obs", &cluster.NotLeaderError{Addr: "10.0.0.4:7600", Err: cluster.ErrStaleTerm}),
			wantStatus: http.StatusServiceUnavailable,
			wantHint:   "10.0.0.4:7600",
			wantRetry:  true,
		},
		{
			name:       "unrelated error stays 500",
			err:        errors.New("disk on fire"),
			wantStatus: http.StatusInternalServerError,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			writeErr(rec, tc.err)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d", rec.Code, tc.wantStatus)
			}
			if got := rec.Header().Get("X-Leader-Hint"); got != tc.wantHint {
				t.Fatalf("X-Leader-Hint = %q, want %q", got, tc.wantHint)
			}
			if got := rec.Header().Get("Retry-After") != ""; got != tc.wantRetry {
				t.Fatalf("Retry-After present = %v, want %v", got, tc.wantRetry)
			}
			var body map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
				t.Fatalf("error body = %q (%v)", rec.Body.String(), err)
			}
		})
	}
}

// fencedEngine refuses writes the way a deposed cluster leader does,
// so the bulk-ingest route can be tested end to end without a group.
type fencedEngine struct{ storage.Engine }

func (fencedEngine) Insert(string, storage.Doc) (string, error) {
	return "", &cluster.NotLeaderError{Leader: "n2", Addr: "10.0.0.2:7600", Err: cluster.ErrStaleTerm}
}

func (fencedEngine) InsertMany(string, []storage.Doc) ([]string, error) {
	return nil, &cluster.NotLeaderError{Leader: "n2", Addr: "10.0.0.2:7600", Err: cluster.ErrStaleTerm}
}

// The bulk-ingest route has its own error path (it reports the stored
// prefix alongside the error), so the not-leader mapping must hold
// there too — not just in writeErr.
func TestRESTBulkIngestNotLeader(t *testing.T) {
	broker := mq.NewBroker()
	t.Cleanup(broker.Close)
	server, err := NewServer(ServerConfig{Broker: broker, Data: fencedEngine{storage.NewLocal(docstore.NewStore())}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandler(server))
	t.Cleanup(ts.Close)

	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/apps/SC/observations", map[string]any{
		"clientId": "c1",
		"observations": []map[string]any{
			{"userId": "u1", "spl": 61.5, "sensedAt": time.Now().UTC().Format(time.RFC3339)},
		},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %v)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Leader-Hint"); got != "10.0.0.2:7600" {
		t.Fatalf("X-Leader-Hint = %q", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
	if stored, ok := body["stored"].(float64); !ok || stored != 0 {
		t.Fatalf("stored = %v, want 0", body["stored"])
	}
}
