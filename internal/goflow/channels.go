package goflow

import (
	"fmt"
	"sync"

	"github.com/urbancivics/goflow/internal/mq"
)

// Channel management (Figure 3 of the paper): GoFlow provisions, on
// behalf of applications and mobile clients, the broker exchanges,
// queues and bindings that route crowd-sensed messages.
//
// Topology per app:
//
//	E.<client> --"<app>.<clientId>.#"--> <app> --#--> GFX --#--> GF
//
// Each client publishes on its private exchange E.<client>; the
// binding into the app exchange filters on the client id (shared
// secret), so a client cannot inject messages under another identity.
// The app exchange forwards everything to the GoFlow exchange (GFX)
// and queue (GF) for storage. Subscriptions create location exchanges
// (loc.<zone>) fed from the app exchange, with client queues bound by
// datatype + zone patterns.

// Broker endpoints provisioned by channel management.
const (
	// GoFlowExchange receives every crowd-sensed message.
	GoFlowExchange = "GFX"
	// GoFlowQueue is consumed by the server's ingest loop.
	GoFlowQueue = "GF"
)

// ClientExchange names a client's private exchange.
func ClientExchange(clientID string) string { return "E." + clientID }

// ClientQueue names a client's private notification queue.
func ClientQueue(clientID string) string { return "Q." + clientID }

// LocationExchange names a zone's exchange.
func LocationExchange(zone string) string { return "loc." + zone }

// Channels provisions broker topology. It is safe for concurrent use.
type Channels struct {
	broker *mq.Broker

	mu        sync.Mutex
	locations map[string]bool // provisioned location exchanges
}

// NewChannels builds a channel manager bound to the broker and
// provisions the GoFlow exchange and queue.
func NewChannels(broker *mq.Broker) (*Channels, error) {
	c := &Channels{broker: broker, locations: make(map[string]bool)}
	if err := broker.DeclareExchange(GoFlowExchange, mq.Topic); err != nil {
		return nil, fmt.Errorf("goflow exchange: %w", err)
	}
	if err := broker.DeclareQueue(GoFlowQueue, mq.QueueOptions{}); err != nil {
		return nil, fmt.Errorf("goflow queue: %w", err)
	}
	if err := broker.BindQueue(GoFlowQueue, GoFlowExchange, "#"); err != nil {
		return nil, fmt.Errorf("goflow binding: %w", err)
	}
	return c, nil
}

// ProvisionApp creates the app exchange and forwards it into the
// GoFlow exchange.
func (c *Channels) ProvisionApp(appID string) error {
	if err := c.broker.DeclareExchange(appID, mq.Topic); err != nil {
		return fmt.Errorf("app exchange %q: %w", appID, err)
	}
	if err := c.broker.BindExchange(GoFlowExchange, appID, "#"); err != nil {
		return fmt.Errorf("app forwarding %q: %w", appID, err)
	}
	return nil
}

// ProvisionClient creates the client's private exchange and queue and
// binds the exchange into the app exchange with the client id as the
// routing filter. It returns the exchange and queue names for the
// client to connect to.
func (c *Channels) ProvisionClient(appID, clientID string) (exchangeName, queueName string, err error) {
	exchangeName = ClientExchange(clientID)
	queueName = ClientQueue(clientID)
	if err = c.broker.DeclareExchange(exchangeName, mq.Topic); err != nil {
		return "", "", fmt.Errorf("client exchange: %w", err)
	}
	if err = c.broker.DeclareQueue(queueName, mq.QueueOptions{MaxLen: 10000, Exclusive: true}); err != nil {
		return "", "", fmt.Errorf("client queue: %w", err)
	}
	// The client-id filter: only keys carrying this client's id pass
	// into the application exchange.
	pattern := appID + "." + clientID + ".#"
	if err = c.broker.BindExchange(appID, exchangeName, pattern); err != nil {
		return "", "", fmt.Errorf("client binding: %w", err)
	}
	return exchangeName, queueName, nil
}

// DeprovisionClient tears the client's endpoints down (logout /
// account removal).
func (c *Channels) DeprovisionClient(clientID string) error {
	var firstErr error
	if err := c.broker.DeleteExchange(ClientExchange(clientID)); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := c.broker.DeleteQueue(ClientQueue(clientID)); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Subscribe registers the client's interest in a datatype at a zone
// (e.g. feedback at FR75013, journeys at the home zone FR92120, as in
// Figure 3). GoFlow lazily creates the location exchange, feeds it
// from the app exchange filtered by zone, and binds the client queue
// filtered by datatype.
func (c *Channels) Subscribe(appID, clientID, datatype, zone string) error {
	locEx := LocationExchange(zone)
	c.mu.Lock()
	if !c.locations[locEx] {
		if err := c.broker.DeclareExchange(locEx, mq.Topic); err != nil {
			c.mu.Unlock()
			return fmt.Errorf("location exchange %q: %w", locEx, err)
		}
		c.locations[locEx] = true
	}
	c.mu.Unlock()

	// Feed the location exchange with every message of the app at
	// this zone, regardless of publisher or datatype.
	feed := appID + ".*.*." + zone
	if err := c.broker.BindExchange(locEx, appID, feed); err != nil {
		return fmt.Errorf("location feed %q: %w", locEx, err)
	}
	// Deliver only the requested datatype to the client queue.
	sel := appID + ".*." + datatype + "." + zone
	if err := c.broker.BindQueue(ClientQueue(clientID), locEx, sel); err != nil {
		return fmt.Errorf("subscription binding: %w", err)
	}
	return nil
}

// Unsubscribe removes a client's datatype/zone subscription.
func (c *Channels) Unsubscribe(appID, clientID, datatype, zone string) error {
	sel := appID + ".*." + datatype + "." + zone
	return c.broker.UnbindQueue(ClientQueue(clientID), LocationExchange(zone), sel)
}

// RoutingKey builds the canonical crowd-sensing routing key:
// "<app>.<client>.<datatype>.<zone>".
func RoutingKey(appID, clientID, datatype, zone string) string {
	if zone == "" {
		zone = "ZZ"
	}
	return appID + "." + clientID + "." + datatype + "." + zone
}
