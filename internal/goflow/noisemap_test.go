package goflow

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/geo"
	"github.com/urbancivics/goflow/internal/series"
	"github.com/urbancivics/goflow/internal/storage"
)

// TestNoisemapScanAndRollupAgree pins the identical-answers invariant
// the noisemap documents: the document-scan fallback and the series
// rollup path must return the same rows — same zone set, same
// statistics — so attaching a series engine changes a query's latency,
// never its answer. Observations without a location are the tricky
// case: series.PointFromObservation buckets them under zone "", and
// the scan must do the same rather than skip them.
func TestNoisemapScanAndRollupAgree(t *testing.T) {
	accounts := newAccounts(t)
	scanDM := NewDataManager(docstore.NewStore(), accounts, geo.ParisZones())

	engine := storage.NewLocal(docstore.NewStore())
	engine.AttachSeries(series.New(series.Options{}), "observations")
	rollupDM := NewDataManagerEngine(engine, accounts, geo.ParisZones())

	base := time.Date(2016, 3, 1, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 40; i++ {
		at := base.Add(time.Duration(i) * time.Minute)
		// Every third observation has no location, hence no zone field.
		o := obsAt(t, "M", 40+float64(i)*0.7, i%3 != 0, at)
		for _, dm := range []*DataManager{scanDM, rollupDM} {
			if _, err := dm.Ingest("SC", "c1", o, at); err != nil {
				t.Fatal(err)
			}
		}
	}

	ctx := context.Background()
	from, to := base.Add(-time.Hour), base.Add(2*time.Hour)
	scan, err := scanDM.Noisemap(ctx, from, to)
	if err != nil {
		t.Fatal(err)
	}
	rollup, err := rollupDM.Noisemap(ctx, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) == 0 || scan[0].Zone != "" {
		t.Fatalf("scan path must emit a %q row for zone-less observations, got %+v", "", scan)
	}
	if len(scan) != len(rollup) {
		t.Fatalf("zone sets differ: scan %d rows, rollup %d rows", len(scan), len(rollup))
	}
	for i := range scan {
		if scan[i].Source != "scan" || rollup[i].Source != "rollup" {
			t.Fatalf("sources: scan=%q rollup=%q", scan[i].Source, rollup[i].Source)
		}
		requireNoiseStatsClose(t, scan[i], rollup[i])
	}

	// The single-zone query agrees too, including for the "" zone.
	for _, zone := range []string{"", scan[len(scan)-1].Zone} {
		za, err := scanDM.ZoneNoise(ctx, zone, from, to)
		if err != nil {
			t.Fatal(err)
		}
		zb, err := rollupDM.ZoneNoise(ctx, zone, from, to)
		if err != nil {
			t.Fatal(err)
		}
		requireNoiseStatsClose(t, za, zb)
	}
}

// requireNoiseStatsClose asserts two answers for the same zone agree:
// order-insensitive fields (count, min, max, histogram percentiles)
// exactly, float aggregates within summation-order rounding — the
// rollup path sums per bucket and merges, the scan sums point by
// point, so the last ulp may differ.
func requireNoiseStatsClose(t *testing.T, a, b NoiseStats) {
	t.Helper()
	if a.Zone != b.Zone || a.Count != b.Count || a.Min != b.Min || a.Max != b.Max ||
		a.P50 != b.P50 || a.P95 != b.P95 {
		t.Fatalf("zone %q exact fields differ:\n scan:   %+v\n rollup: %+v", a.Zone, a, b)
	}
	closeEnough := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-9*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	if !closeEnough(a.LAeq, b.LAeq) || !closeEnough(a.Mean, b.Mean) || !closeEnough(a.Stddev, b.Stddev) {
		t.Fatalf("zone %q float aggregates differ:\n scan:   %+v\n rollup: %+v", a.Zone, a, b)
	}
}
