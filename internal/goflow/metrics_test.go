package goflow

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/obs"
)

func TestExchangeAndQueueClasses(t *testing.T) {
	cases := []struct{ name, exClass, qClass string }{
		{"GFX", "goflow", "other"},
		{"GF", "app", "goflow"},
		{"E.client42", "client", "other"},
		{"Q.client42", "app", "client"},
		{"loc.FR75013", "location", "other"},
		{"SC", "app", "other"},
	}
	for _, c := range cases {
		if got := exchangeClass(c.name); got != c.exClass {
			t.Errorf("exchangeClass(%q) = %q, want %q", c.name, got, c.exClass)
		}
		if got := queueClass(c.name); got != c.qClass {
			t.Errorf("queueClass(%q) = %q, want %q", c.name, got, c.qClass)
		}
	}
}

// TestMetricsEndToEnd drives an observation through the full pipeline
// — REST login, broker publish, ingest, REST retrieval — and checks
// that every layer shows up in the /metrics exposition.
func TestMetricsEndToEnd(t *testing.T) {
	broker := mq.NewBroker()
	store := docstore.NewStore()
	server, err := NewServer(ServerConfig{Broker: broker, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	reg := obs.NewRegistry()
	Instrument(reg, server, store)
	handler := NewInstrumentedHTTPHandler(server, reg)

	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Login("SC")
	if err != nil {
		t.Fatal(err)
	}
	if err := server.StartIngest(); err != nil {
		t.Fatal(err)
	}
	o := obsAt(t, "LGE NEXUS 5", 63, true, time.Date(2016, 3, 1, 9, 0, 0, 0, time.UTC))
	body, err := o.Encode()
	if err != nil {
		t.Fatal(err)
	}
	key := RoutingKey("SC", cl.ID, "obs", "FR75013")
	if _, err := broker.PublishAt(cl.Exchange, key, nil, body, o.SensedAt); err != nil {
		t.Fatal(err)
	}
	if err := server.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Two instrumented REST hits against different apps: same route
	// label for both.
	for _, app := range []string{"SC", "Other"} {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/apps/"+app+"/observations", nil))
	}

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		// Broker layer: the publish fanned out through the client,
		// app, goflow and (absent) location exchanges.
		`mq_published_total{exchange="client"} 1`,
		`mq_enqueued_total{queue="goflow"} 1`,
		`mq_acked_total{queue="goflow"} 1`,
		`mq_queue_ready{queue="goflow"} 0`,
		// Store layer: the ingest inserted, the REST queries hit
		// FindIDs.
		`docstore_op_duration_seconds_count{collection="observations",op="insert"} 1`,
		`docstore_op_duration_seconds_bucket{collection="observations",op="query",le="+Inf"}`,
		// Ingest pipeline.
		`goflow_ingested_total{app="SC"} 1`,
		// HTTP layer: both apps collapse into the route pattern.
		`http_requests_total{route="GET /v1/apps/{app}/observations",class="2xx"} 2`,
		`http_request_duration_seconds_count{route="GET /v1/apps/{app}/observations"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(text, "/v1/apps/SC/") {
		t.Error("raw URL leaked into metric labels")
	}

	// The JSON view decodes and carries the same families.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics.json = %d", rec.Code)
	}
	var snap struct {
		Families []obs.FamilySnapshot `json:"families"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	names := map[string]bool{}
	for _, f := range snap.Families {
		names[f.Name] = true
	}
	for _, want := range []string{"mq_published_total", "docstore_op_duration_seconds", "http_requests_total"} {
		if !names[want] {
			t.Errorf("metrics.json missing family %q", want)
		}
	}
}

// TestRouteCacheMetricsExposition checks the broker route-cache
// counters flow through the hook adapter into /metrics: repeated
// publishes on one key read as one miss plus hits, and the topology
// provisioning shows up as invalidations.
func TestRouteCacheMetricsExposition(t *testing.T) {
	broker := mq.NewBroker()
	store := docstore.NewStore()
	server, err := NewServer(ServerConfig{Broker: broker, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	reg := obs.NewRegistry()
	Instrument(reg, server, store)
	handler := NewInstrumentedHTTPHandler(server, reg)

	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Login("SC")
	if err != nil {
		t.Fatal(err)
	}
	key := RoutingKey("SC", cl.ID, "obs", "FR75013")
	at := time.Date(2016, 3, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if _, err := broker.PublishAt(cl.Exchange, key, nil, []byte("{}"), at); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"mq_route_cache_misses_total 1",
		"mq_route_cache_hits_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Provisioning the app and client topology flushed the cache at
	// least once; the exact count tracks declare/bind operations.
	if strings.Contains(text, "mq_route_cache_invalidations_total 0") ||
		!strings.Contains(text, "mq_route_cache_invalidations_total") {
		t.Errorf("/metrics should report nonzero invalidations; got:\n%s",
			grepLines(text, "route_cache"))
	}
}

// grepLines returns the lines of s containing substr (test-failure
// diagnostics).
func grepLines(s, substr string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
