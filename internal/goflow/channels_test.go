package goflow

import (
	"testing"

	"github.com/urbancivics/goflow/internal/mq"
)

func newChannels(t *testing.T) (*mq.Broker, *Channels) {
	t.Helper()
	broker := mq.NewBroker()
	t.Cleanup(broker.Close)
	c, err := NewChannels(broker)
	if err != nil {
		t.Fatal(err)
	}
	return broker, c
}

func TestChannelsProvisionTopology(t *testing.T) {
	broker, c := newChannels(t)
	if err := c.ProvisionApp("SC"); err != nil {
		t.Fatal(err)
	}
	ex, q, err := c.ProvisionClient("SC", "mob1")
	if err != nil {
		t.Fatal(err)
	}
	if ex != "E.mob1" || q != "Q.mob1" {
		t.Fatalf("endpoints = %q, %q", ex, q)
	}
	// A message published on the client exchange with the client's id
	// must land in the GoFlow queue.
	n, err := broker.Publish(ex, RoutingKey("SC", "mob1", "obs", "FR75013"), nil, []byte("m"))
	if err != nil || n != 1 {
		t.Fatalf("publish through topology: n=%d err=%v", n, err)
	}
	st, err := broker.QueueStats(GoFlowQueue)
	if err != nil || st.Ready != 1 {
		t.Fatalf("GF queue: %+v err=%v", st, err)
	}
}

func TestChannelsClientIDFilterBlocksSpoofing(t *testing.T) {
	broker, c := newChannels(t)
	if err := c.ProvisionApp("SC"); err != nil {
		t.Fatal(err)
	}
	ex, _, err := c.ProvisionClient("SC", "mob1")
	if err != nil {
		t.Fatal(err)
	}
	// mob1's exchange refuses keys claiming another client id: the
	// shared-secret binding of the paper.
	n, err := broker.Publish(ex, RoutingKey("SC", "mob2", "obs", "FR75013"), nil, []byte("m"))
	if err != nil || n != 0 {
		t.Fatalf("spoofed publish delivered %d (err=%v), want 0", n, err)
	}
}

func TestChannelsSubscriptionRouting(t *testing.T) {
	broker, c := newChannels(t)
	if err := c.ProvisionApp("SC"); err != nil {
		t.Fatal(err)
	}
	pubEx, _, err := c.ProvisionClient("SC", "mob1")
	if err != nil {
		t.Fatal(err)
	}
	_, subQ, err := c.ProvisionClient("SC", "mob2")
	if err != nil {
		t.Fatal(err)
	}
	// mob2 wants feedback in FR75013 but not journeys, and nothing
	// from FR92120.
	if err := c.Subscribe("SC", "mob2", "feedback", "FR75013"); err != nil {
		t.Fatal(err)
	}
	publish := func(datatype, zone string) int {
		t.Helper()
		n, err := broker.Publish(pubEx, RoutingKey("SC", "mob1", datatype, zone), nil, []byte("m"))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	// Feedback in the zone reaches GF + mob2's queue.
	if n := publish("feedback", "FR75013"); n != 2 {
		t.Fatalf("feedback@FR75013 delivered to %d queues, want 2", n)
	}
	// Journey in the zone reaches only GF.
	if n := publish("journey", "FR75013"); n != 1 {
		t.Fatalf("journey@FR75013 delivered to %d queues, want 1", n)
	}
	// Feedback elsewhere reaches only GF.
	if n := publish("feedback", "FR92120"); n != 1 {
		t.Fatalf("feedback@FR92120 delivered to %d queues, want 1", n)
	}
	st, err := broker.QueueStats(subQ)
	if err != nil || st.Ready != 1 {
		t.Fatalf("subscriber queue: %+v err=%v", st, err)
	}
	// Unsubscribe stops delivery.
	if err := c.Unsubscribe("SC", "mob2", "feedback", "FR75013"); err != nil {
		t.Fatal(err)
	}
	if n := publish("feedback", "FR75013"); n != 1 {
		t.Fatalf("after unsubscribe delivered to %d queues, want 1", n)
	}
}

func TestChannelsMultipleSubscribersShareLocationExchange(t *testing.T) {
	broker, c := newChannels(t)
	if err := c.ProvisionApp("SC"); err != nil {
		t.Fatal(err)
	}
	pubEx, _, err := c.ProvisionClient("SC", "mob1")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"mob2", "mob3"} {
		if _, _, err := c.ProvisionClient("SC", id); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe("SC", id, "feedback", "FR75013"); err != nil {
			t.Fatal(err)
		}
	}
	n, err := broker.Publish(pubEx, RoutingKey("SC", "mob1", "feedback", "FR75013"), nil, []byte("m"))
	if err != nil || n != 3 { // GF + two subscriber queues
		t.Fatalf("delivered to %d queues, want 3", n)
	}
}

func TestChannelsDeprovisionClient(t *testing.T) {
	broker, c := newChannels(t)
	if err := c.ProvisionApp("SC"); err != nil {
		t.Fatal(err)
	}
	ex, q, err := c.ProvisionClient("SC", "mob1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeprovisionClient("mob1"); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Publish(ex, "any", nil, nil); err == nil {
		t.Fatal("publish to deprovisioned exchange must fail")
	}
	if _, err := broker.QueueStats(q); err == nil {
		t.Fatal("deprovisioned queue must be gone")
	}
}

func TestRoutingKeyZoneDefault(t *testing.T) {
	if got := RoutingKey("SC", "c", "obs", ""); got != "SC.c.obs.ZZ" {
		t.Fatalf("RoutingKey = %q", got)
	}
}
