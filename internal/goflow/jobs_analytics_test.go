package goflow

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func newJobs(t *testing.T, concurrent int) (*Jobs, *DataManager) {
	t.Helper()
	dm, _ := newDataManager(t)
	j := NewJobs(dm, concurrent)
	t.Cleanup(j.Shutdown)
	return j, dm
}

func TestJobLifecycle(t *testing.T) {
	j, dm := newJobs(t, 2)
	at := time.Now()
	if _, err := dm.Ingest("SC", "c", obsAt(t, "A", 50, true, at), at); err != nil {
		t.Fatal(err)
	}
	if _, err := dm.Ingest("SC", "c", obsAt(t, "A", 50, false, at), at); err != nil {
		t.Fatal(err)
	}
	id, err := j.Submit("SC", "count-observations")
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	job, err := j.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobDone {
		t.Fatalf("state = %v (err %q)", job.State, job.Error)
	}
	result, ok := job.Result.(map[string]int)
	if !ok || result["total"] != 2 || result["localized"] != 1 {
		t.Fatalf("result = %v", job.Result)
	}
}

func TestJobUnknownNameAndStatus(t *testing.T) {
	j, _ := newJobs(t, 1)
	if _, err := j.Submit("SC", "mine-bitcoin"); err == nil {
		t.Fatal("unknown job must fail at submit")
	}
	if _, err := j.Status("job-999"); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("unknown status = %v", err)
	}
}

func TestJobFailureState(t *testing.T) {
	j, _ := newJobs(t, 1)
	j.Register("boom", func(context.Context, *DataManager, string) (any, error) {
		return nil, errors.New("kaboom")
	})
	id, err := j.Submit("SC", "boom")
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	job, err := j.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobFailed || job.Error != "kaboom" {
		t.Fatalf("job = %+v", job)
	}
}

func TestJobConcurrencyCap(t *testing.T) {
	j, _ := newJobs(t, 2)
	var running, peak atomic.Int32
	block := make(chan struct{})
	j.Register("slow", func(ctx context.Context, _ *DataManager, _ string) (any, error) {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		select {
		case <-block:
		case <-ctx.Done():
		}
		running.Add(-1)
		return nil, nil
	})
	for i := 0; i < 5; i++ {
		if _, err := j.Submit("SC", "slow"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	close(block)
	j.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency = %d, cap was 2", p)
	}
}

func TestJobPurgeUnlocalized(t *testing.T) {
	j, dm := newJobs(t, 1)
	at := time.Now()
	if _, err := dm.Ingest("SC", "c", obsAt(t, "A", 50, true, at), at); err != nil {
		t.Fatal(err)
	}
	if _, err := dm.Ingest("SC", "c", obsAt(t, "A", 50, false, at), at); err != nil {
		t.Fatal(err)
	}
	id, err := j.Submit("SC", "purge-unlocalized")
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	job, err := j.Status(id)
	if err != nil || job.State != JobDone {
		t.Fatalf("job = %+v, %v", job, err)
	}
	n, err := dm.Count(Query{AppID: "SC"})
	if err != nil || n != 1 {
		t.Fatalf("after purge count = %d", n)
	}
}

func TestJobNamesSorted(t *testing.T) {
	j, _ := newJobs(t, 1)
	names := j.Names()
	if len(names) < 2 {
		t.Fatalf("builtin jobs missing: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names must be sorted")
		}
	}
}

func TestAnalyticsAggregation(t *testing.T) {
	a := NewAnalytics()
	now := time.Now()
	a.RecordIngest("SC", "anon1", "NEXUS 5", true, now)
	a.RecordIngest("SC", "anon1", "NEXUS 5", false, now.Add(time.Second))
	a.RecordIngest("SC", "anon2", "D5803", true, now)
	a.RecordRejection()

	sum := a.Summary()
	if sum.Ingested != 3 || sum.Rejected != 1 || len(sum.Apps) != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	st, ok := a.ForApp("SC")
	if !ok {
		t.Fatal("app stats missing")
	}
	if st.Ingested != 3 || st.Localized != 2 {
		t.Fatalf("app stats = %+v", st)
	}
	if st.ByModel["NEXUS 5"] != 2 || st.ByClient["anon2"] != 1 {
		t.Fatalf("per-key stats = %+v", st)
	}
	if !st.LastIngest.Equal(now.Add(time.Second)) {
		t.Fatal("LastIngest must track the newest ingest")
	}
	// Returned snapshot is a copy.
	st.ByModel["NEXUS 5"] = 999
	again, _ := a.ForApp("SC")
	if again.ByModel["NEXUS 5"] != 2 {
		t.Fatal("ForApp must return a copy")
	}
	if _, ok := a.ForApp("GHOST"); ok {
		t.Fatal("unknown app must report !ok")
	}
}
