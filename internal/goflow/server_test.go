package goflow

import (
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/sensing"
)

func newTestServer(t *testing.T) (*Server, *mq.Broker) {
	t.Helper()
	broker := mq.NewBroker()
	server, err := NewServer(ServerConfig{Broker: broker, Store: docstore.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		server.Shutdown()
		broker.Close()
	})
	return server, broker
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Store: docstore.NewStore()}); err == nil {
		t.Fatal("server without broker must fail")
	}
	if _, err := NewServer(ServerConfig{Broker: mq.NewBroker()}); err == nil {
		t.Fatal("server without store must fail")
	}
}

func TestServerBrokerPathIngest(t *testing.T) {
	server, broker := newTestServer(t)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Login("SC")
	if err != nil {
		t.Fatal(err)
	}
	if err := server.StartIngest(); err != nil {
		t.Fatal(err)
	}
	if err := server.StartIngest(); err != nil { // idempotent
		t.Fatal(err)
	}
	obs := obsAt(t, "LGE NEXUS 5", 63, true, time.Date(2016, 3, 1, 9, 0, 0, 0, time.UTC))
	body, err := obs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	key := RoutingKey("SC", cl.ID, "obs", "FR75013")
	if _, err := broker.PublishAt(cl.Exchange, key, nil, body, obs.SensedAt.Add(4*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := server.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	docs, err := server.Data.Retrieve(Query{AppID: "SC"})
	if err != nil || len(docs) != 1 {
		t.Fatalf("stored %d docs, %v", len(docs), err)
	}
	if docs[0]["userId"] != server.Accounts.Anonymize(cl.ID) {
		t.Fatal("broker-path ingest must anonymize")
	}
	// ReceivedAt follows the broker publish timestamp (virtual time).
	received, ok := docs[0]["receivedAt"].(time.Time)
	if !ok || !received.Equal(obs.SensedAt.Add(4*time.Second)) {
		t.Fatalf("receivedAt = %v", docs[0]["receivedAt"])
	}
	if st := server.Analytics.Summary(); st.Ingested != 1 {
		t.Fatalf("analytics ingested = %d", st.Ingested)
	}
}

func TestServerRejectsMalformedMessages(t *testing.T) {
	server, broker := newTestServer(t)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Login("SC")
	if err != nil {
		t.Fatal(err)
	}
	if err := server.StartIngest(); err != nil {
		t.Fatal(err)
	}
	key := RoutingKey("SC", cl.ID, "obs", "ZZ")
	if _, err := broker.Publish(cl.Exchange, key, nil, []byte("{broken")); err != nil {
		t.Fatal(err)
	}
	if err := server.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := server.Analytics.Summary(); st.Rejected != 1 || st.Ingested != 0 {
		t.Fatalf("summary = %+v", st)
	}
}

func TestServerIgnoresNonObservationDatatypes(t *testing.T) {
	server, broker := newTestServer(t)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Login("SC")
	if err != nil {
		t.Fatal(err)
	}
	if err := server.StartIngest(); err != nil {
		t.Fatal(err)
	}
	key := RoutingKey("SC", cl.ID, "feedback", "FR75013")
	if _, err := broker.Publish(cl.Exchange, key, nil, []byte(`{"annoyance":7}`)); err != nil {
		t.Fatal(err)
	}
	if err := server.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	n, err := server.Data.Count(Query{AppID: "SC"})
	if err != nil || n != 0 {
		t.Fatalf("feedback stored as observation: %d", n)
	}
	if st := server.Analytics.Summary(); st.Rejected != 0 {
		t.Fatal("feedback must not count as a rejection")
	}
}

func TestServerBulkIngest(t *testing.T) {
	server, _ := newTestServer(t)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2016, 1, 5, 8, 0, 0, 0, time.UTC)
	batch := []*sensing.Observation{
		obsAt(t, "A", 40, true, at),
		obsAt(t, "A", 50, false, at.Add(time.Minute)),
	}
	n, err := server.BulkIngest("SC", "loader", batch)
	if err != nil || n != 2 {
		t.Fatalf("BulkIngest = %d, %v", n, err)
	}
	// Invalid observation aborts with partial count.
	bad := obsAt(t, "A", 40, false, at)
	bad.UserID = ""
	n, err = server.BulkIngest("SC", "loader", []*sensing.Observation{obsAt(t, "A", 41, false, at), bad})
	if err == nil || n != 1 {
		t.Fatalf("partial bulk = %d, %v", n, err)
	}
}

func TestServerLoginLogout(t *testing.T) {
	server, broker := newTestServer(t)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Login("SC")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Exchange == "" || cl.Queue == "" {
		t.Fatalf("login must provision endpoints: %+v", cl)
	}
	stored, err := server.Accounts.Client(cl.ID)
	if err != nil || stored.Exchange != cl.Exchange {
		t.Fatalf("client record = %+v, %v", stored, err)
	}
	if err := server.Logout(cl.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.QueueStats(cl.Queue); err == nil {
		t.Fatal("logout must remove the client queue")
	}
	if _, err := server.Login("GHOSTAPP"); err == nil {
		t.Fatal("login to unknown app must fail")
	}
}

func TestServerShutdownStopsIngest(t *testing.T) {
	server, broker := newTestServer(t)
	if _, err := server.RegisterApp("SC", "SoundCity", DataPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := server.StartIngest(); err != nil {
		t.Fatal(err)
	}
	server.Shutdown()
	// Messages published after shutdown stay queued.
	cl, err := server.Login("SC")
	if err != nil {
		t.Fatal(err)
	}
	obs := obsAt(t, "A", 50, false, time.Now())
	body, err := obs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Publish(cl.Exchange, RoutingKey("SC", cl.ID, "obs", "ZZ"), nil, body); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	st, err := broker.QueueStats(GoFlowQueue)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != 1 {
		t.Fatalf("GF ready = %d after shutdown, want 1 (not consumed)", st.Ready)
	}
}
