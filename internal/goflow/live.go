package goflow

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/urbancivics/goflow/internal/guard"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/series"
)

// Live subscription layer: instead of polling GET /v1/observations,
// a dashboard opens a WebSocket or SSE stream on /v1/live and the
// broker's compiled trie fans matching messages straight onto the
// socket. Delivery over the stream is at-most-once — a full mailbox
// drops, a hopeless consumer is shed — and the cursor API is the
// complement: a client that reconnects resumes its read position with
// GET /v1/observations?cursor=..., so stream + catch-up together give
// exactly-once consumption without the server buffering for absent
// readers (the unbounded-queue failure mode the paper's deployment
// kept running into).

// Live layer errors.
var (
	// ErrLiveLimit reports the hub's concurrent-socket cap.
	ErrLiveLimit = errors.New("goflow: live socket limit reached")
	// ErrLiveClosed reports a hub that has been drained.
	ErrLiveClosed = errors.New("goflow: live hub closed")
	// ErrBadCursor reports an unparseable cursor token.
	ErrBadCursor = errors.New("goflow: malformed cursor")
)

// LiveConfig parameterizes the hub. The zero value gets defaults.
type LiveConfig struct {
	// Buffer is the per-socket mailbox capacity (default 256).
	Buffer int
	// SendBudget is how long a socket's mailbox may stay continuously
	// full before the consumer is shed (default 5s; negative sheds on
	// the first full-queue event).
	SendBudget time.Duration
	// MaxSockets caps concurrent live subscriptions (default 1024).
	MaxSockets int
	// Now overrides the budget clock for tests.
	Now func() time.Time
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.Buffer <= 0 {
		c.Buffer = 256
	}
	if c.SendBudget == 0 {
		c.SendBudget = 5 * time.Second
	}
	if c.SendBudget < 0 {
		c.SendBudget = 0
	}
	if c.MaxSockets <= 0 {
		c.MaxSockets = 1024
	}
	return c
}

// LiveHub owns the server side of live subscriptions: it admits
// sockets against the cap, attaches them to the broker's live fan-out
// on the GoFlow exchange, and ends every one of them at drain time so
// graceful shutdown is not held open by idle dashboards.
type LiveHub struct {
	broker *mq.Broker
	cfg    LiveConfig

	mu     sync.Mutex
	subs   map[*mq.LiveSub]struct{}
	closed bool

	catchups atomic.Uint64
}

// NewLiveHub builds a hub over the broker.
func NewLiveHub(broker *mq.Broker, cfg LiveConfig) *LiveHub {
	return &LiveHub{
		broker: broker,
		cfg:    cfg.withDefaults(),
		subs:   make(map[*mq.LiveSub]struct{}),
	}
}

// Config reports the effective (defaulted) configuration.
func (h *LiveHub) Config() LiveConfig { return h.cfg }

// Sockets reports currently attached live subscriptions.
func (h *LiveHub) Sockets() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// CatchupReads reports cursor catch-up reads served (monotonic).
func (h *LiveHub) CatchupReads() uint64 { return h.catchups.Load() }

// RecordCatchup counts one cursor catch-up read.
func (h *LiveHub) RecordCatchup() { h.catchups.Add(1) }

// Subscribe attaches a live subscription on the GoFlow exchange with
// its own bounded mailbox and send budget. The caller must Release it
// on every exit path.
func (h *LiveHub) Subscribe(patterns []string) (*mq.LiveSub, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrLiveClosed
	}
	if len(h.subs) >= h.cfg.MaxSockets {
		h.mu.Unlock()
		return nil, ErrLiveLimit
	}
	sub, err := h.broker.SubscribeLive(GoFlowExchange, patterns, mq.LiveSubOptions{
		Buffer: h.cfg.Buffer,
		Budget: guard.NewSendBudget(h.cfg.SendBudget, h.cfg.Now),
	})
	if err != nil {
		h.mu.Unlock()
		return nil, err
	}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	return sub, nil
}

// Release detaches and closes a subscription (idempotent).
func (h *LiveHub) Release(sub *mq.LiveSub) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
	sub.Close()
}

// Close ends every attached subscription and refuses new ones; part
// of server drain. Idempotent.
func (h *LiveHub) Close() {
	h.mu.Lock()
	subs := make([]*mq.LiveSub, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[*mq.LiveSub]struct{})
	h.closed = true
	h.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// livePatterns builds the broker topic patterns for a live request.
// Explicit pattern parameters win; otherwise one pattern is assembled
// from the app/datatype/zone parameters over the canonical key shape
// "<app>.<client>.<datatype>.<zone>" (empty parts wildcard).
func livePatterns(patterns []string, app, datatype, zone string) ([]string, error) {
	if len(patterns) > 0 {
		for _, p := range patterns {
			if p == "" {
				return nil, errors.New("goflow: empty live pattern")
			}
		}
		return patterns, nil
	}
	part := func(s string) string {
		if s == "" {
			return "*"
		}
		return s
	}
	if zone == "" {
		// No zone pin: match any tail, including the "ZZ" unlocalized
		// marker.
		return []string{part(app) + ".*." + part(datatype) + ".#"}, nil
	}
	return []string{part(app) + ".*." + part(datatype) + "." + zone}, nil
}

// LiveEvent is the JSON shape pushed over WebSocket and SSE frames.
type LiveEvent struct {
	App         string          `json:"app"`
	Client      string          `json:"client,omitempty"`
	Datatype    string          `json:"datatype"`
	Zone        string          `json:"zone,omitempty"`
	RoutingKey  string          `json:"routingKey"`
	PublishedAt time.Time       `json:"publishedAt,omitempty"`
	Body        json.RawMessage `json:"body,omitempty"`
}

// liveEventFromMessage decodes a broker message into the push shape.
// The routing key carries "<app>.<client>.<datatype>.<zone>"; bodies
// that are not valid JSON are re-encoded as a JSON string so the
// frame stays parseable.
func liveEventFromMessage(m *mq.Message) LiveEvent {
	ev := LiveEvent{RoutingKey: m.RoutingKey, PublishedAt: m.PublishedAt}
	parts := strings.SplitN(m.RoutingKey, ".", 4)
	if len(parts) > 0 {
		ev.App = parts[0]
	}
	if len(parts) > 1 {
		ev.Client = parts[1]
	}
	if len(parts) > 2 {
		ev.Datatype = parts[2]
	}
	if len(parts) > 3 {
		ev.Zone = parts[3]
	}
	if len(m.Body) > 0 {
		if json.Valid(m.Body) {
			ev.Body = json.RawMessage(m.Body)
		} else if quoted, err := json.Marshal(string(m.Body)); err == nil {
			ev.Body = quoted
		}
	}
	return ev
}

// Cursor tokens. A cursor is the _id of the last document the client
// consumed, wrapped in a versioned, URL-safe opaque token — clients
// must treat it as a blob. Anchoring on the _id (not an offset or an
// LSN) is what makes the token survive restarts, checkpoint restores
// and batch inserts: the document's identity is stable however it got
// stored, and the docstore can reconstruct the position even when the
// anchor itself was deleted (see docstore.FindAfterContext).
const cursorPrefix = "v1:"

// EncodeCursor wraps a document id into an opaque resume token.
func EncodeCursor(lastID string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + lastID))
}

// DecodeCursor unwraps a resume token into the anchor document id.
func DecodeCursor(token string) (string, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadCursor, err)
	}
	s := string(raw)
	if !strings.HasPrefix(s, cursorPrefix) || len(s) == len(cursorPrefix) {
		return "", ErrBadCursor
	}
	return s[len(cursorPrefix):], nil
}

// LatestEntry is one zone's most recent observation summary.
type LatestEntry struct {
	Zone     string    `json:"zone"`
	SPL      float64   `json:"spl"`
	SensedAt time.Time `json:"sensedAt"`
}

// LatestCache holds the most recent sound level per zone, fed by the
// series ingest observer — the "what is it like right now" map tile
// lookup, answered from memory without touching the docstore or the
// rollups. Bounded by the zone grid, so it never grows past a few
// thousand entries.
type LatestCache struct {
	mu sync.RWMutex
	m  map[string]LatestEntry
}

// NewLatestCache builds an empty cache.
func NewLatestCache() *LatestCache {
	return &LatestCache{m: make(map[string]LatestEntry)}
}

// Observe folds a batch of series points into the cache, keeping the
// newest point per zone. Points with no zone are skipped. The
// signature matches series.DB.SetPointObserver.
func (c *LatestCache) Observe(pts []series.Point) {
	c.mu.Lock()
	for _, p := range pts {
		if p.Zone == "" {
			continue
		}
		if cur, ok := c.m[p.Zone]; ok && cur.SensedAt.UnixMilli() > p.TS {
			continue
		}
		c.m[p.Zone] = LatestEntry{
			Zone:     p.Zone,
			SPL:      p.Value,
			SensedAt: time.UnixMilli(p.TS).UTC(),
		}
	}
	c.mu.Unlock()
}

// Snapshot returns the cache contents sorted by zone id.
func (c *LatestCache) Snapshot() []LatestEntry {
	c.mu.RLock()
	out := make([]LatestEntry, 0, len(c.m))
	for _, e := range c.m {
		out = append(out, e)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Zone < out[j].Zone })
	return out
}

// Zone returns one zone's entry.
func (c *LatestCache) Zone(zone string) (LatestEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.m[zone]
	return e, ok
}
