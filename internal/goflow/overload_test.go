package goflow

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/guard"
	"github.com/urbancivics/goflow/internal/mq"
)

// Chaos-style overload suite: a 10x sustained burst against the
// guarded API must degrade gracefully — analytics shed first, sensed
// observations never refused, ingest latency bounded by the
// concurrency caps rather than an unbounded queue — and recovery
// after the burst must be clean: shedder pressure clears, the query
// breaker re-closes, no goroutines leak.

// stableGoroutines samples the goroutine count until it stops
// shrinking (stdlib-only stand-in for goleak, mirroring the mq
// package's leak tests).
func stableGoroutines(t *testing.T) int {
	t.Helper()
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur >= prev {
			return cur
		}
		prev = cur
	}
	return prev
}

func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*p + p) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

func TestOverloadGracefulDegradation(t *testing.T) {
	before := stableGoroutines(t)

	clk := newAdmClock()
	broker := mq.NewBroker()
	server, err := NewServer(ServerConfig{
		Broker: broker,
		Store:  docstore.NewStore(),
		Admission: AdmissionConfig{
			RatePerDevice:   -1, // fairness is tested elsewhere; this suite isolates shedding
			ShedTarget:      10 * time.Millisecond,
			Concurrency:     map[guard.Class]int{guard.ClassIngest: 16, guard.ClassQuery: 8, guard.ClassAnalytics: 4},
			BreakerFailures: 3,
			BreakerOpenFor:  time.Second,
			Seed:            42,
			Now:             clk.Now,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Synthetic guarded backend: handler latency follows a seeded
	// schedule standing in for a store at 10x load — between 1x and
	// 2.5x the shed target, so pressure reaches the analytics and
	// query ranks but never the ingest rank.
	rng := rand.New(rand.NewSource(42))
	delays := make([]time.Duration, 512)
	for i := range delays {
		delays[i] = 12*time.Millisecond + time.Duration(rng.Int63n(int64(10*time.Millisecond)))
	}
	var delayIdx atomic.Int64
	backendDelay := func() time.Duration {
		return delays[int(delayIdx.Add(1))%len(delays)]
	}
	var queryFailing atomic.Bool
	var queryHandled atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", server.Guard.Guard(guard.ClassIngest, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(backendDelay())
		w.WriteHeader(http.StatusCreated)
	}))
	mux.HandleFunc("GET /query", server.Guard.Guard(guard.ClassQuery, func(w http.ResponseWriter, r *http.Request) {
		queryHandled.Add(1)
		time.Sleep(backendDelay())
		if queryFailing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	mux.HandleFunc("GET /analytics", server.Guard.Guard(guard.ClassAnalytics, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(backendDelay())
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(mux)

	httpClient := &http.Client{Timeout: 10 * time.Second}
	do := func(method, path string) int {
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Error(err)
			return 0
		}
		resp, err := httpClient.Do(req)
		if err != nil {
			t.Error(err)
			return 0
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}

	// ---- Sustained 10x burst: 30 concurrent clients, 10 per class.
	const workersPerClass = 10
	const requestsPerWorker = 15
	var (
		mu              sync.Mutex
		ingestLat       []time.Duration
		ingestShed      int
		ingestServed    int
		queryShed       int
		analyticsShed   int
		analyticsServed int
	)
	var wg sync.WaitGroup
	for w := 0; w < workersPerClass; w++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < requestsPerWorker; i++ {
				start := time.Now()
				code := do(http.MethodPost, "/ingest")
				elapsed := time.Since(start)
				mu.Lock()
				ingestLat = append(ingestLat, elapsed)
				switch code {
				case http.StatusCreated:
					ingestServed++
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					ingestShed++
				default:
					t.Errorf("ingest status %d", code)
				}
				mu.Unlock()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < requestsPerWorker; i++ {
				if code := do(http.MethodGet, "/query"); code == http.StatusServiceUnavailable {
					mu.Lock()
					queryShed++
					mu.Unlock()
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < requestsPerWorker; i++ {
				code := do(http.MethodGet, "/analytics")
				mu.Lock()
				if code == http.StatusServiceUnavailable {
					analyticsShed++
				} else if code == http.StatusOK {
					analyticsServed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Graceful degradation: analytics shed under pressure, sensed
	// observations never.
	if ingestShed != 0 {
		t.Fatalf("ingest sheds under overload = %d, want 0 (analytics must go first)", ingestShed)
	}
	if analyticsShed == 0 {
		t.Fatalf("no analytics sheds under 10x overload (served=%d) — shedder never engaged", analyticsServed)
	}
	if ingestServed != workersPerClass*requestsPerWorker {
		t.Fatalf("ingest served %d/%d", ingestServed, workersPerClass*requestsPerWorker)
	}
	// Bounded ingest latency: per-class concurrency (16 slots for 10
	// workers) means no queueing; p99 is backend latency plus
	// scheduling noise, far below an unbounded-queue pileup.
	if p99 := percentile(ingestLat, 99); p99 > 500*time.Millisecond {
		t.Fatalf("ingest p99 = %v under overload, want bounded (<500ms)", p99)
	}
	t.Logf("overload: ingest p99=%v sheds: ingest=%d query=%d analytics=%d (analytics served %d)",
		percentile(ingestLat, 99), ingestShed, queryShed, analyticsShed, analyticsServed)

	// ---- Trip the query breaker with consecutive backend failures.
	// First age out the burst's latency window (fake clock) so queries
	// reach the breaker instead of being shed upstream of it.
	clk.Advance(11 * time.Second)
	queryFailing.Store(true)
	fails := 0
	for i := 0; i < 20 && server.Guard.Breaker().State() != guard.BreakerOpen; i++ {
		if code := do(http.MethodGet, "/query"); code == http.StatusInternalServerError {
			fails++
		}
	}
	if st := server.Guard.Breaker().State(); st != guard.BreakerOpen {
		t.Fatalf("breaker after %d backend failures = %v, want open", fails, st)
	}
	handledBefore := queryHandled.Load()
	if code := do(http.MethodGet, "/query"); code != http.StatusServiceUnavailable {
		t.Fatalf("query with open breaker = %d, want 503", code)
	}
	if queryHandled.Load() != handledBefore {
		t.Fatal("open breaker let a query reach the backend")
	}

	// ---- Recovery: the breaker cooldown (OpenFor + jitter ceiling)
	// passes on the fake clock — deterministic, no wall-clock sleeps.
	queryFailing.Store(false)
	clk.Advance(2 * time.Second)
	if code := do(http.MethodGet, "/analytics"); code != http.StatusOK {
		t.Fatalf("analytics after recovery = %d, want 200", code)
	}
	if code := do(http.MethodGet, "/query"); code != http.StatusOK {
		t.Fatalf("query probe after cooldown = %d, want 200", code)
	}
	if st := server.Guard.Breaker().State(); st != guard.BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", st)
	}
	if p99 := server.Guard.Shedder().P99(); p99 != 0 {
		t.Fatalf("shedder p99 after recovery window = %v, want 0 (window empty)", p99)
	}

	// ---- Clean teardown: no goroutine growth.
	httpClient.CloseIdleConnections()
	ts.Close()
	server.Shutdown()
	broker.Close()
	after := stableGoroutines(t)
	if after > before+2 {
		t.Fatalf("goroutines grew %d -> %d after overload + shutdown", before, after)
	}
}
