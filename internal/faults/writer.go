package faults

import "io"

// Writer is a fault-injecting io.Writer for persistence paths: it
// passes bytes through until a byte budget is exhausted, then fails —
// the torn write of a crash or a full disk. A budget of 0 fails the
// very first write.
type Writer struct {
	w         io.Writer
	remaining int
}

// NewWriter wraps w with a byte budget. Writes beyond the budget are
// truncated at the boundary (the prefix still reaches w, as a real
// torn write would) and return ErrInjected.
func NewWriter(w io.Writer, budget int) *Writer {
	return &Writer{w: w, remaining: budget}
}

// Write implements io.Writer with the torn-write semantics.
func (fw *Writer) Write(b []byte) (int, error) {
	if fw.remaining <= 0 {
		return 0, ErrInjected
	}
	if len(b) <= fw.remaining {
		n, err := fw.w.Write(b)
		fw.remaining -= n
		return n, err
	}
	n, err := fw.w.Write(b[:fw.remaining])
	fw.remaining = 0
	if err != nil {
		return n, err
	}
	return n, ErrInjected
}
