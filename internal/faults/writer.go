package faults

import (
	"io"
	"math/rand"
)

// Writer is a fault-injecting io.Writer for persistence paths: it
// passes bytes through until a byte budget is exhausted, then fails —
// the torn write of a crash or a full disk. A budget of 0 fails the
// very first write. Once torn, every later write fails too, like the
// dead disk behind a crashed process.
type Writer struct {
	w         io.Writer
	remaining int
}

// NewWriter wraps w with a byte budget. Writes beyond the budget are
// truncated at the boundary (the prefix still reaches w, as a real
// torn write would) and return ErrInjected.
func NewWriter(w io.Writer, budget int) *Writer {
	return &Writer{w: w, remaining: budget}
}

// NewSeededWriter wraps w with a torn-write budget drawn uniformly
// from [min, max) by a seeded source — crash-point injection where the
// byte offset the "power loss" lands on is a pure function of the
// seed, so a WAL kill/replay failure reproduces from its seed alone.
func NewSeededWriter(w io.Writer, seed int64, min, max int) *Writer {
	if max <= min {
		max = min + 1
	}
	rng := rand.New(rand.NewSource(seed))
	return NewWriter(w, min+rng.Intn(max-min))
}

// Remaining reports the unspent byte budget (0 once torn).
func (fw *Writer) Remaining() int { return fw.remaining }

// Write implements io.Writer with the torn-write semantics.
func (fw *Writer) Write(b []byte) (int, error) {
	if fw.remaining <= 0 {
		return 0, ErrInjected
	}
	if len(b) <= fw.remaining {
		n, err := fw.w.Write(b)
		fw.remaining -= n
		return n, err
	}
	n, err := fw.w.Write(b[:fw.remaining])
	fw.remaining = 0
	if err != nil {
		return n, err
	}
	return n, ErrInjected
}
