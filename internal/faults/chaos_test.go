package faults_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/urbancivics/goflow/internal/client"
	"github.com/urbancivics/goflow/internal/faults"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/sensing"
)

// Chaos suite: a mobile client publishes observation batches through a
// fault-injected link while a clean backend consumer drains the queue.
// Whatever the nemesis does — resets, drops, delays, partitions — every
// observation must arrive exactly once: the reconnect/replay machinery
// supplies the at-least-once half and the broker's idempotency-token
// dedup supplies the at-most-once half.
//
// Every schedule is reproducible: re-run a failing case with the seed
// from its subtest name / log line.

const (
	chaosObservations = 60
	chaosBatch        = 4
)

func TestChaosExactlyOnceDelivery(t *testing.T) {
	scenarios := []struct {
		name string
		plan faults.Plan
		// minReconnects asserts the schedule really forced outages.
		minReconnects uint64
		// wantDedup asserts the broker answered retries from the
		// idempotency window (lost-response schedules only).
		wantDedup bool
	}{
		{"reset-every-6-frames", faults.Plan{ResetEvery: 6}, 3, false},
		{"drop-5pct", faults.Plan{DropProb: 0.05}, 0, false},
		{"delay-50ms-25pct", faults.Plan{DelayProb: 0.25, Delay: 50 * time.Millisecond}, 0, false},
		{"partition-after-6-frames", faults.Plan{PartitionAfterWrites: 6}, 3, false},
		{"lost-responses-after-8-frames", faults.Plan{BlockReadsAfterWrites: 8}, 3, true},
	}
	for _, sc := range scenarios {
		for seed := int64(1); seed <= 5; seed++ {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed=%d", sc.name, seed), func(t *testing.T) {
				runChaos(t, seed, sc.plan, sc.minReconnects, sc.wantDedup)
			})
		}
	}
}

// retryTopo retries a topology declaration across injected outages
// (declares fail fast with typed errors instead of retrying like
// publishes do, so the application — here, the test — decides).
func retryTopo(t *testing.T, c *mq.Conn, op string, f func() error) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := f()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %v", op, err)
		}
		_ = c.WaitConnected(time.Second)
	}
}

func runChaos(t *testing.T, seed int64, plan faults.Plan, minReconnects uint64, wantDedup bool) {
	t.Logf("chaos schedule seed=%d plan=%+v — reproduce by fixing this seed", seed, plan)
	broker := mq.NewBroker()
	srv, err := mq.NewServer(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	defer srv.Close()

	inj := faults.New(seed, plan)
	pub, err := mq.DialResilient(srv.Addr(), mq.ReconnectConfig{
		Dialer:         inj.Dialer(nil),
		MaxAttempts:    -1, // the nemesis outlasts any fixed budget
		BackoffBase:    time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		Seed:           seed,
		PublishRetries: 64,
		RPCTimeout:     150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pub.Close() }()

	retryTopo(t, pub, "declare exchange", func() error { return pub.DeclareExchange("E.chaos", mq.Fanout) })
	retryTopo(t, pub, "declare queue", func() error { return pub.DeclareQueue("Q.chaos", mq.QueueOptions{}) })
	retryTopo(t, pub, "bind queue", func() error { return pub.BindQueue("Q.chaos", "E.chaos", "") })

	// The backend consumer uses a clean link: the faults under test are
	// on the mobile uplink.
	sub, err := mq.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sub.Close() }()
	rc, err := sub.Consume("Q.chaos", 0)
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan int, 4*chaosObservations)
	go func() {
		for d := range rc.C() {
			o, err := sensing.DecodeObservation(d.Body)
			if err != nil {
				t.Errorf("decode delivery: %v", err)
				return
			}
			if err := rc.Ack(d.Tag); err != nil {
				return // consumer conn torn down at test end
			}
			got <- int(o.SPL)
		}
	}()

	// Publish through the real mobile pipeline: MQTransport batches on
	// the resilient conn, each observation carrying its own token.
	transport := client.NewMQTransport(pub, "E.chaos", "SC", "mob1")
	base := time.Unix(1_600_000_000, 0).UTC()
	for i := 0; i < chaosObservations; i += chaosBatch {
		batch := make([]*sensing.Observation, 0, chaosBatch)
		for j := i; j < i+chaosBatch; j++ {
			batch = append(batch, &sensing.Observation{
				UserID:      "mob1",
				DeviceModel: "LGE NEXUS 5",
				Mode:        sensing.Manual,
				SPL:         float64(j), // the observation's identity
				SensedAt:    base.Add(time.Duration(j) * time.Second),
			})
		}
		if err := transport.Send(batch, base); err != nil {
			t.Fatalf("send batch %d: %v", i/chaosBatch, err)
		}
	}

	seen := make(map[int]bool)
	timeout := time.After(30 * time.Second)
	for len(seen) < chaosObservations {
		select {
		case v := <-got:
			if seen[v] {
				t.Fatalf("observation %d delivered twice (duplicate despite idempotency tokens)", v)
			}
			seen[v] = true
		case <-timeout:
			t.Fatalf("lost observations: %d/%d delivered after 30s (stats %+v, faults %+v)",
				len(seen), chaosObservations, pub.Stats(), inj.Counts())
		}
	}
	for v := 0; v < chaosObservations; v++ {
		if !seen[v] {
			t.Fatalf("observation %d never delivered", v)
		}
	}
	// Let any straggler redelivery surface, then check for duplicates.
	time.Sleep(100 * time.Millisecond)
	select {
	case v := <-got:
		t.Fatalf("late duplicate delivery of observation %d", v)
	default:
	}

	st := pub.Stats()
	cts := inj.Counts()
	t.Logf("delivered %d exactly-once: reconnects=%d replayed=%d publishRetries=%d dedupHits=%d faults=%+v",
		chaosObservations, st.Reconnects, st.ReplayedTopology, st.PublishRetries,
		broker.Stats().PublishDedupHits, cts)
	if st.Reconnects < minReconnects {
		t.Errorf("schedule forced %d reconnects, want >= %d", st.Reconnects, minReconnects)
	}
	if minReconnects > 0 && st.ReplayedTopology == 0 {
		t.Error("reconnects happened but no topology was replayed")
	}
	if wantDedup && broker.Stats().PublishDedupHits == 0 {
		t.Error("lost-response schedule produced no idempotency dedup hits")
	}
}
