// Package faults is a deterministic fault-injection layer for chaos
// testing the middleware's network and persistence paths. It wraps
// net.Conn / net.Listener with seeded fault schedules (drop, reset,
// delay, partial write, byte corruption, one-way partition) and
// io.Writer with torn-write budgets, so every failure mode the Paris
// deployment exhibited — flaky radios, mid-upload disconnects, dead
// links that black-hole traffic — can be replayed as a regression
// test that is reproducible from its seed.
//
// Determinism: the injector derives one *rand.Rand per wrapped
// connection from (seed, connection ordinal). Writes on a connection
// are serialized by the caller (the mq client holds a write mutex),
// so the per-connection fault schedule is a pure function of the seed
// and the write sequence.
package faults

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks a failure produced by the injector rather than
// the real network or disk.
var ErrInjected = errors.New("faults: injected failure")

// ErrReset marks an injected connection reset.
var ErrReset = errors.New("faults: injected connection reset")

// Plan is a fault schedule. All probabilities are per write operation
// and drawn from the injector's seeded source; zero values disable
// the corresponding fault, so the zero Plan is a transparent wrapper.
type Plan struct {
	// DropProb silently swallows a write (the bytes never reach the
	// peer, but the caller sees success) — a lossy link.
	DropProb float64
	// DelayProb stalls a write by Delay before sending it.
	DelayProb float64
	Delay     time.Duration
	// CorruptProb flips one byte of the written payload.
	CorruptProb float64
	// PartialProb writes only a prefix of the payload, then kills the
	// connection — a mid-frame teardown.
	PartialProb float64
	// ResetEvery kills the connection on every Nth write (0 = never).
	ResetEvery int
	// ResetProb kills the connection with this per-write probability.
	ResetProb float64
	// PartitionAfterWrites turns the connection into a black hole
	// after N writes: subsequent writes are swallowed and reads hang
	// until the connection is closed — the one-way partition where
	// requests arrive but responses never come back (0 = never).
	PartitionAfterWrites int
	// BlockReads hangs every read until the connection is closed — a
	// one-way partition from the first byte.
	BlockReads bool
	// BlockReadsAfterWrites black-holes the read direction once the
	// connection has performed N writes: requests keep reaching the
	// peer but responses are swallowed — the lost-response partition
	// that exercises idempotent publish retry (0 = never).
	BlockReadsAfterWrites int
	// Sleep implements delays; nil uses time.Sleep. Tests running
	// under a virtual clock can substitute their own.
	Sleep func(time.Duration)
}

// Counts aggregates the faults an injector has fired, for test
// assertions ("this run really did reset the link 3 times").
type Counts struct {
	Conns      uint64
	Drops      uint64
	Delays     uint64
	Corruptions uint64
	Partials   uint64
	Resets     uint64
	Partitions uint64
}

// Injector wraps connections with a shared Plan and a seeded fault
// schedule.
type Injector struct {
	plan Plan
	seed int64

	ordinal atomic.Uint64

	drops       atomic.Uint64
	delays      atomic.Uint64
	corruptions atomic.Uint64
	partials    atomic.Uint64
	resets      atomic.Uint64
	partitions  atomic.Uint64
}

// New builds an injector whose fault schedule is fully determined by
// seed and plan.
func New(seed int64, plan Plan) *Injector {
	return &Injector{plan: plan, seed: seed}
}

// Counts snapshots the fired-fault counters.
func (in *Injector) Counts() Counts {
	return Counts{
		Conns:       in.ordinal.Load(),
		Drops:       in.drops.Load(),
		Delays:      in.delays.Load(),
		Corruptions: in.corruptions.Load(),
		Partials:    in.partials.Load(),
		Resets:      in.resets.Load(),
		Partitions:  in.partitions.Load(),
	}
}

// sleep applies the plan's sleeper.
func (in *Injector) sleep(d time.Duration) {
	if in.plan.Sleep != nil {
		in.plan.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Conn wraps nc with this injector's fault schedule. Each wrapped
// connection draws from its own rand stream seeded by (seed, ordinal),
// so connection i always sees the same fault sequence for the same
// write sequence.
func (in *Injector) Conn(nc net.Conn) *Conn {
	ord := in.ordinal.Add(1)
	return &Conn{
		Conn:   nc,
		in:     in,
		rng:    rand.New(rand.NewSource(in.seed*1_000_003 + int64(ord))),
		closed: make(chan struct{}),
	}
}

// Listener wraps l so every accepted connection is fault-injected.
func (in *Injector) Listener(l net.Listener) net.Listener {
	return &listener{Listener: l, in: in}
}

// Dialer wraps a dial function so every dialed connection is
// fault-injected. base nil uses a plain TCP dial.
func (in *Injector) Dialer(base func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if base == nil {
		base = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	return func(addr string) (net.Conn, error) {
		nc, err := base(addr)
		if err != nil {
			return nil, err
		}
		return in.Conn(nc), nil
	}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(nc), nil
}

// Conn is a fault-injected net.Conn.
type Conn struct {
	net.Conn
	in *Injector

	mu          sync.Mutex
	rng         *rand.Rand
	writes      int
	partitioned bool
	readDark    bool

	closeOnce sync.Once
	closed    chan struct{}
}

// faultDecision is one write's drawn schedule, decided under the lock
// so the rand stream ordering is stable.
type faultDecision struct {
	partitioned bool
	reset       bool
	delay       bool
	drop        bool
	partial     int // bytes to write before tearing down; -1 = no partial
	corrupt     int // byte index to flip; -1 = no corruption
}

func (c *Conn) decide(n int) faultDecision {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := &c.in.plan
	c.writes++
	if p.PartitionAfterWrites > 0 && !c.partitioned && c.writes > p.PartitionAfterWrites {
		c.partitioned = true
		c.in.partitions.Add(1)
	}
	d := faultDecision{partitioned: c.partitioned, partial: -1, corrupt: -1}
	if d.partitioned {
		return d
	}
	// Draw in a fixed order so the schedule depends only on the seed
	// and the write sequence.
	if p.ResetEvery > 0 && c.writes%p.ResetEvery == 0 {
		d.reset = true
	}
	if p.ResetProb > 0 && c.rng.Float64() < p.ResetProb {
		d.reset = true
	}
	if p.DelayProb > 0 && c.rng.Float64() < p.DelayProb {
		d.delay = true
	}
	if p.DropProb > 0 && c.rng.Float64() < p.DropProb {
		d.drop = true
	}
	if p.PartialProb > 0 && c.rng.Float64() < p.PartialProb && n > 1 {
		d.partial = 1 + c.rng.Intn(n-1)
	}
	if p.CorruptProb > 0 && c.rng.Float64() < p.CorruptProb && n > 0 {
		d.corrupt = c.rng.Intn(n)
	}
	return d
}

// Write applies the drawn fault, if any, then forwards to the wrapped
// connection.
func (c *Conn) Write(b []byte) (int, error) {
	d := c.decide(len(b))
	switch {
	case d.partitioned:
		// Black hole: accept the bytes, deliver nothing.
		return len(b), nil
	case d.reset:
		c.in.resets.Add(1)
		_ = c.Close()
		return 0, ErrReset
	}
	if d.delay {
		c.in.delays.Add(1)
		c.in.sleep(c.in.plan.Delay)
	}
	switch {
	case d.drop:
		c.in.drops.Add(1)
		return len(b), nil
	case d.partial >= 0:
		c.in.partials.Add(1)
		n, err := c.Conn.Write(b[:d.partial])
		_ = c.Close()
		if err != nil {
			return n, err
		}
		return n, ErrReset
	case d.corrupt >= 0:
		c.in.corruptions.Add(1)
		mut := make([]byte, len(b))
		copy(mut, b)
		mut[d.corrupt] ^= 0xA5
		return c.Conn.Write(mut)
	}
	return c.Conn.Write(b)
}

// Read forwards to the wrapped connection unless the plan partitions
// the read direction, in which case it hangs until Close.
func (c *Conn) Read(b []byte) (int, error) {
	if c.in.plan.BlockReads {
		<-c.closed
		return 0, ErrReset
	}
	n, err := c.Conn.Read(b)
	c.mu.Lock()
	part := c.partitioned
	if !part && c.in.plan.BlockReadsAfterWrites > 0 && c.writes >= c.in.plan.BlockReadsAfterWrites {
		part = true
		if !c.readDark {
			c.readDark = true
			c.in.partitions.Add(1)
		}
	}
	c.mu.Unlock()
	if part {
		// The write side went dark mid-session (or the read direction
		// did); swallow whatever was in flight and hang like a dead
		// link would.
		<-c.closed
		return 0, ErrReset
	}
	return n, err
}

// Close unblocks partitioned reads and closes the wrapped connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}
