package faults

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// sinkConn is a fake net.Conn that records writes and blocks reads
// until closed, so fault decisions can be observed without a real
// network.
type sinkConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	writes [][]byte

	closeOnce sync.Once
	closed    chan struct{}
}

func newSink() *sinkConn { return &sinkConn{closed: make(chan struct{})} }

func (s *sinkConn) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(b))
	copy(cp, b)
	s.writes = append(s.writes, cp)
	return s.buf.Write(b)
}

func (s *sinkConn) Read(b []byte) (int, error) {
	<-s.closed
	return 0, errors.New("sink closed")
}

func (s *sinkConn) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	return nil
}

func (s *sinkConn) delivered() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.writes))
	copy(out, s.writes)
	return out
}

func (s *sinkConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (s *sinkConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (s *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

func TestZeroPlanIsTransparent(t *testing.T) {
	in := New(42, Plan{})
	sink := newSink()
	c := in.Conn(sink)
	for i := 0; i < 10; i++ {
		msg := []byte(fmt.Sprintf("frame-%d", i))
		n, err := c.Write(msg)
		if err != nil || n != len(msg) {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	got := sink.delivered()
	if len(got) != 10 {
		t.Fatalf("delivered %d writes, want 10", len(got))
	}
	for i, w := range got {
		if string(w) != fmt.Sprintf("frame-%d", i) {
			t.Fatalf("write %d altered: %q", i, w)
		}
	}
	cts := in.Counts()
	if cts.Drops+cts.Delays+cts.Corruptions+cts.Partials+cts.Resets+cts.Partitions != 0 {
		t.Fatalf("zero plan fired faults: %+v", cts)
	}
}

// trace replays a fixed write sequence against a fresh injector and
// records, per write, which fault was observed — the determinism
// fingerprint of a (seed, plan) pair.
func trace(seed int64, plan Plan, writes int) []string {
	plan.Sleep = func(time.Duration) {}
	in := New(seed, plan)
	sink := newSink()
	c := in.Conn(sink)
	var out []string
	for i := 0; i < writes; i++ {
		msg := []byte(fmt.Sprintf("payload-%04d", i))
		before := len(sink.delivered())
		n, err := c.Write(msg)
		after := sink.delivered()
		switch {
		case errors.Is(err, ErrReset) && len(after) == before:
			out = append(out, "reset")
		case errors.Is(err, ErrReset):
			out = append(out, fmt.Sprintf("partial-%d", len(after[len(after)-1])))
		case err != nil:
			out = append(out, "err")
		case n == len(msg) && len(after) == before:
			out = append(out, "swallowed") // drop or partition
		case !bytes.Equal(after[len(after)-1], msg):
			out = append(out, "corrupt")
		default:
			out = append(out, "ok")
		}
	}
	return out
}

func TestScheduleIsDeterministicPerSeed(t *testing.T) {
	plan := Plan{
		DropProb:    0.2,
		DelayProb:   0.2,
		Delay:       time.Millisecond,
		CorruptProb: 0.15,
		PartialProb: 0.1,
		ResetProb:   0.05,
	}
	for seed := int64(1); seed <= 5; seed++ {
		a := trace(seed, plan, 60)
		b := trace(seed, plan, 60)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("seed %d: schedule not reproducible:\n%v\n%v", seed, a, b)
		}
	}
	// Different seeds must diverge (else the seed is not wired in).
	if fmt.Sprint(trace(1, plan, 60)) == fmt.Sprint(trace(2, plan, 60)) {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestResetEveryNthWrite(t *testing.T) {
	in := New(1, Plan{ResetEvery: 3})
	sink := newSink()
	c := in.Conn(sink)
	for i := 1; i <= 2; i++ {
		if _, err := c.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := c.Write([]byte("boom")); !errors.Is(err, ErrReset) {
		t.Fatalf("3rd write: got %v, want ErrReset", err)
	}
	if got := in.Counts().Resets; got != 1 {
		t.Fatalf("resets = %d, want 1", got)
	}
	// The reset closed the conn: partitioned-style reads unblock.
	select {
	case <-sink.closed:
	default:
		t.Fatal("reset did not close the underlying conn")
	}
}

func TestPartialWriteTearsDown(t *testing.T) {
	in := New(7, Plan{PartialProb: 1})
	sink := newSink()
	c := in.Conn(sink)
	msg := []byte("abcdefghij")
	n, err := c.Write(msg)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("partial write n = %d, want strict prefix of %d", n, len(msg))
	}
	got := sink.delivered()
	if len(got) != 1 || !bytes.Equal(got[0], msg[:n]) {
		t.Fatalf("peer saw %q, want prefix %q", got, msg[:n])
	}
	if in.Counts().Partials != 1 {
		t.Fatalf("partials = %d, want 1", in.Counts().Partials)
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	in := New(9, Plan{CorruptProb: 1})
	sink := newSink()
	c := in.Conn(sink)
	msg := []byte("crowd-sensing-frame")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := sink.delivered()[0]
	diff := 0
	for i := range msg {
		if got[i] != msg[i] {
			diff++
			if got[i] != msg[i]^0xA5 {
				t.Fatalf("byte %d flipped to %x, want %x", i, got[i], msg[i]^0xA5)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	// The caller's buffer must not be mutated.
	if string(msg) != "crowd-sensing-frame" {
		t.Fatal("corruption mutated the caller's buffer")
	}
}

func TestDelayUsesPlanSleeper(t *testing.T) {
	var slept []time.Duration
	in := New(3, Plan{
		DelayProb: 1,
		Delay:     50 * time.Millisecond,
		Sleep:     func(d time.Duration) { slept = append(slept, d) },
	})
	c := in.Conn(newSink())
	for i := 0; i < 4; i++ {
		if _, err := c.Write([]byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 4 {
		t.Fatalf("sleeper called %d times, want 4", len(slept))
	}
	for _, d := range slept {
		if d != 50*time.Millisecond {
			t.Fatalf("slept %v, want 50ms", d)
		}
	}
	if in.Counts().Delays != 4 {
		t.Fatalf("delays = %d, want 4", in.Counts().Delays)
	}
}

func TestPartitionAfterWritesBlackHoles(t *testing.T) {
	in := New(5, Plan{PartitionAfterWrites: 2})
	sink := newSink()
	c := in.Conn(sink)
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("before")); err != nil {
			t.Fatal(err)
		}
	}
	// Past the threshold: writes report success but deliver nothing.
	for i := 0; i < 3; i++ {
		n, err := c.Write([]byte("lost"))
		if err != nil || n != 4 {
			t.Fatalf("partitioned write: n=%d err=%v", n, err)
		}
	}
	if got := len(sink.delivered()); got != 2 {
		t.Fatalf("peer saw %d writes, want 2", got)
	}
	if in.Counts().Partitions != 1 {
		t.Fatalf("partitions = %d, want 1", in.Counts().Partitions)
	}
	// Reads hang until Close.
	readDone := make(chan struct{})
	go func() {
		buf := make([]byte, 1)
		_, _ = c.Read(buf)
		close(readDone)
	}()
	select {
	case <-readDone:
		t.Fatal("partitioned read returned before Close")
	case <-time.After(20 * time.Millisecond):
	}
	_ = c.Close()
	select {
	case <-readDone:
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock partitioned read")
	}
}

func TestBlockReadsHangsUntilClose(t *testing.T) {
	in := New(1, Plan{BlockReads: true})
	c := in.Conn(newSink())
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("blocked read returned early")
	case <-time.After(20 * time.Millisecond):
	}
	_ = c.Close()
	if err := <-done; !errors.Is(err, ErrReset) {
		t.Fatalf("unblocked read err = %v, want ErrReset", err)
	}
}

func TestDialerAndListenerWrap(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	in := New(11, Plan{})
	wrapped := in.Listener(ln)
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := wrapped.Accept()
		if err == nil {
			accepted <- nc
		}
	}()
	dial := in.Dialer(nil)
	client, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	if _, ok := client.(*Conn); !ok {
		t.Fatalf("dialer returned %T, want *faults.Conn", client)
	}
	select {
	case nc := <-accepted:
		if _, ok := nc.(*Conn); !ok {
			t.Fatalf("listener accepted %T, want *faults.Conn", nc)
		}
		_ = nc.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	if got := in.Counts().Conns; got != 2 {
		t.Fatalf("wrapped conns = %d, want 2", got)
	}
}

func TestWriterTornWriteBudget(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, 0)
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("budget 0: err = %v, want ErrInjected", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("budget 0 leaked %d bytes", sink.Len())
	}

	sink.Reset()
	w = NewWriter(&sink, 5)
	n, err := w.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) || n != 5 {
		t.Fatalf("over-budget write: n=%d err=%v, want 5, ErrInjected", n, err)
	}
	if sink.String() != "abcde" {
		t.Fatalf("torn write delivered %q, want %q", sink.String(), "abcde")
	}
	if _, err := w.Write([]byte("more")); !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted budget: err = %v, want ErrInjected", err)
	}

	sink.Reset()
	w = NewWriter(&sink, 10)
	if n, err := w.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("67890")); n != 5 || err != nil {
		t.Fatalf("exact budget: n=%d err=%v", n, err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget write: err = %v, want ErrInjected", err)
	}
	if sink.String() != "1234567890" {
		t.Fatalf("delivered %q", sink.String())
	}
}

func TestSeededWriterDeterministicBudget(t *testing.T) {
	const min, max = 10, 500
	for seed := int64(0); seed < 20; seed++ {
		var a, b bytes.Buffer
		w1 := NewSeededWriter(&a, seed, min, max)
		w2 := NewSeededWriter(&b, seed, min, max)
		if w1.Remaining() != w2.Remaining() {
			t.Fatalf("seed %d: budgets %d vs %d, want identical", seed, w1.Remaining(), w2.Remaining())
		}
		if w1.Remaining() < min || w1.Remaining() >= max {
			t.Fatalf("seed %d: budget %d outside [%d, %d)", seed, w1.Remaining(), min, max)
		}
	}
	// Degenerate range: the writer still gets a usable budget instead
	// of panicking in rand.Intn.
	var sink bytes.Buffer
	w := NewSeededWriter(&sink, 1, 7, 7)
	if w.Remaining() != 7 {
		t.Fatalf("empty range budget = %d, want min (7)", w.Remaining())
	}
}

func TestSeededWriterTearsAtBudget(t *testing.T) {
	var sink bytes.Buffer
	w := NewSeededWriter(&sink, 42, 3, 4) // budget exactly 3
	n, err := w.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write = %d, %v; want 3, ErrInjected", n, err)
	}
	if sink.String() != "abc" {
		t.Fatalf("delivered %q, want %q", sink.String(), "abc")
	}
	if w.Remaining() != 0 {
		t.Fatalf("Remaining = %d after tear, want 0", w.Remaining())
	}
}
