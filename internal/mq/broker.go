package mq

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ExchangeType selects the routing discipline of an exchange.
type ExchangeType int

// Exchange types, mirroring AMQP.
const (
	// Direct routes to bindings whose pattern equals the routing key.
	Direct ExchangeType = iota + 1
	// Fanout routes to every binding, ignoring the routing key.
	Fanout
	// Topic routes using dot-separated patterns with * and # wildcards.
	Topic
)

// String implements fmt.Stringer.
func (t ExchangeType) String() string {
	switch t {
	case Direct:
		return "direct"
	case Fanout:
		return "fanout"
	case Topic:
		return "topic"
	default:
		return fmt.Sprintf("ExchangeType(%d)", int(t))
	}
}

// ParseExchangeType converts a wire-protocol string to an ExchangeType.
func ParseExchangeType(s string) (ExchangeType, error) {
	switch s {
	case "direct":
		return Direct, nil
	case "fanout":
		return Fanout, nil
	case "topic":
		return Topic, nil
	default:
		return 0, fmt.Errorf("mq: unknown exchange type %q", s)
	}
}

// Broker-level errors callers may match with errors.Is.
var (
	ErrExchangeNotFound = errors.New("mq: exchange not found")
	ErrQueueNotFound    = errors.New("mq: queue not found")
	ErrExchangeExists   = errors.New("mq: exchange already exists with a different type")
	ErrBrokerClosed     = errors.New("mq: broker closed")
)

// binding routes messages from an exchange to a queue or another
// exchange when the pattern matches.
type binding struct {
	pattern string
	// exactly one of toQueue / toExchange is set
	toQueue    string
	toExchange string
}

// exchange is a named routing node. bindings is the source of truth;
// idx is the compiled routing index (trie.go) kept in sync under the
// broker write lock.
type exchange struct {
	name     string
	typ      ExchangeType
	bindings []binding
	idx      exIndex
}

// BrokerStats aggregates broker counters.
type BrokerStats struct {
	Exchanges  int    `json:"exchanges"`
	Queues     int    `json:"queues"`
	Published  uint64 `json:"published"`
	Routed     uint64 `json:"routed"`
	Unroutable uint64 `json:"unroutable"`
	// Route-cache counters: hits resolve lock-free; misses walk the
	// compiled indexes under the read lock; invalidations count
	// topology generations (declare/bind/delete), not evictions.
	RouteCacheHits          uint64 `json:"routeCacheHits"`
	RouteCacheMisses        uint64 `json:"routeCacheMisses"`
	RouteCacheInvalidations uint64 `json:"routeCacheInvalidations"`
	// PublishDedupHits counts publishes answered from the idempotency
	// token window instead of being enqueued again (client retries of
	// a publish whose response was lost).
	PublishDedupHits uint64 `json:"publishDedupHits"`
}

// routeEntry is one memoized resolution: the full queue set an
// (exchange, routingKey) pair reaches, with exchange-to-exchange
// chains flattened. gen pins the topology generation the resolution
// saw; a mismatch with the broker's current generation makes the
// entry dead weight that the next miss overwrites.
type routeEntry struct {
	gen    uint64
	queues []*queue
	// exchanges are the names of every exchange the key's resolution
	// traversed (the published one plus exchange-to-exchange hops).
	// The live fan-out (live.go) taps messages on each of them, so a
	// subscriber of GFX sees messages published to a client exchange
	// that forwards into GFX.
	exchanges []string
}

// routeCache memoizes route resolutions. The two-level shape (outer
// sync.Map by exchange, inner sync.Map by routing key) keeps the hit
// path to two lock-free string-keyed loads and zero allocations.
type routeCache struct {
	exchanges sync.Map // exchange name -> *sync.Map of routingKey -> *routeEntry
	entries   atomic.Int64
}

// routeCacheMaxEntries caps memoized routes. When the population
// exceeds the cap the whole cache is swapped for an empty one (epoch
// eviction): entries are tiny and topologically scoped, so a full
// reset costs one pointer store and repopulates on the next misses —
// no LRU bookkeeping on the hot path.
const routeCacheMaxEntries = 1 << 17

// routeScratch holds the slow path's reusable resolution state: the
// split key, the BFS frontier/visited sets and the deduplicated
// target set. Pooled so a cache miss does not rebuild maps per
// publish (the pre-cache implementation allocated all of this on
// every single publish).
type routeScratch struct {
	keyWords []string
	frontier []*exchange
	visited  map[*exchange]struct{}
	seen     map[*queue]struct{}
	targets  []*queue
	exNames  []string
}

var routeScratchPool = sync.Pool{
	New: func() any {
		return &routeScratch{
			visited: make(map[*exchange]struct{}, 8),
			seen:    make(map[*queue]struct{}, 8),
		}
	},
}

// reset clears the scratch for reuse; maps are cleared (cheap
// runtime mapclear), slices retain capacity.
func (sc *routeScratch) reset() {
	sc.keyWords = sc.keyWords[:0]
	sc.frontier = sc.frontier[:0]
	sc.targets = sc.targets[:0]
	sc.exNames = sc.exNames[:0]
	clear(sc.visited)
	clear(sc.seen)
}

// Broker is an in-process AMQP-style message broker. It is safe for
// concurrent use. Serve it over TCP with NewServer.
//
// The counters are atomics so the publish hot path never takes the
// broker write lock and stats sampling (Stats, QueueStatsFast) never
// stalls publishers.
//
// Publishing is memoized: the first publish of an (exchange, key)
// pair resolves the destination queue set by walking the compiled
// routing indexes under the read lock and caches it; steady-state
// publishes hit the cache with two lock-free map loads and zero
// allocations. Any topology change (declare, bind, unbind, delete)
// bumps the generation counter, invalidating every cached route at
// once.
type Broker struct {
	mu        sync.RWMutex
	exchanges map[string]*exchange
	queues    map[string]*queue
	closed    bool

	published  atomic.Uint64
	routed     atomic.Uint64
	unroutable atomic.Uint64

	// topoGen is the topology generation; bumped under mu.Lock by
	// every mutation. Cached routes are valid only for the generation
	// they were resolved under.
	topoGen atomic.Uint64
	routes  atomic.Pointer[routeCache]

	cacheHits          atomic.Uint64
	cacheMisses        atomic.Uint64
	cacheInvalidations atomic.Uint64

	// dedup memoizes publish idempotency tokens (dedup.go).
	dedup     *publishDedup
	dedupHits atomic.Uint64

	// Flow-control state (flow.go): subscribers receiving watermark
	// pause/resume transitions and the currently-paused queue set.
	flowMu       sync.Mutex
	flowSubs     map[*FlowSub]struct{}
	pausedQueues map[string]struct{}

	// Live-subscription fan-out state (live.go): per-exchange pattern
	// tries consulted by the publish path under liveMu's read lock.
	// liveCount gates the hot path — zero subscribers costs one atomic
	// load per publish.
	liveMu        sync.RWMutex
	liveTries     map[string]*liveNode
	liveSubs      map[*LiveSub]struct{}
	liveCount     atomic.Int64
	liveDelivered atomic.Uint64
	liveDropped   atomic.Uint64
	liveShed      atomic.Uint64
	liveHooks     atomic.Pointer[LiveHooks]

	hooks atomic.Pointer[Hooks]
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	b := &Broker{
		exchanges: make(map[string]*exchange),
		queues:    make(map[string]*queue),
		dedup:     newPublishDedup(),
	}
	b.routes.Store(&routeCache{})
	return b
}

// invalidateRoutes starts a new topology generation, instantly
// orphaning every memoized route. Callers hold b.mu.
func (b *Broker) invalidateRoutes() {
	b.topoGen.Add(1)
	b.routes.Store(&routeCache{})
	b.cacheInvalidations.Add(1)
	b.currentHooks().routeCacheInvalidated()
}

// DeclareExchange creates an exchange; redeclaring with the same type
// is idempotent, a different type is an error.
func (b *Broker) DeclareExchange(name string, typ ExchangeType) error {
	if name == "" {
		return errors.New("mq: exchange name must not be empty")
	}
	if typ < Direct || typ > Topic {
		return fmt.Errorf("mq: invalid exchange type %d", int(typ))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBrokerClosed
	}
	if ex, ok := b.exchanges[name]; ok {
		if ex.typ != typ {
			return fmt.Errorf("declare %q as %v: %w", name, typ, ErrExchangeExists)
		}
		return nil
	}
	ex := &exchange{name: name, typ: typ}
	ex.reindex()
	b.exchanges[name] = ex
	b.invalidateRoutes()
	return nil
}

// DeleteExchange removes an exchange and every binding pointing at it.
func (b *Broker) DeleteExchange(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.exchanges[name]; !ok {
		return fmt.Errorf("delete exchange %q: %w", name, ErrExchangeNotFound)
	}
	delete(b.exchanges, name)
	for _, ex := range b.exchanges {
		kept := ex.bindings[:0]
		for _, bd := range ex.bindings {
			if bd.toExchange != name {
				kept = append(kept, bd)
			}
		}
		if len(kept) != len(ex.bindings) {
			ex.bindings = kept
			ex.reindex()
		}
	}
	b.invalidateRoutes()
	return nil
}

// DeclareQueue creates a queue; redeclaration is idempotent (options
// of the first declaration win).
func (b *Broker) DeclareQueue(name string, opts QueueOptions) error {
	if name == "" {
		return errors.New("mq: queue name must not be empty")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBrokerClosed
	}
	if _, ok := b.queues[name]; ok {
		return nil
	}
	b.queues[name] = newQueue(name, opts, &b.hooks, b.notifyFlow)
	b.invalidateRoutes()
	return nil
}

// DeleteQueue removes a queue, closing its consumers, and removes
// bindings pointing at it.
func (b *Broker) DeleteQueue(name string) error {
	b.mu.Lock()
	q, ok := b.queues[name]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("delete queue %q: %w", name, ErrQueueNotFound)
	}
	delete(b.queues, name)
	for _, ex := range b.exchanges {
		kept := ex.bindings[:0]
		for _, bd := range ex.bindings {
			if bd.toQueue != name {
				kept = append(kept, bd)
			}
		}
		if len(kept) != len(ex.bindings) {
			ex.bindings = kept
			ex.reindex()
		}
	}
	b.invalidateRoutes()
	b.mu.Unlock()
	q.close()
	return nil
}

// BindQueue routes messages from exchange to queue when the pattern
// matches. Duplicate bindings are collapsed.
func (b *Broker) BindQueue(queueName, exchangeName, pattern string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	ex, ok := b.exchanges[exchangeName]
	if !ok {
		return fmt.Errorf("bind to %q: %w", exchangeName, ErrExchangeNotFound)
	}
	if _, ok := b.queues[queueName]; !ok {
		return fmt.Errorf("bind queue %q: %w", queueName, ErrQueueNotFound)
	}
	for _, bd := range ex.bindings {
		if bd.toQueue == queueName && bd.pattern == pattern {
			return nil
		}
	}
	ex.addBinding(binding{pattern: pattern, toQueue: queueName})
	b.invalidateRoutes()
	return nil
}

// BindExchange routes messages from src to dst when the pattern
// matches (exchange-to-exchange binding, used by GoFlow to forward a
// client exchange into the application exchange, Figure 3).
func (b *Broker) BindExchange(dstExchange, srcExchange, pattern string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	src, ok := b.exchanges[srcExchange]
	if !ok {
		return fmt.Errorf("bind from %q: %w", srcExchange, ErrExchangeNotFound)
	}
	if _, ok := b.exchanges[dstExchange]; !ok {
		return fmt.Errorf("bind to exchange %q: %w", dstExchange, ErrExchangeNotFound)
	}
	for _, bd := range src.bindings {
		if bd.toExchange == dstExchange && bd.pattern == pattern {
			return nil
		}
	}
	src.addBinding(binding{pattern: pattern, toExchange: dstExchange})
	b.invalidateRoutes()
	return nil
}

// UnbindQueue removes a queue binding.
func (b *Broker) UnbindQueue(queueName, exchangeName, pattern string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	ex, ok := b.exchanges[exchangeName]
	if !ok {
		return fmt.Errorf("unbind from %q: %w", exchangeName, ErrExchangeNotFound)
	}
	kept := ex.bindings[:0]
	for _, bd := range ex.bindings {
		if !(bd.toQueue == queueName && bd.pattern == pattern) {
			kept = append(kept, bd)
		}
	}
	if len(kept) != len(ex.bindings) {
		ex.bindings = kept
		ex.reindex()
		b.invalidateRoutes()
	}
	return nil
}

// lookupRoute returns the memoized queue and traversed-exchange sets
// for (exchange, key) when one exists for the given generation.
// Lock-free and allocation-free.
func (b *Broker) lookupRoute(exchangeName, key string, gen uint64) ([]*queue, []string, bool) {
	rc := b.routes.Load()
	innerAny, ok := rc.exchanges.Load(exchangeName)
	if !ok {
		return nil, nil, false
	}
	entryAny, ok := innerAny.(*sync.Map).Load(key)
	if !ok {
		return nil, nil, false
	}
	e := entryAny.(*routeEntry)
	if e.gen != gen {
		return nil, nil, false
	}
	return e.queues, e.exchanges, true
}

// resolveRoute computes the queue set for (exchange, key) by walking
// the compiled routing indexes breadth-first across
// exchange-to-exchange bindings, then memoizes it under gen. gen must
// have been read before the resolution (a topology change in between
// leaves the entry stale-by-construction, never wrong).
func (b *Broker) resolveRoute(exchangeName, key string, gen uint64) ([]*queue, []string, error) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, nil, ErrBrokerClosed
	}
	ex, ok := b.exchanges[exchangeName]
	if !ok {
		b.mu.RUnlock()
		return nil, nil, fmt.Errorf("publish to %q: %w", exchangeName, ErrExchangeNotFound)
	}
	sc := routeScratchPool.Get().(*routeScratch)
	sc.keyWords = splitWordsInto(sc.keyWords[:0], key)
	sc.frontier = append(sc.frontier, ex)
	sc.visited[ex] = struct{}{}
	sc.exNames = append(sc.exNames, ex.name)
	for len(sc.frontier) > 0 {
		cur := sc.frontier[0]
		sc.frontier = sc.frontier[1:]
		cur.match(key, sc.keyWords, func(d dest) {
			if d.toQueue != "" {
				if q, ok := b.queues[d.toQueue]; ok {
					if _, dup := sc.seen[q]; !dup {
						sc.seen[q] = struct{}{}
						sc.targets = append(sc.targets, q)
					}
				}
				return
			}
			if next, ok := b.exchanges[d.toExchange]; ok {
				if _, dup := sc.visited[next]; !dup {
					sc.visited[next] = struct{}{}
					sc.frontier = append(sc.frontier, next)
					sc.exNames = append(sc.exNames, next.name)
				}
			}
		})
	}
	b.mu.RUnlock()

	queues := make([]*queue, len(sc.targets))
	copy(queues, sc.targets)
	exchanges := make([]string, len(sc.exNames))
	copy(exchanges, sc.exNames)
	sc.reset()
	routeScratchPool.Put(sc)

	// Memoize (including unroutable keys: an empty set is the common
	// steady state for keys nobody subscribed to, and re-resolving
	// them per publish is exactly the O(bindings) scan being avoided).
	rc := b.routes.Load()
	innerAny, ok := rc.exchanges.Load(exchangeName)
	if !ok {
		innerAny, _ = rc.exchanges.LoadOrStore(exchangeName, &sync.Map{})
	}
	entry := &routeEntry{gen: gen, queues: queues, exchanges: exchanges}
	if _, loaded := innerAny.(*sync.Map).Swap(key, entry); !loaded {
		if rc.entries.Add(1) > routeCacheMaxEntries {
			// Epoch eviction: swap in a fresh cache rather than track
			// recency per entry. Same generation — entries were valid,
			// just too many.
			b.routes.CompareAndSwap(rc, &routeCache{})
		}
	}
	return queues, exchanges, nil
}

// route returns the destination queue set and the traversed exchange
// names for one publish, preferring the memoized route and falling
// back to resolution.
func (b *Broker) route(exchangeName, key string) ([]*queue, []string, error) {
	gen := b.topoGen.Load()
	if queues, exchanges, ok := b.lookupRoute(exchangeName, key, gen); ok {
		b.cacheHits.Add(1)
		b.currentHooks().routeCacheHit()
		return queues, exchanges, nil
	}
	queues, exchanges, err := b.resolveRoute(exchangeName, key, gen)
	if err != nil {
		return nil, nil, err
	}
	b.cacheMisses.Add(1)
	b.currentHooks().routeCacheMiss()
	return queues, exchanges, nil
}

// Publish routes a message. It returns the number of queues the
// message was delivered to (0 when unroutable, which is not an error).
func (b *Broker) Publish(exchangeName, routingKey string, headers map[string]string, body []byte) (int, error) {
	return b.PublishAt(exchangeName, routingKey, headers, body, time.Now())
}

// PublishAt is Publish with an explicit publish timestamp, used by the
// simulation to stamp virtual time.
//
// The message body and headers are shared copy-on-write across every
// destination queue: the broker never mutates them after publish, and
// neither may consumers.
func (b *Broker) PublishAt(exchangeName, routingKey string, headers map[string]string, body []byte, at time.Time) (int, error) {
	queues, exchanges, err := b.route(exchangeName, routingKey)
	if err != nil {
		return 0, err
	}
	msg := Message{
		ID:          nextMessageID(),
		Exchange:    exchangeName,
		RoutingKey:  routingKey,
		Headers:     headers,
		Body:        body,
		PublishedAt: at,
	}
	delivered := 0
	for _, q := range queues {
		if err := q.publish(&msg); err == nil {
			delivered++
		}
	}
	b.fanoutLive(exchanges, &msg)
	b.published.Add(1)
	if delivered == 0 {
		b.unroutable.Add(1)
	} else {
		b.routed.Add(uint64(delivered))
	}
	b.currentHooks().published(exchangeName, delivered)
	return delivered, nil
}

// PublishAtToken is PublishAt with a publish idempotency token: when
// token is non-empty and inside the broker's dedup window, the
// message is not enqueued again and the original delivery count is
// returned. Resilient clients use this to retry publishes whose
// responses were lost without double-delivering.
func (b *Broker) PublishAtToken(exchangeName, routingKey string, headers map[string]string, body []byte, at time.Time, token string) (int, error) {
	if token != "" {
		if n, ok := b.dedup.lookup(token); ok {
			b.dedupHits.Add(1)
			return n, nil
		}
	}
	n, err := b.PublishAt(exchangeName, routingKey, headers, body, at)
	if err == nil && token != "" {
		b.dedup.record(token, n)
	}
	return n, err
}

// PublishItem is one message of a PublishBatch call.
type PublishItem struct {
	// RoutingKey used for binding matches.
	RoutingKey string `json:"routingKey"`
	// Headers carry application metadata; shared copy-on-write.
	Headers map[string]string `json:"headers,omitempty"`
	// Body is the payload; shared copy-on-write.
	Body []byte `json:"body,omitempty"`
	// At is the publish timestamp; zero means the batch receive time.
	At time.Time `json:"publishedAt,omitempty"`
	// Token is an optional idempotency token; items whose token sits
	// in the broker's dedup window are skipped on a batch replay.
	Token string `json:"token,omitempty"`
}

// PublishBatch routes a batch of messages to one exchange in a single
// broker crossing: route resolution is memoized per distinct key and
// each destination queue takes its lock once for all the messages it
// receives, instead of once per message. Per-message semantics are
// preserved — every item is routed by its own key, counted and
// reported to hooks individually, and MaxLen/TTL drops behave as if
// the items had been published back to back.
//
// It returns the total number of deliveries (sum over items of the
// queues each reached).
func (b *Broker) PublishBatch(exchangeName string, items []PublishItem) (int, error) {
	if len(items) == 0 {
		return 0, nil
	}
	now := time.Time{}
	type qbatch struct {
		q     *queue
		msgs  []Message
		items []int // item index per message, for settling failures
	}
	batches := make(map[*queue]*qbatch)
	order := make([]*qbatch, 0, 4)
	routedTo := make([]int, len(items))
	deduped := make([]bool, len(items))
	for i, it := range items {
		if it.Token != "" {
			if n, ok := b.dedup.lookup(it.Token); ok {
				// A replayed item the broker already settled: answer
				// from the memo, do not enqueue or count it again.
				b.dedupHits.Add(1)
				routedTo[i] = n
				deduped[i] = true
				continue
			}
		}
		queues, exchanges, err := b.route(exchangeName, it.RoutingKey)
		if err != nil {
			return 0, err
		}
		at := it.At
		if at.IsZero() {
			if now.IsZero() {
				now = time.Now()
			}
			at = now
		}
		msg := Message{
			ID:          nextMessageID(),
			Exchange:    exchangeName,
			RoutingKey:  it.RoutingKey,
			Headers:     it.Headers,
			Body:        it.Body,
			PublishedAt: at,
		}
		// Live fan-out happens per item, in batch order, and is skipped
		// for deduped replays above — the original publish already
		// reached the live subscribers once.
		b.fanoutLive(exchanges, &msg)
		routedTo[i] = len(queues)
		for _, q := range queues {
			qb, ok := batches[q]
			if !ok {
				qb = &qbatch{q: q}
				batches[q] = qb
				order = append(order, qb)
			}
			qb.msgs = append(qb.msgs, msg)
			qb.items = append(qb.items, i)
		}
	}
	for _, qb := range order {
		if err := qb.q.publishBatch(qb.msgs); err != nil {
			// Queue deleted concurrently: none of its messages landed.
			for _, idx := range qb.items {
				routedTo[idx]--
			}
		}
	}
	delivered := 0
	h := b.currentHooks()
	for i, n := range routedTo {
		delivered += n
		if deduped[i] {
			// Counted (and hook-reported) when the original publish
			// settled; a replay only contributes to the return value.
			continue
		}
		b.published.Add(1)
		if n == 0 {
			b.unroutable.Add(1)
		} else {
			b.routed.Add(uint64(n))
		}
		h.published(exchangeName, n)
		if items[i].Token != "" {
			b.dedup.record(items[i].Token, n)
		}
	}
	return delivered, nil
}

// Consume subscribes to a queue. Prefetch bounds unacked deliveries in
// flight to this consumer (0 = unlimited, capped by channel size).
func (b *Broker) Consume(queueName string, prefetch int) (*Consumer, error) {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("consume %q: %w", queueName, ErrQueueNotFound)
	}
	chanSize := prefetch
	if chanSize <= 0 {
		chanSize = 128
	}
	c := &Consumer{
		queue:       q,
		ch:          make(chan Delivery, chanSize),
		prefetch:    prefetch,
		outstanding: make(map[uint64]struct{}),
	}
	if err := c.queue.addConsumer(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Get synchronously fetches one message from a queue (basic.get). The
// second result is false when the queue is empty. The delivery must be
// acked or nacked via AckGet/NackGet.
func (b *Broker) Get(queueName string) (Delivery, bool, error) {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return Delivery{}, false, fmt.Errorf("get %q: %w", queueName, ErrQueueNotFound)
	}
	return q.get()
}

// AckGet acknowledges a delivery obtained via Get.
func (b *Broker) AckGet(queueName string, tag uint64) error {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("ack %q: %w", queueName, ErrQueueNotFound)
	}
	return q.ack(tag)
}

// NackGet rejects a delivery obtained via Get.
func (b *Broker) NackGet(queueName string, tag uint64, requeue bool) error {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("nack %q: %w", queueName, ErrQueueNotFound)
	}
	return q.nack(tag, requeue)
}

// QueueStats snapshots one queue's counters.
func (b *Broker) QueueStats(queueName string) (QueueStats, error) {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return QueueStats{}, fmt.Errorf("stats %q: %w", queueName, ErrQueueNotFound)
	}
	return q.stats(), nil
}

// QueueStatsFast snapshots one queue's counters without touching the
// queue mutex: every field is read from atomics, so high-frequency
// metric sampling cannot stall publishers or consumers. Unlike
// QueueStats it does not run the lazy TTL sweep, so Ready may briefly
// include messages whose TTL has elapsed but that no operation has
// touched yet.
func (b *Broker) QueueStatsFast(queueName string) (QueueStats, error) {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return QueueStats{}, fmt.Errorf("stats %q: %w", queueName, ErrQueueNotFound)
	}
	return q.statsFast(), nil
}

// Queues returns the sorted queue names.
func (b *Broker) Queues() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.queues))
	for n := range b.queues {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Exchanges returns the sorted exchange names.
func (b *Broker) Exchanges() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.exchanges))
	for n := range b.exchanges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats snapshots broker counters. The counters are read lock-free;
// only the exchange/queue cardinalities briefly take the shared read
// lock, which publishers also use — sampling never blocks a publish.
func (b *Broker) Stats() BrokerStats {
	b.mu.RLock()
	exchanges, queues := len(b.exchanges), len(b.queues)
	b.mu.RUnlock()
	return BrokerStats{
		Exchanges:               exchanges,
		Queues:                  queues,
		Published:               b.published.Load(),
		Routed:                  b.routed.Load(),
		Unroutable:              b.unroutable.Load(),
		RouteCacheHits:          b.cacheHits.Load(),
		RouteCacheMisses:        b.cacheMisses.Load(),
		RouteCacheInvalidations: b.cacheInvalidations.Load(),
		PublishDedupHits:        b.dedupHits.Load(),
	}
}

// Close shuts the broker: all queues are closed and further operations
// fail with ErrBrokerClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	queues := make([]*queue, 0, len(b.queues))
	for _, q := range b.queues {
		queues = append(queues, q)
	}
	b.queues = make(map[string]*queue)
	b.exchanges = make(map[string]*exchange)
	b.invalidateRoutes()
	b.mu.Unlock()
	b.closeLiveSubs()
	for _, q := range queues {
		q.close()
	}
}
