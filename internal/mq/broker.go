package mq

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ExchangeType selects the routing discipline of an exchange.
type ExchangeType int

// Exchange types, mirroring AMQP.
const (
	// Direct routes to bindings whose pattern equals the routing key.
	Direct ExchangeType = iota + 1
	// Fanout routes to every binding, ignoring the routing key.
	Fanout
	// Topic routes using dot-separated patterns with * and # wildcards.
	Topic
)

// String implements fmt.Stringer.
func (t ExchangeType) String() string {
	switch t {
	case Direct:
		return "direct"
	case Fanout:
		return "fanout"
	case Topic:
		return "topic"
	default:
		return fmt.Sprintf("ExchangeType(%d)", int(t))
	}
}

// ParseExchangeType converts a wire-protocol string to an ExchangeType.
func ParseExchangeType(s string) (ExchangeType, error) {
	switch s {
	case "direct":
		return Direct, nil
	case "fanout":
		return Fanout, nil
	case "topic":
		return Topic, nil
	default:
		return 0, fmt.Errorf("mq: unknown exchange type %q", s)
	}
}

// Broker-level errors callers may match with errors.Is.
var (
	ErrExchangeNotFound = errors.New("mq: exchange not found")
	ErrQueueNotFound    = errors.New("mq: queue not found")
	ErrExchangeExists   = errors.New("mq: exchange already exists with a different type")
	ErrBrokerClosed     = errors.New("mq: broker closed")
)

// binding routes messages from an exchange to a queue or another
// exchange when the pattern matches.
type binding struct {
	pattern string
	// exactly one of toQueue / toExchange is set
	toQueue    string
	toExchange string
}

// exchange is a named routing node.
type exchange struct {
	name     string
	typ      ExchangeType
	bindings []binding
}

// matches reports whether the binding pattern accepts the key under
// the exchange's routing discipline.
func (e *exchange) matches(b binding, key string) bool {
	switch e.typ {
	case Fanout:
		return true
	case Direct:
		return b.pattern == key
	case Topic:
		return TopicMatch(b.pattern, key)
	default:
		return false
	}
}

// BrokerStats aggregates broker counters.
type BrokerStats struct {
	Exchanges  int    `json:"exchanges"`
	Queues     int    `json:"queues"`
	Published  uint64 `json:"published"`
	Routed     uint64 `json:"routed"`
	Unroutable uint64 `json:"unroutable"`
}

// Broker is an in-process AMQP-style message broker. It is safe for
// concurrent use. Serve it over TCP with NewServer.
//
// The counters are atomics so the publish hot path never takes the
// broker write lock and stats sampling (Stats, QueueStatsFast) never
// stalls publishers.
type Broker struct {
	mu        sync.RWMutex
	exchanges map[string]*exchange
	queues    map[string]*queue
	closed    bool

	published  atomic.Uint64
	routed     atomic.Uint64
	unroutable atomic.Uint64

	hooks atomic.Pointer[Hooks]
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		exchanges: make(map[string]*exchange),
		queues:    make(map[string]*queue),
	}
}

// DeclareExchange creates an exchange; redeclaring with the same type
// is idempotent, a different type is an error.
func (b *Broker) DeclareExchange(name string, typ ExchangeType) error {
	if name == "" {
		return errors.New("mq: exchange name must not be empty")
	}
	if typ < Direct || typ > Topic {
		return fmt.Errorf("mq: invalid exchange type %d", int(typ))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBrokerClosed
	}
	if ex, ok := b.exchanges[name]; ok {
		if ex.typ != typ {
			return fmt.Errorf("declare %q as %v: %w", name, typ, ErrExchangeExists)
		}
		return nil
	}
	b.exchanges[name] = &exchange{name: name, typ: typ}
	return nil
}

// DeleteExchange removes an exchange and every binding pointing at it.
func (b *Broker) DeleteExchange(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.exchanges[name]; !ok {
		return fmt.Errorf("delete exchange %q: %w", name, ErrExchangeNotFound)
	}
	delete(b.exchanges, name)
	for _, ex := range b.exchanges {
		kept := ex.bindings[:0]
		for _, bd := range ex.bindings {
			if bd.toExchange != name {
				kept = append(kept, bd)
			}
		}
		ex.bindings = kept
	}
	return nil
}

// DeclareQueue creates a queue; redeclaration is idempotent (options
// of the first declaration win).
func (b *Broker) DeclareQueue(name string, opts QueueOptions) error {
	if name == "" {
		return errors.New("mq: queue name must not be empty")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBrokerClosed
	}
	if _, ok := b.queues[name]; ok {
		return nil
	}
	b.queues[name] = newQueue(name, opts, &b.hooks)
	return nil
}

// DeleteQueue removes a queue, closing its consumers, and removes
// bindings pointing at it.
func (b *Broker) DeleteQueue(name string) error {
	b.mu.Lock()
	q, ok := b.queues[name]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("delete queue %q: %w", name, ErrQueueNotFound)
	}
	delete(b.queues, name)
	for _, ex := range b.exchanges {
		kept := ex.bindings[:0]
		for _, bd := range ex.bindings {
			if bd.toQueue != name {
				kept = append(kept, bd)
			}
		}
		ex.bindings = kept
	}
	b.mu.Unlock()
	q.close()
	return nil
}

// BindQueue routes messages from exchange to queue when the pattern
// matches. Duplicate bindings are collapsed.
func (b *Broker) BindQueue(queueName, exchangeName, pattern string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	ex, ok := b.exchanges[exchangeName]
	if !ok {
		return fmt.Errorf("bind to %q: %w", exchangeName, ErrExchangeNotFound)
	}
	if _, ok := b.queues[queueName]; !ok {
		return fmt.Errorf("bind queue %q: %w", queueName, ErrQueueNotFound)
	}
	for _, bd := range ex.bindings {
		if bd.toQueue == queueName && bd.pattern == pattern {
			return nil
		}
	}
	ex.bindings = append(ex.bindings, binding{pattern: pattern, toQueue: queueName})
	return nil
}

// BindExchange routes messages from src to dst when the pattern
// matches (exchange-to-exchange binding, used by GoFlow to forward a
// client exchange into the application exchange, Figure 3).
func (b *Broker) BindExchange(dstExchange, srcExchange, pattern string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	src, ok := b.exchanges[srcExchange]
	if !ok {
		return fmt.Errorf("bind from %q: %w", srcExchange, ErrExchangeNotFound)
	}
	if _, ok := b.exchanges[dstExchange]; !ok {
		return fmt.Errorf("bind to exchange %q: %w", dstExchange, ErrExchangeNotFound)
	}
	for _, bd := range src.bindings {
		if bd.toExchange == dstExchange && bd.pattern == pattern {
			return nil
		}
	}
	src.bindings = append(src.bindings, binding{pattern: pattern, toExchange: dstExchange})
	return nil
}

// UnbindQueue removes a queue binding.
func (b *Broker) UnbindQueue(queueName, exchangeName, pattern string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	ex, ok := b.exchanges[exchangeName]
	if !ok {
		return fmt.Errorf("unbind from %q: %w", exchangeName, ErrExchangeNotFound)
	}
	kept := ex.bindings[:0]
	for _, bd := range ex.bindings {
		if !(bd.toQueue == queueName && bd.pattern == pattern) {
			kept = append(kept, bd)
		}
	}
	ex.bindings = kept
	return nil
}

// Publish routes a message. It returns the number of queues the
// message was delivered to (0 when unroutable, which is not an error).
func (b *Broker) Publish(exchangeName, routingKey string, headers map[string]string, body []byte) (int, error) {
	return b.PublishAt(exchangeName, routingKey, headers, body, time.Now())
}

// PublishAt is Publish with an explicit publish timestamp, used by the
// simulation to stamp virtual time.
func (b *Broker) PublishAt(exchangeName, routingKey string, headers map[string]string, body []byte, at time.Time) (int, error) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return 0, ErrBrokerClosed
	}
	ex, ok := b.exchanges[exchangeName]
	if !ok {
		b.mu.RUnlock()
		return 0, fmt.Errorf("publish to %q: %w", exchangeName, ErrExchangeNotFound)
	}
	msg := Message{
		ID:          nextMessageID(),
		Exchange:    exchangeName,
		RoutingKey:  routingKey,
		Headers:     headers,
		Body:        body,
		PublishedAt: at,
	}
	// Resolve the full set of destination queues, following
	// exchange-to-exchange bindings breadth-first with cycle
	// protection.
	targets := make(map[string]*queue)
	visited := map[string]bool{ex.name: true}
	frontier := []*exchange{ex}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, bd := range cur.bindings {
			if !cur.matches(bd, routingKey) {
				continue
			}
			if bd.toQueue != "" {
				if q, ok := b.queues[bd.toQueue]; ok {
					targets[bd.toQueue] = q
				}
				continue
			}
			if visited[bd.toExchange] {
				continue
			}
			visited[bd.toExchange] = true
			if next, ok := b.exchanges[bd.toExchange]; ok {
				frontier = append(frontier, next)
			}
		}
	}
	b.mu.RUnlock()

	delivered := 0
	for _, q := range targets {
		if err := q.publish(msg.clone()); err == nil {
			delivered++
		}
	}

	b.published.Add(1)
	if delivered == 0 {
		b.unroutable.Add(1)
	} else {
		b.routed.Add(uint64(delivered))
	}
	b.currentHooks().published(exchangeName, delivered)
	return delivered, nil
}

// Consume subscribes to a queue. Prefetch bounds unacked deliveries in
// flight to this consumer (0 = unlimited, capped by channel size).
func (b *Broker) Consume(queueName string, prefetch int) (*Consumer, error) {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("consume %q: %w", queueName, ErrQueueNotFound)
	}
	chanSize := prefetch
	if chanSize <= 0 {
		chanSize = 128
	}
	c := &Consumer{
		queue:       q,
		ch:          make(chan Delivery, chanSize),
		prefetch:    prefetch,
		outstanding: make(map[uint64]struct{}),
	}
	if err := c.queue.addConsumer(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Get synchronously fetches one message from a queue (basic.get). The
// second result is false when the queue is empty. The delivery must be
// acked or nacked via AckGet/NackGet.
func (b *Broker) Get(queueName string) (Delivery, bool, error) {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return Delivery{}, false, fmt.Errorf("get %q: %w", queueName, ErrQueueNotFound)
	}
	return q.get()
}

// AckGet acknowledges a delivery obtained via Get.
func (b *Broker) AckGet(queueName string, tag uint64) error {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("ack %q: %w", queueName, ErrQueueNotFound)
	}
	return q.ack(tag)
}

// NackGet rejects a delivery obtained via Get.
func (b *Broker) NackGet(queueName string, tag uint64, requeue bool) error {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("nack %q: %w", queueName, ErrQueueNotFound)
	}
	return q.nack(tag, requeue)
}

// QueueStats snapshots one queue's counters.
func (b *Broker) QueueStats(queueName string) (QueueStats, error) {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return QueueStats{}, fmt.Errorf("stats %q: %w", queueName, ErrQueueNotFound)
	}
	return q.stats(), nil
}

// QueueStatsFast snapshots one queue's counters without touching the
// queue mutex: every field is read from atomics, so high-frequency
// metric sampling cannot stall publishers or consumers. Unlike
// QueueStats it does not run the lazy TTL sweep, so Ready may briefly
// include messages whose TTL has elapsed but that no operation has
// touched yet.
func (b *Broker) QueueStatsFast(queueName string) (QueueStats, error) {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return QueueStats{}, fmt.Errorf("stats %q: %w", queueName, ErrQueueNotFound)
	}
	return q.statsFast(), nil
}

// Queues returns the sorted queue names.
func (b *Broker) Queues() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.queues))
	for n := range b.queues {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Exchanges returns the sorted exchange names.
func (b *Broker) Exchanges() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.exchanges))
	for n := range b.exchanges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats snapshots broker counters. The counters are read lock-free;
// only the exchange/queue cardinalities briefly take the shared read
// lock, which publishers also use — sampling never blocks a publish.
func (b *Broker) Stats() BrokerStats {
	b.mu.RLock()
	exchanges, queues := len(b.exchanges), len(b.queues)
	b.mu.RUnlock()
	return BrokerStats{
		Exchanges:  exchanges,
		Queues:     queues,
		Published:  b.published.Load(),
		Routed:     b.routed.Load(),
		Unroutable: b.unroutable.Load(),
	}
}

// Close shuts the broker: all queues are closed and further operations
// fail with ErrBrokerClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	queues := make([]*queue, 0, len(b.queues))
	for _, q := range b.queues {
		queues = append(queues, q)
	}
	b.queues = make(map[string]*queue)
	b.exchanges = make(map[string]*exchange)
	b.mu.Unlock()
	for _, q := range queues {
		q.close()
	}
}
