package mq

import (
	"bufio"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"time"
)

// Server exposes a Broker over TCP using the wire protocol. One server
// goroutine accepts connections; each connection gets a reader
// goroutine; deliveries for the connection's consumers are written by
// per-consumer pump goroutines serialized through a write mutex.
type Server struct {
	broker *Broker
	ln     net.Listener

	mu    sync.Mutex
	conns map[net.Conn]*connState

	flowSub  *FlowSub
	flowDone chan struct{}

	stop chan struct{}
	done chan struct{}
}

// NewServer starts serving broker on addr ("host:port"; ":0" picks a
// free port). Call Addr for the bound address and Close to stop.
func NewServer(broker *Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		broker:   broker,
		ln:       ln,
		conns:    make(map[net.Conn]*connState),
		flowSub:  broker.SubscribeFlow(),
		flowDone: make(chan struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.flowLoop()
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes live connections, and waits for the
// accept loop to exit.
func (s *Server) Close() {
	select {
	case <-s.stop:
		return
	default:
	}
	close(s.stop)
	_ = s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	<-s.done
	s.broker.UnsubscribeFlow(s.flowSub)
	<-s.flowDone
}

func (s *Server) acceptLoop() {
	defer close(s.done)
	var wg sync.WaitGroup
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				wg.Wait()
				return
			default:
			}
			log.Printf("mq server: accept: %v", err)
			wg.Wait()
			return
		}
		cs := &connState{conn: conn, consumers: make(map[uint64]*Consumer), hooks: s.broker.currentHooks}
		s.mu.Lock()
		s.conns[conn] = cs
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Flow snapshot first: a connection accepted mid-overload
			// must learn which queues are already paused before its
			// first publish.
			for _, q := range s.broker.PausedQueues() {
				if err := cs.send(&frame{Op: opFlow, Queue: q, Paused: true}); err != nil {
					break
				}
			}
			s.handleConn(cs)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// flowLoop broadcasts queue pause/resume transitions to every live
// connection as opFlow frames. Transitions are coalesced per queue, so
// a flapping queue costs at most one frame per state per drain.
func (s *Server) flowLoop() {
	defer close(s.flowDone)
	for {
		select {
		case <-s.stop:
			return
		case <-s.flowSub.C():
			events := s.flowSub.Drain()
			if len(events) == 0 {
				continue
			}
			s.mu.Lock()
			conns := make([]*connState, 0, len(s.conns))
			for _, cs := range s.conns {
				conns = append(conns, cs)
			}
			s.mu.Unlock()
			for _, ev := range events {
				f := &frame{Op: opFlow, Queue: ev.Queue, Paused: ev.Paused}
				for _, cs := range conns {
					// A dead conn fails its own send; the read loop
					// tears it down.
					_ = cs.send(f)
				}
			}
		}
	}
}

// connState tracks one connection's consumers so they can be torn
// down when the connection dies — the "mobile session buffering"
// behaviour: messages stay queued at the broker while the phone is
// disconnected.
type connState struct {
	writeMu   sync.Mutex
	conn      net.Conn
	consumers map[uint64]*Consumer
	mu        sync.Mutex

	// hooks resolves the broker's current hooks for wire accounting.
	hooks func() *Hooks
}

func (cs *connState) send(f *frame) error {
	cs.writeMu.Lock()
	n, err := writeFrame(cs.conn, f)
	cs.writeMu.Unlock()
	if n > 0 {
		cs.hooks().bytesWritten(n)
	}
	return err
}

func (s *Server) handleConn(cs *connState) {
	defer func() { _ = cs.conn.Close() }()
	cs.hooks().connOpened()
	defer cs.hooks().connClosed()
	defer func() {
		cs.mu.Lock()
		consumers := make([]*Consumer, 0, len(cs.consumers))
		for _, c := range cs.consumers {
			consumers = append(consumers, c)
		}
		cs.consumers = make(map[uint64]*Consumer)
		cs.mu.Unlock()
		// Requeue what the dead session still held unacked, so the
		// messages are redelivered when the phone reconnects.
		for _, c := range consumers {
			c.CancelAndRequeue()
		}
	}()

	r := bufio.NewReader(cs.conn)
	var nextConsumerID uint64
	for {
		f, n, err := readFrame(r)
		if n > 0 {
			cs.hooks().bytesRead(n)
		}
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection-level noise (resets, partial frames) is
				// expected with mobile clients; log at most.
				select {
				case <-s.stop:
				default:
					log.Printf("mq server: read: %v", err)
				}
			}
			return
		}
		resp := s.dispatch(cs, f, &nextConsumerID)
		if resp != nil {
			if err := cs.send(resp); err != nil {
				return
			}
		}
	}
}

// dispatch executes one request frame and returns the response frame.
func (s *Server) dispatch(cs *connState, f *frame, nextConsumerID *uint64) *frame {
	ok := func() *frame { return &frame{Op: opOK, Corr: f.Corr} }
	fail := func(err error) *frame { return &frame{Op: opError, Corr: f.Corr, Error: err.Error()} }

	switch f.Op {
	case opDeclareExchange:
		typ, err := ParseExchangeType(f.ExchangeType)
		if err != nil {
			return fail(err)
		}
		if err := s.broker.DeclareExchange(f.Exchange, typ); err != nil {
			return fail(err)
		}
		return ok()
	case opDeleteExchange:
		if err := s.broker.DeleteExchange(f.Exchange); err != nil {
			return fail(err)
		}
		return ok()
	case opDeclareQueue:
		opts := QueueOptions{
			MaxLen:        f.MaxLen,
			TTL:           time.Duration(f.TTLMillis) * time.Millisecond,
			Exclusive:     f.Exclusive,
			HighWatermark: f.HighWatermark,
			LowWatermark:  f.LowWatermark,
		}
		if err := s.broker.DeclareQueue(f.Queue, opts); err != nil {
			return fail(err)
		}
		return ok()
	case opDeleteQueue:
		if err := s.broker.DeleteQueue(f.Queue); err != nil {
			return fail(err)
		}
		return ok()
	case opBindQueue:
		if err := s.broker.BindQueue(f.Queue, f.Exchange, f.Pattern); err != nil {
			return fail(err)
		}
		return ok()
	case opBindExchange:
		if err := s.broker.BindExchange(f.Exchange, f.SrcExchange, f.Pattern); err != nil {
			return fail(err)
		}
		return ok()
	case opUnbindQueue:
		if err := s.broker.UnbindQueue(f.Queue, f.Exchange, f.Pattern); err != nil {
			return fail(err)
		}
		return ok()
	case opPublish:
		at := f.PublishedAt
		if at.IsZero() {
			at = time.Now()
		}
		n, err := s.broker.PublishAtToken(f.Exchange, f.RoutingKey, f.Headers, f.Body, at, f.Token)
		if err != nil {
			return fail(err)
		}
		resp := ok()
		resp.Delivered = n
		return resp
	case opPublishBatch:
		// One frame, many messages: the uploader's flush sends its whole
		// buffered batch in a single round trip instead of one frame per
		// observation. Items missing a timestamp default to the frame's
		// PublishedAt, then to now.
		def := f.PublishedAt
		if def.IsZero() {
			def = time.Now()
		}
		items := f.Items
		for i := range items {
			if items[i].At.IsZero() {
				items[i].At = def
			}
		}
		n, err := s.broker.PublishBatch(f.Exchange, items)
		if err != nil {
			return fail(err)
		}
		resp := ok()
		resp.Delivered = n
		return resp
	case opConsume:
		c, err := s.broker.Consume(f.Queue, f.Prefetch)
		if err != nil {
			return fail(err)
		}
		*nextConsumerID++
		id := *nextConsumerID
		cs.mu.Lock()
		cs.consumers[id] = c
		cs.mu.Unlock()
		go pumpDeliveries(cs, id, c)
		resp := ok()
		resp.ConsumerID = id
		return resp
	case opCancel:
		cs.mu.Lock()
		c, found := cs.consumers[f.ConsumerID]
		delete(cs.consumers, f.ConsumerID)
		cs.mu.Unlock()
		if found {
			c.Cancel()
		}
		return ok()
	case opGet:
		d, found, err := s.broker.Get(f.Queue)
		if err != nil {
			return fail(err)
		}
		resp := ok()
		resp.Found = found
		if found {
			resp.Queue = d.Queue
			resp.Tag = d.Tag
			resp.Exchange = d.Exchange
			resp.RoutingKey = d.RoutingKey
			resp.Headers = d.Headers
			resp.Body = d.Body
			resp.PublishedAt = d.PublishedAt
			resp.MessageID = d.ID
			resp.Redelivered = d.Redelivered
		}
		return resp
	case opAck:
		if f.ConsumerID != 0 {
			cs.mu.Lock()
			c, found := cs.consumers[f.ConsumerID]
			cs.mu.Unlock()
			if !found {
				return fail(errors.New("mq: unknown consumer"))
			}
			if err := c.Ack(f.Tag); err != nil {
				return fail(err)
			}
			return ok()
		}
		if err := s.broker.AckGet(f.Queue, f.Tag); err != nil {
			return fail(err)
		}
		return ok()
	case opNack:
		if f.ConsumerID != 0 {
			cs.mu.Lock()
			c, found := cs.consumers[f.ConsumerID]
			cs.mu.Unlock()
			if !found {
				return fail(errors.New("mq: unknown consumer"))
			}
			if err := c.Nack(f.Tag, f.Requeue); err != nil {
				return fail(err)
			}
			return ok()
		}
		if err := s.broker.NackGet(f.Queue, f.Tag, f.Requeue); err != nil {
			return fail(err)
		}
		return ok()
	case opQueueStats:
		st, err := s.broker.QueueStats(f.Queue)
		if err != nil {
			return fail(err)
		}
		resp := ok()
		resp.Stats = &st
		return resp
	default:
		return fail(errors.New("mq: unknown op " + f.Op))
	}
}

// pumpDeliveries forwards consumer deliveries to the connection until
// the consumer channel closes.
func pumpDeliveries(cs *connState, consumerID uint64, c *Consumer) {
	for d := range c.C() {
		f := &frame{
			Op:          opDeliver,
			ConsumerID:  consumerID,
			Queue:       d.Queue,
			Tag:         d.Tag,
			Exchange:    d.Exchange,
			RoutingKey:  d.RoutingKey,
			Headers:     d.Headers,
			Body:        d.Body,
			PublishedAt: d.PublishedAt,
			MessageID:   d.ID,
			Redelivered: d.Redelivered,
		}
		if err := cs.send(f); err != nil {
			// Connection gone: return this and every other unacked
			// delivery to the queue for redelivery on reconnect.
			c.CancelAndRequeue()
			return
		}
	}
}
