package mq

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

func TestReplFrameRoundTrip(t *testing.T) {
	frames := []*ReplFrame{
		{Op: ReplOpHello, Shard: 3},
		{Op: ReplOpHello, Shard: 3, LeaderLSN: 812},
		{Op: ReplOpFetch, From: 101, AppliedLSN: 100, MaxRecords: 512, MaxBytes: 1 << 20},
		{Op: ReplOpBatch, LeaderLSN: 205, Records: []ReplRecord{
			{LSN: 101, Type: 1, Payload: []byte("alpha")},
			{LSN: 102, Type: 2, Payload: []byte{0x00, 0xff, 0x10}},
		}},
		{Op: ReplOpBatch, LeaderLSN: 205}, // caught up: empty batch
		{Op: ReplOpError, Error: "wal: requested lsn precedes retained log"},
	}
	var buf bytes.Buffer
	var written int
	for _, f := range frames {
		n, err := WriteReplFrame(&buf, f)
		if err != nil {
			t.Fatal(err)
		}
		written += n
	}
	r := bufio.NewReader(&buf)
	var read int
	for i, want := range frames {
		got, n, err := ReadReplFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		read += n
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d round-trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if written != read {
		t.Fatalf("wrote %d bytes but read %d", written, read)
	}
}

// TestReplFrameInterleaved: replication frames and broker frames share
// the codec, so a decoding error in one must not be possible from
// well-formed frames of the other protocol on its own connection.
func TestReplFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB length prefix
	if _, _, err := ReadReplFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized frame not rejected")
	}
}
