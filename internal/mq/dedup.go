package mq

import "sync"

// Publish idempotency dedup: a resilient client that loses the
// response to a publish cannot know whether the broker enqueued it,
// so it re-sends the frame with the same token. The broker remembers
// the last dedupWindow tokens it has settled and answers a replay
// with the original delivery count instead of enqueueing twice —
// at-most-once enqueue per token, which together with the client's
// retry loop yields exactly-once.

// dedupWindow bounds remembered tokens. At the deployment's peak rate
// (~150k messages/day, §4.1) this window covers several minutes of
// traffic — far longer than any retry burst.
const dedupWindow = 1 << 14

// publishDedup is a fixed-size FIFO token memo.
type publishDedup struct {
	mu   sync.Mutex
	seen map[string]int // token -> delivery count of the original publish
	ring []string       // eviction order
	next int
}

func newPublishDedup() *publishDedup {
	return &publishDedup{
		seen: make(map[string]int, dedupWindow),
		ring: make([]string, dedupWindow),
	}
}

// lookup returns the memoized delivery count for token.
func (d *publishDedup) lookup(token string) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.seen[token]
	return n, ok
}

// record memoizes a settled publish, evicting the oldest token once
// the window is full.
func (d *publishDedup) record(token string, delivered int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.seen[token]; ok {
		d.seen[token] = delivered
		return
	}
	if old := d.ring[d.next]; old != "" {
		delete(d.seen, old)
	}
	d.ring[d.next] = token
	d.next = (d.next + 1) % len(d.ring)
	d.seen[token] = delivered
}
