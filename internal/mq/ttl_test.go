package mq

import (
	"testing"
	"time"
)

// setQueueClock overrides a queue's clock for TTL tests.
func setQueueClock(t *testing.T, b *Broker, queueName string, now func() time.Time) {
	t.Helper()
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		t.Fatalf("queue %q not found", queueName)
	}
	q.mu.Lock()
	q.now = now
	q.mu.Unlock()
}

func TestTTLExpiresStaleMessages(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{TTL: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}

	base := time.Date(2016, 4, 1, 10, 0, 0, 0, time.UTC)
	clock := base
	setQueueClock(t, b, "q", func() time.Time { return clock })

	// Two messages published at base, one at base+90m.
	if _, err := b.PublishAt("x", "k", nil, []byte("old-1"), base); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishAt("x", "k", nil, []byte("old-2"), base.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishAt("x", "k", nil, []byte("fresh"), base.Add(90*time.Minute)); err != nil {
		t.Fatal(err)
	}
	// At base+2h, the two old messages are past the 1h TTL.
	clock = base.Add(2 * time.Hour)
	st, err := b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != 1 || st.Expired != 2 {
		t.Fatalf("after expiry: ready=%d expired=%d, want 1/2", st.Ready, st.Expired)
	}
	d, found, err := b.Get("q")
	if err != nil || !found {
		t.Fatalf("get: %v %v", found, err)
	}
	if string(d.Body) != "fresh" {
		t.Fatalf("surviving message = %q, want fresh", d.Body)
	}
	if err := b.AckGet("q", d.Tag); err != nil {
		t.Fatal(err)
	}
}

func TestTTLZeroNeverExpires(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	old := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := b.PublishAt("x", "k", nil, []byte("ancient"), old); err != nil {
		t.Fatal(err)
	}
	st, err := b.QueueStats("q")
	if err != nil || st.Ready != 1 || st.Expired != 0 {
		t.Fatalf("no-TTL queue expired messages: %+v err=%v", st, err)
	}
}

func TestTTLExpiryBeforeDispatch(t *testing.T) {
	// A consumer subscribing after the TTL elapsed must not receive
	// the stale message.
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{TTL: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 4, 1, 10, 0, 0, 0, time.UTC)
	clock := base
	setQueueClock(t, b, "q", func() time.Time { return clock })
	if _, err := b.PublishAt("x", "k", nil, []byte("stale"), base); err != nil {
		t.Fatal(err)
	}
	clock = base.Add(5 * time.Minute)
	c, err := b.Consume("q", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Cancel()
	select {
	case d := <-c.C():
		t.Fatalf("stale message delivered: %q", d.Body)
	case <-time.After(50 * time.Millisecond):
	}
	st, _ := b.QueueStats("q")
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
}

func TestTTLOverWire(t *testing.T) {
	_, s := startServer(t)
	c := dialTest(t, s)
	if err := c.DeclareQueue("q", QueueOptions{TTL: 250 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := c.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("x", "k", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	// Fresh: visible.
	st, err := c.QueueStats("q")
	if err != nil || st.Ready != 1 {
		t.Fatalf("fresh: %+v err=%v", st, err)
	}
	time.Sleep(400 * time.Millisecond)
	st, err = c.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != 0 || st.Expired != 1 {
		t.Fatalf("after wire TTL: %+v", st)
	}
}
