package mq

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// ErrQueueClosed is returned on operations against a deleted queue.
	ErrQueueClosed = errors.New("mq: queue closed")
	// ErrUnknownTag is returned when acknowledging a delivery tag that
	// is not outstanding.
	ErrUnknownTag = errors.New("mq: unknown delivery tag")
)

// QueueOptions configure queue behaviour at declare time.
type QueueOptions struct {
	// MaxLen bounds the number of ready messages; 0 means unbounded.
	// When full, the oldest ready message is dropped (the mobile
	// buffering semantics: fresher observations win).
	MaxLen int `json:"maxLen,omitempty"`
	// TTL expires ready messages older than this (by publish time);
	// 0 disables expiry. Expired messages are lazily dropped when the
	// queue is touched — the notification-queue semantics: a phone
	// reconnecting after a week does not want week-old zone feedback.
	TTL time.Duration `json:"ttl,omitempty"`
	// Exclusive marks a per-client private queue (informational; the
	// broker does not enforce connection affinity).
	Exclusive bool `json:"exclusive,omitempty"`
	// HighWatermark pauses publishers when the ready depth reaches it
	// (a wire-level `flow` frame asks them to stop); 0 disables flow
	// control. Backpressure replaces silent unbounded buffering: the
	// deployment lesson is that a consumer outage otherwise turns the
	// broker into an unbounded buffer that falls over later, all at
	// once.
	HighWatermark int `json:"highWatermark,omitempty"`
	// LowWatermark resumes publishers once the ready depth drains back
	// to it. Defaults to HighWatermark/2; clamped below HighWatermark.
	LowWatermark int `json:"lowWatermark,omitempty"`
}

// QueueStats is a point-in-time snapshot of queue state.
type QueueStats struct {
	Name      string `json:"name"`
	Ready     int    `json:"ready"`
	Unacked   int    `json:"unacked"`
	Consumers int    `json:"consumers"`
	Published uint64 `json:"published"`
	Delivered uint64 `json:"delivered"`
	Acked     uint64 `json:"acked"`
	Dropped   uint64 `json:"dropped"`
	Expired   uint64 `json:"expired"`
}

// queue is a broker-internal message queue with competing consumers
// and per-delivery acknowledgements.
//
// Counters and the ready/unacked/consumer cardinalities are atomics
// mirrored alongside the locked structures, so statsFast can snapshot
// the queue without acquiring mu — metric sampling never contends with
// the publish/dispatch hot path.
type queue struct {
	name string
	opts QueueOptions

	mu        sync.Mutex
	ready     msgDeque
	unacked   map[uint64]Message
	consumers []*Consumer
	nextRR    int // round-robin cursor over consumers
	nextTag   uint64
	closed    bool

	// now stamps expiry checks; overridable in tests.
	now func() time.Time

	// hooks aliases the owning broker's hook slot; nil-safe.
	hooks *atomic.Pointer[Hooks]

	// flowFn forwards watermark pause/resume transitions to the owning
	// broker's flow subscribers; nil for standalone queues. Fires under
	// q.mu, so it must not call back into the queue.
	flowFn func(queue string, paused bool)
	// paused tracks the flow-control state under mu.
	paused bool

	// Overflow warn rate limiting: at most one log line per queue per
	// minute, counting the drops since the last line.
	lastOverflowWarn  time.Time
	overflowSinceWarn int

	readyN     atomic.Int64
	unackedN   atomic.Int64
	consumersN atomic.Int64

	published atomic.Uint64
	delivered atomic.Uint64
	acked     atomic.Uint64
	dropped   atomic.Uint64
	expired   atomic.Uint64
}

func newQueue(name string, opts QueueOptions, hooks *atomic.Pointer[Hooks], flowFn func(string, bool)) *queue {
	if opts.HighWatermark > 0 {
		if opts.LowWatermark <= 0 {
			opts.LowWatermark = opts.HighWatermark / 2
		}
		if opts.LowWatermark >= opts.HighWatermark {
			opts.LowWatermark = opts.HighWatermark - 1
		}
	}
	return &queue{
		name:    name,
		opts:    opts,
		unacked: make(map[uint64]Message),
		now:     time.Now,
		hooks:   hooks,
		flowFn:  flowFn,
	}
}

// h returns the current hooks, tolerating queues built without a slot.
func (q *queue) h() *Hooks {
	if q.hooks == nil {
		return nil
	}
	return q.hooks.Load()
}

// expireLocked lazily drops ready messages older than the TTL.
// Caller holds q.mu. h is the caller's hook snapshot.
func (q *queue) expireLocked(h *Hooks) {
	if q.opts.TTL <= 0 {
		return
	}
	cutoff := q.now().Add(-q.opts.TTL)
	n := 0
	for {
		msg, ok := q.ready.front()
		if !ok || !msg.PublishedAt.Before(cutoff) {
			// Messages are ordered by publish time; the first fresh
			// one ends the sweep.
			break
		}
		q.ready.dropFront()
		q.readyN.Add(-1)
		q.expired.Add(1)
		n++
	}
	if n > 0 {
		h.expired(q.name, n)
	}
}

// publish enqueues a message and dispatches it to a consumer with
// spare prefetch capacity if one exists. The message is copied into
// the queue; the caller's value is not retained.
func (q *queue) publish(m *Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	h := q.h()
	q.enqueueLocked(m, h)
	q.dispatchLocked(h)
	return nil
}

// publishBatch enqueues a run of messages under one lock acquisition
// and dispatches once at the end. Per-message semantics are
// preserved: counters, hooks and MaxLen overflow drops fire for each
// message exactly as a sequence of publish calls would, and FIFO
// order within the batch is kept.
func (q *queue) publishBatch(msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	h := q.h()
	for i := range msgs {
		q.enqueueLocked(&msgs[i], h)
	}
	q.dispatchLocked(h)
	return nil
}

// enqueueLocked appends one message to the ready list, enforcing
// MaxLen by dropping the oldest ready messages. Caller holds q.mu and
// passes its hook snapshot so the hot path loads the hook pointer
// once per operation, not once per event.
func (q *queue) enqueueLocked(m *Message, h *Hooks) {
	q.published.Add(1)
	q.ready.pushBack(m)
	q.readyN.Add(1)
	h.enqueued(q.name)
	if q.opts.MaxLen > 0 {
		overflowed := 0
		for q.ready.len() > q.opts.MaxLen {
			q.ready.dropFront()
			q.readyN.Add(-1)
			q.dropped.Add(1)
			h.dropped(q.name)
			h.overflowed(q.name)
			overflowed++
		}
		if overflowed > 0 {
			q.warnOverflowLocked(overflowed)
		}
	}
}

// warnOverflowLocked logs MaxLen overflow drops at most once per queue
// per minute, accumulating the drop count in between so no loss goes
// unreported. Caller holds q.mu.
func (q *queue) warnOverflowLocked(n int) {
	q.overflowSinceWarn += n
	now := q.now()
	if !q.lastOverflowWarn.IsZero() && now.Sub(q.lastOverflowWarn) < time.Minute {
		return
	}
	log.Printf("mq: queue %q dropped %d message(s) to MaxLen=%d overflow (oldest first)",
		q.name, q.overflowSinceWarn, q.opts.MaxLen)
	q.lastOverflowWarn = now
	q.overflowSinceWarn = 0
}

// updateFlowLocked detects watermark crossings on the ready depth and
// publishes pause/resume transitions to hooks and the broker's flow
// subscribers. Caller holds q.mu.
func (q *queue) updateFlowLocked(h *Hooks) {
	hw := q.opts.HighWatermark
	if hw <= 0 {
		return
	}
	n := q.ready.len()
	switch {
	case !q.paused && n >= hw:
		q.paused = true
		h.flowPaused(q.name)
		if q.flowFn != nil {
			q.flowFn(q.name, true)
		}
	case q.paused && n <= q.opts.LowWatermark:
		q.paused = false
		h.flowResumed(q.name)
		if q.flowFn != nil {
			q.flowFn(q.name, false)
		}
	}
}

// dispatchLocked hands ready messages to consumers round-robin while
// any consumer has prefetch headroom. Caller holds q.mu. Every exit
// path re-evaluates the flow watermarks: dispatch is the common tail
// of publish, ack, nack-requeue and consumer attach, which are exactly
// the operations that move the ready depth.
func (q *queue) dispatchLocked(h *Hooks) {
	defer q.updateFlowLocked(h)
	q.expireLocked(h)
	if len(q.consumers) == 0 {
		return
	}
	for q.ready.len() > 0 {
		front, _ := q.ready.front()
		q.nextTag++
		tag := q.nextTag
		// Offer to consumers round-robin; offer itself checks prefetch
		// headroom, so capacity check and delivery share one consumer
		// lock acquisition.
		n := len(q.consumers)
		delivered := false
		for i := 0; i < n; i++ {
			c := q.consumers[(q.nextRR+i)%n]
			if c.offer(Delivery{Message: *front, Tag: tag, Queue: q.name}) {
				q.nextRR = (q.nextRR + i + 1) % n
				delivered = true
				break
			}
		}
		if !delivered {
			// Every consumer saturated; the message stays ready and
			// will be dispatched on ack. The minted tag is never used.
			return
		}
		q.unacked[tag] = *front
		q.ready.dropFront()
		q.readyN.Add(-1)
		q.unackedN.Add(1)
		q.delivered.Add(1)
		h.delivered(q.name)
	}
}

// get implements basic.get: synchronously dequeue one message (it
// becomes unacked until Ack/Nack).
func (q *queue) get() (Delivery, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Delivery{}, false, ErrQueueClosed
	}
	h := q.h()
	q.expireLocked(h)
	defer q.updateFlowLocked(h)
	msg, ok := q.ready.popFront()
	if !ok {
		return Delivery{}, false, nil
	}
	q.readyN.Add(-1)
	q.nextTag++
	q.unacked[q.nextTag] = msg
	q.unackedN.Add(1)
	q.delivered.Add(1)
	h.delivered(q.name)
	return Delivery{Message: msg, Tag: q.nextTag, Queue: q.name}, true, nil
}

// ack discards an unacked delivery.
func (q *queue) ack(tag uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.unacked[tag]; !ok {
		return fmt.Errorf("queue %q: ack %d: %w", q.name, tag, ErrUnknownTag)
	}
	delete(q.unacked, tag)
	q.unackedN.Add(-1)
	q.acked.Add(1)
	h := q.h()
	h.acked(q.name)
	q.dispatchLocked(h)
	return nil
}

// nack returns an unacked delivery; requeue=true pushes it back to the
// front of the ready list marked redelivered, requeue=false drops it.
func (q *queue) nack(tag uint64, requeue bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	m, ok := q.unacked[tag]
	if !ok {
		return fmt.Errorf("queue %q: nack %d: %w", q.name, tag, ErrUnknownTag)
	}
	delete(q.unacked, tag)
	q.unackedN.Add(-1)
	h := q.h()
	h.nacked(q.name, requeue)
	if requeue {
		m.Redelivered = true
		q.ready.pushFront(&m)
		q.readyN.Add(1)
		q.dispatchLocked(h)
	} else {
		q.dropped.Add(1)
		h.dropped(q.name)
	}
	return nil
}

// addConsumer registers a consumer and immediately dispatches backlog.
func (q *queue) addConsumer(c *Consumer) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	q.consumers = append(q.consumers, c)
	q.consumersN.Add(1)
	q.dispatchLocked(q.h())
	return nil
}

// removeConsumer unregisters a consumer and requeues its undelivered
// channel backlog is not tracked here; unacked messages stay unacked
// until the owning session nacks them.
func (q *queue) removeConsumer(c *Consumer) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, x := range q.consumers {
		if x == c {
			q.consumers = append(q.consumers[:i], q.consumers[i+1:]...)
			q.consumersN.Add(-1)
			break
		}
	}
}

// close marks the queue deleted and closes every consumer channel.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	if q.paused {
		// A deleted queue must not leave publishers paused forever.
		q.paused = false
		h := q.h()
		h.flowResumed(q.name)
		if q.flowFn != nil {
			q.flowFn(q.name, false)
		}
	}
	for _, c := range q.consumers {
		c.closeChan()
	}
	q.consumers = nil
	q.consumersN.Store(0)
	q.ready.reset()
	q.readyN.Store(0)
	q.unacked = make(map[uint64]Message)
	q.unackedN.Store(0)
}

// stats snapshots queue counters, running the lazy TTL sweep first so
// Ready reflects only live messages (the behaviour QueueStats
// documents and the TTL tests rely on).
func (q *queue) stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	h := q.h()
	q.expireLocked(h)
	q.updateFlowLocked(h)
	return QueueStats{
		Name:      q.name,
		Ready:     q.ready.len(),
		Unacked:   len(q.unacked),
		Consumers: len(q.consumers),
		Published: q.published.Load(),
		Delivered: q.delivered.Load(),
		Acked:     q.acked.Load(),
		Dropped:   q.dropped.Load(),
		Expired:   q.expired.Load(),
	}
}

// statsFast snapshots queue counters from atomics only: no mutex, no
// TTL sweep. Fields may be mutually torn by a few in-flight messages,
// which is fine for monitoring.
func (q *queue) statsFast() QueueStats {
	return QueueStats{
		Name:      q.name,
		Ready:     int(q.readyN.Load()),
		Unacked:   int(q.unackedN.Load()),
		Consumers: int(q.consumersN.Load()),
		Published: q.published.Load(),
		Delivered: q.delivered.Load(),
		Acked:     q.acked.Load(),
		Dropped:   q.dropped.Load(),
		Expired:   q.expired.Load(),
	}
}

// Consumer receives deliveries from a queue. Obtain one via
// Broker.Consume; receive from C; call Cancel when done.
type Consumer struct {
	queue    *queue
	ch       chan Delivery
	prefetch int

	mu          sync.Mutex
	inFlight    int
	closed      bool
	outstanding map[uint64]struct{}
}

// C returns the delivery channel. It is closed when the consumer is
// cancelled or the queue deleted.
func (c *Consumer) C() <-chan Delivery { return c.ch }

// offer attempts a non-blocking delivery, refusing when the consumer
// is closed, has no prefetch headroom, or its channel is full.
func (c *Consumer) offer(d Delivery) bool {
	c.mu.Lock()
	if c.closed || (c.prefetch > 0 && c.inFlight >= c.prefetch) {
		c.mu.Unlock()
		return false
	}
	select {
	case c.ch <- d:
		c.inFlight++
		c.outstanding[d.Tag] = struct{}{}
		c.mu.Unlock()
		return true
	default:
		c.mu.Unlock()
		return false
	}
}

// Ack acknowledges a delivery received by this consumer.
func (c *Consumer) Ack(tag uint64) error {
	c.mu.Lock()
	if c.inFlight > 0 {
		c.inFlight--
	}
	delete(c.outstanding, tag)
	c.mu.Unlock()
	return c.queue.ack(tag)
}

// Nack rejects a delivery; requeue controls whether it returns to the
// ready list.
func (c *Consumer) Nack(tag uint64, requeue bool) error {
	c.mu.Lock()
	if c.inFlight > 0 {
		c.inFlight--
	}
	delete(c.outstanding, tag)
	c.mu.Unlock()
	return c.queue.nack(tag, requeue)
}

// Cancel unsubscribes the consumer and closes its channel. Unacked
// deliveries already received must still be acked or nacked.
func (c *Consumer) Cancel() {
	c.queue.removeConsumer(c)
	c.closeChan()
}

// CancelAndRequeue cancels the subscription and returns every
// delivery the consumer still held unacknowledged (including ones
// sitting unread in its channel) to the queue — the teardown path for
// a mobile session that disconnected mid-stream.
func (c *Consumer) CancelAndRequeue() {
	c.Cancel()
	c.mu.Lock()
	tags := make([]uint64, 0, len(c.outstanding))
	for tag := range c.outstanding {
		tags = append(tags, tag)
	}
	c.outstanding = make(map[uint64]struct{})
	c.inFlight = 0
	c.mu.Unlock()
	c.queue.requeueAll(tags)
}

// requeueAll returns a set of unacked deliveries to the front of the
// ready list in one critical section: newest tag pushed first, so the
// restored sequence is the original publish order ahead of the queued
// backlog, and a single dispatch at the end keeps an already-attached
// consumer from interleaving with the restore — a reconnecting mobile
// session drains its buffer in order. Tags already settled through
// another path are skipped.
func (q *queue) requeueAll(tags []uint64) {
	sort.Slice(tags, func(i, j int) bool { return tags[i] > tags[j] })
	q.mu.Lock()
	defer q.mu.Unlock()
	h := q.h()
	for _, tag := range tags {
		m, ok := q.unacked[tag]
		if !ok {
			continue
		}
		delete(q.unacked, tag)
		q.unackedN.Add(-1)
		h.nacked(q.name, true)
		m.Redelivered = true
		q.ready.pushFront(&m)
		q.readyN.Add(1)
	}
	q.dispatchLocked(h)
}

func (c *Consumer) closeChan() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
}
