// Package mq implements the messaging substrate of the GoFlow
// middleware: an AMQP-style broker in the spirit of RabbitMQ, with
// direct, fanout and topic exchanges, named queues, queue and
// exchange-to-exchange bindings, consumer acknowledgements and a TCP
// wire protocol for remote clients.
//
// The exchange/queue topology follows Figure 3 of the paper: each
// application owns a topic exchange that forwards every crowd-sensed
// message to the GoFlow exchange and queue; each mobile client gets a
// private exchange (bound to the application exchange) and a private
// queue for notifications; location and datatype exchanges fan
// messages out to interested subscribers.
package mq

import (
	"strconv"
	"sync/atomic"
	"time"
)

// Message is a routed payload. Bodies are opaque bytes; GoFlow encodes
// observations as JSON.
type Message struct {
	// ID is a broker-assigned unique id.
	ID string `json:"id"`
	// Exchange the message was published to.
	Exchange string `json:"exchange"`
	// RoutingKey used for binding matches (dot-separated words for
	// topic exchanges, e.g. "soundcity.FR75013.noise").
	RoutingKey string `json:"routingKey"`
	// Headers carry application metadata (client id, app version).
	Headers map[string]string `json:"headers,omitempty"`
	// Body is the payload.
	Body []byte `json:"body"`
	// PublishedAt is the broker receive time.
	PublishedAt time.Time `json:"publishedAt"`
	// Redelivered is true when the message was requeued after a nack
	// or a consumer cancellation.
	Redelivered bool `json:"redelivered"`
}

// clone returns a copy safe to hand to an independent queue. Headers
// are shared copy-on-write by convention: the broker never mutates
// them after publish.
func (m Message) clone() Message {
	return m
}

var _msgCounter atomic.Uint64

// nextMessageID mints a process-unique message id.
func nextMessageID() string {
	return "m" + strconv.FormatUint(_msgCounter.Add(1), 36)
}

// Delivery is a message handed to a consumer together with the tag
// needed to acknowledge it.
type Delivery struct {
	Message
	// Tag identifies this delivery for Ack/Nack.
	Tag uint64 `json:"tag"`
	// Queue the delivery came from.
	Queue string `json:"queue"`
}
