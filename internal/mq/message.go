// Package mq implements the messaging substrate of the GoFlow
// middleware: an AMQP-style broker in the spirit of RabbitMQ, with
// direct, fanout and topic exchanges, named queues, queue and
// exchange-to-exchange bindings, consumer acknowledgements and a TCP
// wire protocol for remote clients.
//
// The exchange/queue topology follows Figure 3 of the paper: each
// application owns a topic exchange that forwards every crowd-sensed
// message to the GoFlow exchange and queue; each mobile client gets a
// private exchange (bound to the application exchange) and a private
// queue for notifications; location and datatype exchanges fan
// messages out to interested subscribers.
package mq

import (
	"sync/atomic"
	"time"
)

// Message is a routed payload. Bodies are opaque bytes; GoFlow encodes
// observations as JSON.
//
// A message routed to several queues is shared copy-on-write: every
// destination receives the same Body and Headers references, and
// neither the broker nor consumers may mutate them after publish.
// (The previous implementation called a per-target clone() that was
// already a shallow copy; the convention is now explicit and the
// struct is copied only by value.)
type Message struct {
	// ID is a broker-assigned unique id (monotonic per process).
	ID uint64 `json:"id"`
	// Exchange the message was published to.
	Exchange string `json:"exchange"`
	// RoutingKey used for binding matches (dot-separated words for
	// topic exchanges, e.g. "soundcity.FR75013.noise").
	RoutingKey string `json:"routingKey"`
	// Headers carry application metadata (client id, app version).
	Headers map[string]string `json:"headers,omitempty"`
	// Body is the payload.
	Body []byte `json:"body"`
	// PublishedAt is the broker receive time.
	PublishedAt time.Time `json:"publishedAt"`
	// Redelivered is true when the message was requeued after a nack
	// or a consumer cancellation.
	Redelivered bool `json:"redelivered"`
}

var _msgCounter atomic.Uint64

// nextMessageID mints a process-unique message id. Numeric so the
// publish hot path does not pay a string allocation per message.
func nextMessageID() uint64 {
	return _msgCounter.Add(1)
}

// Delivery is a message handed to a consumer together with the tag
// needed to acknowledge it.
type Delivery struct {
	Message
	// Tag identifies this delivery for Ack/Nack.
	Tag uint64 `json:"tag"`
	// Queue the delivery came from.
	Queue string `json:"queue"`
}
