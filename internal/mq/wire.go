package mq

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// The wire protocol is a stream of length-prefixed JSON frames:
// 4-byte big-endian length followed by a JSON-encoded frame. Requests
// carry a client-chosen correlation id echoed in the response;
// deliveries are pushed asynchronously with Op "deliver".

// maxFrameBytes bounds a single frame to protect against corrupt
// length prefixes.
const maxFrameBytes = 16 << 20

// Frame ops.
const (
	opDeclareExchange = "declare-exchange"
	opDeleteExchange  = "delete-exchange"
	opDeclareQueue    = "declare-queue"
	opDeleteQueue     = "delete-queue"
	opBindQueue       = "bind-queue"
	opBindExchange    = "bind-exchange"
	opUnbindQueue     = "unbind-queue"
	opPublish         = "publish"
	opPublishBatch    = "publish-batch"
	opConsume         = "consume"
	opCancel          = "cancel"
	opGet             = "get"
	opAck             = "ack"
	opNack            = "nack"
	opQueueStats      = "queue-stats"
	opOK              = "ok"
	opError           = "error"
	opDeliver         = "deliver"
	// opFlow is pushed by the server (no correlation id) when a queue
	// crosses its flow watermarks: Paused=true asks publishers to stop,
	// Paused=false resumes them. A snapshot of currently paused queues
	// is pushed right after accept so late connections learn the state.
	opFlow = "flow"
)

// frame is the single wire message shape; unused fields are omitted.
type frame struct {
	Op    string `json:"op"`
	Corr  uint64 `json:"corr,omitempty"`
	Error string `json:"error,omitempty"`

	Exchange     string            `json:"exchange,omitempty"`
	ExchangeType string            `json:"exchangeType,omitempty"`
	Queue        string            `json:"queue,omitempty"`
	SrcExchange  string            `json:"srcExchange,omitempty"`
	Pattern      string            `json:"pattern,omitempty"`
	RoutingKey   string            `json:"routingKey,omitempty"`
	Headers      map[string]string `json:"headers,omitempty"`
	Body         []byte            `json:"body,omitempty"`
	PublishedAt  time.Time         `json:"publishedAt,omitempty"`
	MaxLen       int               `json:"maxLen,omitempty"`
	TTLMillis    int64             `json:"ttlMillis,omitempty"`
	Exclusive    bool              `json:"exclusive,omitempty"`
	Prefetch     int               `json:"prefetch,omitempty"`
	ConsumerID   uint64            `json:"consumerId,omitempty"`
	Tag          uint64            `json:"tag,omitempty"`
	Requeue      bool              `json:"requeue,omitempty"`
	Delivered    int               `json:"delivered,omitempty"`
	Found        bool              `json:"found,omitempty"`
	MessageID    uint64            `json:"messageId,omitempty"`
	Redelivered  bool              `json:"redelivered,omitempty"`
	Stats        *QueueStats       `json:"stats,omitempty"`
	Items        []PublishItem     `json:"items,omitempty"`
	// Token is a publish idempotency token: a republish carrying a
	// token the broker has seen inside its dedup window returns the
	// original delivery count without enqueueing again.
	Token string `json:"token,omitempty"`
	// Paused carries the flow-control state of Queue in opFlow frames.
	Paused bool `json:"paused,omitempty"`
	// HighWatermark / LowWatermark carry queue flow thresholds in
	// declare-queue frames.
	HighWatermark int `json:"highWatermark,omitempty"`
	LowWatermark  int `json:"lowWatermark,omitempty"`
}

// writeJSONFrame encodes v and writes it as one length-prefixed frame,
// returning the bytes put on the wire (length prefix included) for
// traffic accounting. The prefix and payload go out in a single Write
// so a frame is atomic with respect to per-write fault injection (and
// one fewer syscall). Shared by the broker protocol (frame) and the
// replication protocol (ReplFrame).
func writeJSONFrame(w io.Writer, v any) (int, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("encode frame: %w", err)
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	return w.Write(buf)
}

// readJSONFrame reads one length-prefixed frame into v, returning the
// bytes consumed from the wire (length prefix included).
func readJSONFrame(r *bufio.Reader, v any) (int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrameBytes {
		return len(lenBuf), fmt.Errorf("mq: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return len(lenBuf), err
	}
	total := len(lenBuf) + int(n)
	if err := json.Unmarshal(payload, v); err != nil {
		return total, fmt.Errorf("decode frame: %w", err)
	}
	return total, nil
}

// writeFrame encodes and writes one broker frame.
func writeFrame(w io.Writer, f *frame) (int, error) {
	return writeJSONFrame(w, f)
}

// readFrame reads and decodes one broker frame.
func readFrame(r *bufio.Reader) (*frame, int, error) {
	var f frame
	n, err := readJSONFrame(r, &f)
	if err != nil {
		return nil, n, err
	}
	return &f, n, nil
}
