package mq

// Instrumentation hooks. The broker stays free of any metrics
// dependency: observers install a Hooks value whose function fields
// receive raw events (publish, delivery, ack, drop, wire bytes) and
// aggregate them however they like — the goflow layer adapts these
// onto obs counters.
//
// Hook functions MUST be fast and non-blocking and MUST NOT call back
// into the broker: several fire while queue or broker locks are held.
// Unset fields cost one nil check on the hot path.

// Hooks receives broker events. The zero value is inert.
type Hooks struct {
	// Published fires once per Publish/PublishAt with the number of
	// queues the message reached (0 = unroutable).
	Published func(exchange string, delivered int)
	// Enqueued fires when a message lands on a queue's ready list.
	Enqueued func(queue string)
	// Delivered fires when a message is handed to a consumer or
	// fetched via Get.
	Delivered func(queue string)
	// Acked fires on every acknowledgement.
	Acked func(queue string)
	// Nacked fires on every rejection; requeue tells whether the
	// message went back to the ready list.
	Nacked func(queue string, requeue bool)
	// Dropped fires when a message is discarded: MaxLen overflow or a
	// nack without requeue.
	Dropped func(queue string)
	// Overflowed fires (in addition to Dropped) when the discard was a
	// MaxLen overflow specifically, so operators can alert on capacity
	// loss separately from deliberate nack-drops.
	Overflowed func(queue string)
	// FlowPaused / FlowResumed fire when a queue's ready depth crosses
	// its high / low watermark and publishers are paused / resumed via
	// wire-level flow frames. Fire under the queue lock.
	FlowPaused  func(queue string)
	FlowResumed func(queue string)
	// Expired fires when the TTL sweep discards n messages.
	Expired func(queue string, n int)
	// ConnOpened / ConnClosed track TCP connections on the wire server.
	ConnOpened func()
	ConnClosed func()
	// BytesRead / BytesWritten count wire-protocol bytes including the
	// 4-byte length prefix.
	BytesRead    func(n int)
	BytesWritten func(n int)
	// RouteCacheHit / RouteCacheMiss fire once per routed publish on
	// the hot path; keep them to an atomic increment.
	RouteCacheHit  func()
	RouteCacheMiss func()
	// RouteCacheInvalidated fires when a topology change (declare,
	// bind, unbind, delete) discards the memoized routes. Fires under
	// the broker write lock.
	RouteCacheInvalidated func()
}

// Nil-tolerant dispatch helpers so call sites stay one-liners.

func (h *Hooks) published(exchange string, delivered int) {
	if h != nil && h.Published != nil {
		h.Published(exchange, delivered)
	}
}

func (h *Hooks) enqueued(queue string) {
	if h != nil && h.Enqueued != nil {
		h.Enqueued(queue)
	}
}

func (h *Hooks) delivered(queue string) {
	if h != nil && h.Delivered != nil {
		h.Delivered(queue)
	}
}

func (h *Hooks) acked(queue string) {
	if h != nil && h.Acked != nil {
		h.Acked(queue)
	}
}

func (h *Hooks) nacked(queue string, requeue bool) {
	if h != nil && h.Nacked != nil {
		h.Nacked(queue, requeue)
	}
}

func (h *Hooks) dropped(queue string) {
	if h != nil && h.Dropped != nil {
		h.Dropped(queue)
	}
}

func (h *Hooks) overflowed(queue string) {
	if h != nil && h.Overflowed != nil {
		h.Overflowed(queue)
	}
}

func (h *Hooks) flowPaused(queue string) {
	if h != nil && h.FlowPaused != nil {
		h.FlowPaused(queue)
	}
}

func (h *Hooks) flowResumed(queue string) {
	if h != nil && h.FlowResumed != nil {
		h.FlowResumed(queue)
	}
}

func (h *Hooks) expired(queue string, n int) {
	if h != nil && h.Expired != nil {
		h.Expired(queue, n)
	}
}

func (h *Hooks) connOpened() {
	if h != nil && h.ConnOpened != nil {
		h.ConnOpened()
	}
}

func (h *Hooks) connClosed() {
	if h != nil && h.ConnClosed != nil {
		h.ConnClosed()
	}
}

func (h *Hooks) bytesRead(n int) {
	if h != nil && h.BytesRead != nil {
		h.BytesRead(n)
	}
}

func (h *Hooks) bytesWritten(n int) {
	if h != nil && h.BytesWritten != nil {
		h.BytesWritten(n)
	}
}

func (h *Hooks) routeCacheHit() {
	if h != nil && h.RouteCacheHit != nil {
		h.RouteCacheHit()
	}
}

func (h *Hooks) routeCacheMiss() {
	if h != nil && h.RouteCacheMiss != nil {
		h.RouteCacheMiss()
	}
}

func (h *Hooks) routeCacheInvalidated() {
	if h != nil && h.RouteCacheInvalidated != nil {
		h.RouteCacheInvalidated()
	}
}

// SetHooks installs the broker's event hooks. Install before traffic
// starts; installing later is safe (the pointer swap is atomic) but
// events in flight may be split across old and new hooks.
func (b *Broker) SetHooks(h Hooks) {
	b.hooks.Store(&h)
}

// currentHooks returns the installed hooks (possibly nil).
func (b *Broker) currentHooks() *Hooks { return b.hooks.Load() }
