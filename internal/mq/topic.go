package mq

import "strings"

// TopicMatch reports whether a routing key matches a topic binding
// pattern, following the AMQP topic-exchange rules:
//
//   - patterns and keys are dot-separated words;
//   - "*" matches exactly one word;
//   - "#" matches zero or more words.
//
// Examples: "soundcity.*.noise" matches "soundcity.FR75013.noise";
// "soundcity.#" matches "soundcity" and "soundcity.a.b.c".
func TopicMatch(pattern, key string) bool {
	return topicMatchWords(splitWords(pattern), splitWords(key))
}

func splitWords(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ".")
}

func topicMatchWords(pat, key []string) bool {
	// Dynamic-programming-free recursive matcher; patterns are short
	// (a handful of words) so recursion depth is bounded.
	for {
		switch {
		case len(pat) == 0:
			return len(key) == 0
		case pat[0] == "#":
			// "#" may absorb zero or more words.
			if topicMatchWords(pat[1:], key) {
				return true
			}
			if len(key) == 0 {
				return false
			}
			key = key[1:]
		case len(key) == 0:
			return false
		case pat[0] == "*" || pat[0] == key[0]:
			pat = pat[1:]
			key = key[1:]
		default:
			return false
		}
	}
}
