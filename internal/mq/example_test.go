package mq_test

import (
	"fmt"

	"github.com/urbancivics/goflow/internal/mq"
)

func ExampleTopicMatch() {
	fmt.Println(mq.TopicMatch("SC.*.feedback.FR75013", "SC.mob1.feedback.FR75013"))
	fmt.Println(mq.TopicMatch("SC.mob1.#", "SC.mob1.obs.FR75013"))
	fmt.Println(mq.TopicMatch("SC.mob1.#", "SC.mob2.obs.FR75013"))
	// Output:
	// true
	// true
	// false
}

func ExampleBroker() {
	// The Figure 3 topology in miniature: a client exchange feeds the
	// app exchange (filtered by client id), which feeds the GoFlow
	// queue.
	broker := mq.NewBroker()
	defer broker.Close()

	must := func(err error) {
		if err != nil {
			fmt.Println(err)
		}
	}
	must(broker.DeclareExchange("E.mob1", mq.Topic))
	must(broker.DeclareExchange("SC", mq.Topic))
	must(broker.DeclareQueue("GF", mq.QueueOptions{}))
	must(broker.BindExchange("SC", "E.mob1", "SC.mob1.#"))
	must(broker.BindQueue("GF", "SC", "#"))

	n, err := broker.Publish("E.mob1", "SC.mob1.obs.FR75013", nil, []byte(`{"spl":61.5}`))
	must(err)
	fmt.Println("delivered to", n, "queue(s)")

	d, ok, err := broker.Get("GF")
	must(err)
	fmt.Println(ok, string(d.Body))
	must(broker.AckGet("GF", d.Tag))
	// Output:
	// delivered to 1 queue(s)
	// true {"spl":61.5}
}
