package mq

import "sync"

// msgDeque is an unbounded FIFO of messages backed by a linked chain
// of fixed-size blocks. It replaces the previous container/list ready
// list: a list allocated one element plus one interface box per
// enqueued message, which put two heap allocations on the publish hot
// path. Blocks amortize that to one pooled allocation per
// dequeBlockLen messages, and — unlike a growable ring — a deep
// offline backlog (the mobile buffering pattern) never pays an O(n)
// copy to grow, and releases memory block by block as it drains.
type msgDeque struct {
	head, tail *dequeBlock
	headIdx    int // index of the front element in head
	tailIdx    int // one past the last element in tail
	n          int
}

// dequeBlockLen is the block capacity: 256 messages ≈ 26 KiB, big
// enough to make pool traffic negligible, small enough to release
// backlog memory promptly.
const dequeBlockLen = 256

type dequeBlock struct {
	msgs [dequeBlockLen]Message
	next *dequeBlock
}

// blockPool recycles drained blocks. Every slot of a pooled block has
// been zeroed on pop, so the pool never pins message bodies.
var blockPool = sync.Pool{New: func() any { return new(dequeBlock) }}

// len returns the number of queued messages.
func (d *msgDeque) len() int { return d.n }

// pushBack appends a message at the tail. Taking a pointer keeps the
// hot path to a single struct copy (into the block slot).
func (d *msgDeque) pushBack(m *Message) {
	if d.tail == nil {
		b := blockPool.Get().(*dequeBlock)
		d.head, d.tail = b, b
		d.headIdx, d.tailIdx = 0, 0
	} else if d.tailIdx == dequeBlockLen {
		b := blockPool.Get().(*dequeBlock)
		d.tail.next = b
		d.tail = b
		d.tailIdx = 0
	}
	d.tail.msgs[d.tailIdx] = *m
	d.tailIdx++
	d.n++
}

// pushFront prepends a message at the head (nack requeue).
func (d *msgDeque) pushFront(m *Message) {
	if d.head == nil {
		b := blockPool.Get().(*dequeBlock)
		d.head, d.tail = b, b
		d.headIdx, d.tailIdx = dequeBlockLen, dequeBlockLen
	} else if d.headIdx == 0 {
		b := blockPool.Get().(*dequeBlock)
		b.next = d.head
		d.head = b
		d.headIdx = dequeBlockLen
	}
	d.headIdx--
	d.head.msgs[d.headIdx] = *m
	d.n++
}

// front returns a pointer to the head message, valid until the next
// mutation. ok is false when empty.
func (d *msgDeque) front() (*Message, bool) {
	if d.n == 0 {
		return nil, false
	}
	return &d.head.msgs[d.headIdx], true
}

// popFront removes and returns the head message.
func (d *msgDeque) popFront() (Message, bool) {
	if d.n == 0 {
		return Message{}, false
	}
	m := d.head.msgs[d.headIdx]
	d.dropFront()
	return m, true
}

// dropFront discards the head message without copying it out — the
// dispatch path has already copied it from front() and does not need
// it back.
func (d *msgDeque) dropFront() {
	if d.n == 0 {
		return
	}
	d.head.msgs[d.headIdx] = Message{} // release body/header references
	d.headIdx++
	d.n--
	if d.n == 0 {
		// Fully drained: exactly one block remains; rewind it instead
		// of cycling through the pool on every empty transition.
		d.headIdx, d.tailIdx = 0, 0
		return
	}
	if d.headIdx == dequeBlockLen {
		b := d.head
		d.head = b.next
		b.next = nil
		blockPool.Put(b)
		d.headIdx = 0
	}
}

// reset drops every message and releases all blocks. The blocks still
// hold message references, so they go to the garbage collector, not
// back to the pool.
func (d *msgDeque) reset() {
	d.head, d.tail = nil, nil
	d.headIdx, d.tailIdx = 0, 0
	d.n = 0
}
