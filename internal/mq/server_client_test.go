package mq

import (
	"bufio"
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Broker, *Server) {
	t.Helper()
	b := NewBroker()
	s, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		b.Close()
	})
	return b, s
}

func dialTest(t *testing.T, s *Server) *Conn {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestWireFrameRoundTrip(t *testing.T) {
	f := &frame{
		Op:         opPublish,
		Corr:       7,
		Exchange:   "SC",
		RoutingKey: "SC.mob1.obs.FR75013",
		Headers:    map[string]string{"clientId": "mob1"},
		Body:       []byte(`{"spl":61.5}`),
	}
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, _, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != f.Op || got.Corr != f.Corr || got.Exchange != f.Exchange ||
		got.RoutingKey != f.RoutingKey || string(got.Body) != string(f.Body) ||
		got.Headers["clientId"] != "mob1" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWireOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized frame length must be rejected")
	}
}

func TestRemoteDeclarePublishGet(t *testing.T) {
	_, s := startServer(t)
	c := dialTest(t, s)

	if err := c.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.BindQueue("q", "x", "a.#"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Publish("x", "a.b", map[string]string{"h": "v"}, []byte("hello"))
	if err != nil || n != 1 {
		t.Fatalf("remote publish: n=%d err=%v", n, err)
	}
	d, found, err := c.Get("q")
	if err != nil || !found {
		t.Fatalf("remote get: found=%v err=%v", found, err)
	}
	if string(d.Body) != "hello" || d.Headers["h"] != "v" || d.RoutingKey != "a.b" {
		t.Fatalf("delivery mismatch: %+v", d)
	}
	if err := c.Ack("q", d.Tag); err != nil {
		t.Fatal(err)
	}
	st, err := c.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Acked != 1 || st.Ready != 0 {
		t.Fatalf("remote stats: %+v", st)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	_, s := startServer(t)
	c := dialTest(t, s)
	if _, err := c.Publish("missing", "k", nil, nil); err == nil {
		t.Fatal("publish to missing exchange must fail remotely")
	}
	if err := c.BindQueue("q", "x", "p"); err == nil {
		t.Fatal("bind with missing endpoints must fail remotely")
	}
}

func TestRemoteConsume(t *testing.T) {
	_, s := startServer(t)
	pub := dialTest(t, s)
	sub := dialTest(t, s)

	if err := pub.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := pub.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := pub.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	rc, err := sub.Consume("q", 8)
	if err != nil {
		t.Fatal(err)
	}
	const total = 50
	for i := 0; i < total; i++ {
		if _, err := pub.Publish("x", "k", nil, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[string]bool)
	deadline := time.After(5 * time.Second)
	for len(got) < total {
		select {
		case d, open := <-rc.C():
			if !open {
				t.Fatalf("consumer closed after %d deliveries", len(got))
			}
			got[string(d.Body)] = true
			if err := rc.Ack(d.Tag); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatalf("timed out with %d/%d deliveries", len(got), total)
		}
	}
	if err := rc.Cancel(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteConsumerDisconnectRequeues(t *testing.T) {
	b, s := startServer(t)
	pub := dialTest(t, s)
	if err := pub.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := pub.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := pub.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}

	sub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Consume("q", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish("x", "k", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	// Kill the mobile session without acking: the message must come
	// back to the queue (the paper's buffering-for-mobile-sessions
	// behaviour).
	_ = sub.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := b.QueueStats("q")
		if err != nil {
			t.Fatal(err)
		}
		if st.Ready == 1 && st.Unacked == 0 && st.Consumers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("message not requeued after disconnect: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	_, s := startServer(t)
	setup := dialTest(t, s)
	if err := setup.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := setup.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := setup.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	const (
		clients = 6
		each    = 50
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer func() { _ = c.Close() }()
			for j := 0; j < each; j++ {
				if _, err := c.Publish("x", "k", nil, []byte{byte(i), byte(j)}); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st, err := setup.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Published != clients*each {
		t.Fatalf("published = %d, want %d", st.Published, clients*each)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	_, s := startServer(t)
	c := dialTest(t, s)
	if err := c.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Subsequent RPCs must fail, not hang.
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.DeclareExchange("y", Topic)
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("RPC after server close must fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RPC after server close hung")
	}
}

// TestRemotePublishBatch sends a whole batch in one wire frame and
// verifies per-message routing and delivery counts.
func TestRemotePublishBatch(t *testing.T) {
	_, s := startServer(t)
	c := dialTest(t, s)
	if err := c.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.BindQueue("q", "x", "a.*"); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2016, 3, 1, 10, 0, 0, 0, time.UTC)
	n, err := c.PublishBatch("x", []PublishItem{
		{RoutingKey: "a.1", Body: []byte("m1"), At: at},
		{RoutingKey: "nope", Body: []byte("m2"), At: at},
		{RoutingKey: "a.3", Body: []byte("m3")}, // no timestamp: broker stamps
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("batch delivered %d, want 2", n)
	}
	d, found, err := c.Get("q")
	if err != nil || !found {
		t.Fatalf("get: found=%v err=%v", found, err)
	}
	if string(d.Body) != "m1" || !d.PublishedAt.Equal(at) {
		t.Fatalf("first delivery = %q at %v", d.Body, d.PublishedAt)
	}
	if err := c.Ack("q", d.Tag); err != nil {
		t.Fatal(err)
	}
	d, found, err = c.Get("q")
	if err != nil || !found {
		t.Fatalf("get 2: found=%v err=%v", found, err)
	}
	if string(d.Body) != "m3" || d.PublishedAt.IsZero() {
		t.Fatalf("second delivery = %q at %v", d.Body, d.PublishedAt)
	}
	if err := c.Ack("q", d.Tag); err != nil {
		t.Fatal(err)
	}
}

// TestSessionBufferDrainsInOrderAfterDisconnect is the paper's
// session-buffering story end to end: a mobile session receives part
// of its backlog, dies mid-consume with deliveries unacked and more
// messages still queued, and a fresh session must drain everything —
// in the original publish order, with no duplicates and no loss.
func TestSessionBufferDrainsInOrderAfterDisconnect(t *testing.T) {
	b, s := startServer(t)
	pub := dialTest(t, s)
	if err := pub.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := pub.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := pub.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	const total = 10
	for i := 0; i < total; i++ {
		if _, err := pub.Publish("x", "k", nil, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Session A: prefetch 4, reads three deliveries, acks only the
	// first, then dies. In flight and unacked at death: m1, m2, m3
	// (read but never acked) and m4 (delivered after the ack freed a
	// prefetch slot, never read).
	subA, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	rcA, err := subA.Consume("q", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case d := <-rcA.C():
			if string(d.Body) != fmt.Sprintf("m%d", i) {
				t.Fatalf("session A delivery %d = %q", i, d.Body)
			}
			if i == 0 {
				if err := rcA.Ack(d.Tag); err != nil {
					t.Fatal(err)
				}
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("session A missing delivery %d", i)
		}
	}
	_ = subA.Close()

	// The server requeues A's unacked deliveries ahead of the queued
	// backlog: m1..m4 then m5..m9.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := b.QueueStats("q")
		if err != nil {
			t.Fatal(err)
		}
		if st.Ready == total-1 && st.Unacked == 0 && st.Consumers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session buffer not restored: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Session B drains the buffer: original order, each exactly once,
	// the previously-delivered prefix flagged redelivered.
	subB, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = subB.Close() })
	rcB, err := subB.Consume("q", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < total; i++ {
		select {
		case d := <-rcB.C():
			if string(d.Body) != fmt.Sprintf("m%d", i) {
				t.Fatalf("drain position %d = %q, want m%d (order lost)", i, d.Body, i)
			}
			if redelivered := i <= 4; d.Redelivered != redelivered {
				t.Fatalf("m%d Redelivered = %v, want %v", i, d.Redelivered, redelivered)
			}
			if err := rcB.Ack(d.Tag); err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("drain missing m%d", i)
		}
	}
	select {
	case d := <-rcB.C():
		t.Fatalf("duplicate delivery %q after full drain", d.Body)
	case <-time.After(50 * time.Millisecond):
	}
	st, err := b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != 0 || st.Unacked != 0 {
		t.Fatalf("queue not empty after drain: %+v", st)
	}
}
