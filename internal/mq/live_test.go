package mq

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"
)

func randLivePattern(rng *rand.Rand) string {
	words := []string{"a", "b", "c", "obs", "*", "#"}
	parts := make([]string, 1+rng.Intn(4))
	for i := range parts {
		parts[i] = words[rng.Intn(len(words))]
	}
	return strings.Join(parts, ".")
}

func randLiveKey(rng *rand.Rand) string {
	words := []string{"a", "b", "c", "obs"}
	parts := make([]string, 1+rng.Intn(4))
	for i := range parts {
		parts[i] = words[rng.Intn(len(words))]
	}
	return strings.Join(parts, ".")
}

// drainLive empties a sub's mailbox into body-decoded sequence
// numbers. Fan-out is synchronous with publish, so everything mailed
// is already buffered.
func drainLive(t *testing.T, s *LiveSub) []int {
	t.Helper()
	var got []int
	for {
		select {
		case m := <-s.C():
			n, err := strconv.Atoi(string(m.Body))
			if err != nil {
				t.Fatalf("non-numeric live body %q", m.Body)
			}
			got = append(got, n)
		default:
			return got
		}
	}
}

// TestLiveDeliveryConformance is the delivery-conformance property
// test: for random topic-pattern sets and publish sequences, the
// events a live subscription receives must be exactly the events the
// reference matcher TopicMatch accepts for its patterns — in publish
// order, no duplicates, none missing. Publishes go through both
// Publish and PublishBatch so both hot paths are pinned. Reproduce a
// failure by its seed subtest name.
func TestLiveDeliveryConformance(t *testing.T) {
	const trials = 30
	const nEvents = 200
	for seed := int64(0); seed < trials; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			b := NewBroker()
			defer b.Close()
			if err := b.DeclareExchange("GFX", Topic); err != nil {
				t.Fatal(err)
			}

			nSubs := 1 + rng.Intn(4)
			subs := make([]*LiveSub, nSubs)
			pats := make([][]string, nSubs)
			for i := range subs {
				ps := make([]string, 1+rng.Intn(3))
				for j := range ps {
					ps[j] = randLivePattern(rng)
				}
				s, err := b.SubscribeLive("GFX", ps, LiveSubOptions{Buffer: nEvents})
				if err != nil {
					t.Fatal(err)
				}
				subs[i], pats[i] = s, ps
			}

			keys := make([]string, 0, nEvents)
			for len(keys) < nEvents {
				if rng.Intn(2) == 0 {
					// Single publish.
					k := randLiveKey(rng)
					if _, err := b.Publish("GFX", k, nil, []byte(strconv.Itoa(len(keys)))); err != nil {
						t.Fatal(err)
					}
					keys = append(keys, k)
					continue
				}
				// Batch publish of 1..8 items.
				n := 1 + rng.Intn(8)
				if n > nEvents-len(keys) {
					n = nEvents - len(keys)
				}
				items := make([]PublishItem, n)
				for j := range items {
					k := randLiveKey(rng)
					items[j] = PublishItem{RoutingKey: k, Body: []byte(strconv.Itoa(len(keys)))}
					keys = append(keys, k)
				}
				if _, err := b.PublishBatch("GFX", items); err != nil {
					t.Fatal(err)
				}
			}

			for si, s := range subs {
				var want []int
				for i, k := range keys {
					for _, p := range pats[si] {
						if TopicMatch(p, k) {
							want = append(want, i)
							break
						}
					}
				}
				got := drainLive(t, s)
				if len(got) != len(want) {
					t.Fatalf("sub %d (patterns %v): received %d events, oracle wants %d\ngot=%v\nwant=%v",
						si, pats[si], len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("sub %d (patterns %v): event %d is publish #%d, oracle wants #%d",
							si, pats[si], i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestLiveFanoutAcrossExchangeBindings pins that a live subscription
// taps every exchange the publish traverses, not just the one named
// in Publish: GoFlow clients publish to their private exchange, which
// forwards into the shared GFX exchange over an exchange-to-exchange
// binding, and a dashboard subscribed on GFX must see those messages.
// The second publish exercises the memoized route (the traversed
// exchange list is part of the cache entry).
func TestLiveFanoutAcrossExchangeBindings(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	for _, ex := range []string{"E.c1", "SC", "GFX"} {
		if err := b.DeclareExchange(ex, Topic); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.BindExchange("SC", "E.c1", "#"); err != nil {
		t.Fatal(err)
	}
	if err := b.BindExchange("GFX", "SC", "#"); err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeLive("GFX", []string{"sc.*.obs.*"}, LiveSubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for i := 0; i < 2; i++ { // miss then cache hit
		if _, err := b.Publish("E.c1", "sc.c1.obs.Z1", nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case m := <-sub.C():
			if m.RoutingKey != "sc.c1.obs.Z1" {
				t.Fatalf("routing key %q", m.RoutingKey)
			}
		default:
			t.Fatalf("publish %d did not reach the GFX live subscriber", i)
		}
	}

	// The same message must reach a sub on GFX at most once even
	// though several exchanges were traversed.
	if got := drainLive(t, sub); len(got) != 0 {
		t.Fatalf("duplicate deliveries: %v", got)
	}
}

// stubBudget sheds after a fixed number of full-queue events.
type stubBudget struct {
	fullCalls int
	shedAt    int
}

func (sb *stubBudget) Sent() {}
func (sb *stubBudget) Full() bool {
	sb.fullCalls++
	return sb.fullCalls >= sb.shedAt
}

// TestLiveSlowConsumerDropsThenSheds pins the bounded-mailbox policy:
// a full mailbox drops events (publisher never blocks), and once the
// budget reports exhaustion the subscription is shed — removed from
// the index, Done closed, Shed reported, counters advanced.
func TestLiveSlowConsumerDropsThenSheds(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("GFX", Topic); err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeLive("GFX", []string{"#"}, LiveSubOptions{
		Buffer: 1,
		Budget: &stubBudget{shedAt: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	publish := func() {
		t.Helper()
		if _, err := b.Publish("GFX", "k", nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	publish() // fills the 1-slot mailbox
	publish() // dropped, budget full call #1
	select {
	case <-sub.Done():
		t.Fatal("shed before the budget was exhausted")
	default:
	}
	publish() // dropped, budget full call #2 -> shed
	select {
	case <-sub.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed after budget exhaustion")
	}
	if !sub.Shed() {
		t.Fatal("Shed() = false after budget exhaustion")
	}
	st := sub.Stats()
	if st.Delivered != 1 || st.Dropped != 2 {
		t.Fatalf("sub stats = %+v, want delivered=1 dropped=2", st)
	}
	ls := b.LiveStats()
	if ls.Subscribers != 0 || ls.Shed != 1 || ls.Dropped != 2 || ls.Delivered != 1 {
		t.Fatalf("broker live stats = %+v", ls)
	}

	// A shed sub no longer receives; the buffered event is drainable.
	publish()
	drained := 0
	for {
		select {
		case <-sub.C():
			drained++
			continue
		default:
		}
		break
	}
	if drained != 1 {
		t.Fatalf("drained %d events after shed, want the 1 buffered before it", drained)
	}
}

// TestLiveBatchTokenReplaySkipsFanout pins at-most-once across client
// retries: a PublishBatch replay whose idempotency tokens are inside
// the dedup window must not re-fan events to live subscribers.
func TestLiveBatchTokenReplaySkipsFanout(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("GFX", Topic); err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeLive("GFX", []string{"#"}, LiveSubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	items := []PublishItem{
		{RoutingKey: "k", Body: []byte("0"), Token: "t0"},
		{RoutingKey: "k", Body: []byte("1"), Token: "t1"},
	}
	for i := 0; i < 2; i++ { // original + retry
		if _, err := b.PublishBatch("GFX", items); err != nil {
			t.Fatal(err)
		}
	}
	if got := drainLive(t, sub); len(got) != 2 {
		t.Fatalf("received %v, want exactly the 2 original events", got)
	}
}

// TestLiveSubscribeValidation pins the argument contract and the
// closed-broker path.
func TestLiveSubscribeValidation(t *testing.T) {
	b := NewBroker()
	if _, err := b.SubscribeLive("", []string{"#"}, LiveSubOptions{}); err == nil {
		t.Fatal("empty exchange accepted")
	}
	if _, err := b.SubscribeLive("GFX", nil, LiveSubOptions{}); err == nil {
		t.Fatal("empty pattern set accepted")
	}
	sub, err := b.SubscribeLive("GFX", []string{"#"}, LiveSubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	select {
	case <-sub.Done():
	case <-time.After(time.Second):
		t.Fatal("broker close did not end the live subscription")
	}
	if _, err := b.SubscribeLive("GFX", []string{"#"}, LiveSubOptions{}); err == nil {
		t.Fatal("subscribe on a closed broker accepted")
	}
	sub.Close() // idempotent after broker close
}
