package mq

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property tests on broker routing invariants.

// TestRoutingDeliversExactlyMatchingQueues: for random topic
// topologies, a published message lands in exactly the queues whose
// binding pattern matches its routing key.
func TestRoutingDeliversExactlyMatchingQueues(t *testing.T) {
	words := []string{"SC", "mob1", "mob2", "obs", "feedback", "FR75013", "FR92120", "*", "#"}
	keyWords := []string{"SC", "mob1", "mob2", "obs", "feedback", "FR75013", "FR92120"}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBroker()
		defer b.Close()
		if err := b.DeclareExchange("x", Topic); err != nil {
			return false
		}
		// Random bindings.
		type bindingSpec struct {
			queue   string
			pattern string
		}
		var specs []bindingSpec
		nQueues := 1 + rng.Intn(6)
		for q := 0; q < nQueues; q++ {
			name := fmt.Sprintf("q%d", q)
			if err := b.DeclareQueue(name, QueueOptions{}); err != nil {
				return false
			}
			parts := make([]string, 1+rng.Intn(4))
			for i := range parts {
				parts[i] = words[rng.Intn(len(words))]
			}
			pattern := strings.Join(parts, ".")
			if err := b.BindQueue(name, "x", pattern); err != nil {
				return false
			}
			specs = append(specs, bindingSpec{queue: name, pattern: pattern})
		}
		// Random key.
		parts := make([]string, 1+rng.Intn(4))
		for i := range parts {
			parts[i] = keyWords[rng.Intn(len(keyWords))]
		}
		key := strings.Join(parts, ".")

		// Expected destinations from the reference matcher.
		expected := make(map[string]bool)
		for _, s := range specs {
			if TopicMatch(s.pattern, key) {
				expected[s.queue] = true
			}
		}
		n, err := b.Publish("x", key, nil, []byte("m"))
		if err != nil {
			return false
		}
		if n != len(expected) {
			return false
		}
		for _, s := range specs {
			st, err := b.QueueStats(s.queue)
			if err != nil {
				return false
			}
			want := 0
			if expected[s.queue] {
				want = 1
			}
			if st.Ready != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRoutingConservation: every published message is either routed
// (counted once per destination queue) or unroutable — never lost,
// never duplicated within a queue.
func TestRoutingConservation(t *testing.T) {
	f := func(seed int64, nMsgs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBroker()
		defer b.Close()
		if err := b.DeclareExchange("x", Topic); err != nil {
			return false
		}
		for q := 0; q < 3; q++ {
			name := fmt.Sprintf("q%d", q)
			if err := b.DeclareQueue(name, QueueOptions{}); err != nil {
				return false
			}
			if err := b.BindQueue(name, "x", fmt.Sprintf("k%d.#", q)); err != nil {
				return false
			}
		}
		total := int(nMsgs%50) + 1
		routedSum := 0
		for i := 0; i < total; i++ {
			key := fmt.Sprintf("k%d.m", rng.Intn(5)) // k3/k4 unroutable
			n, err := b.Publish("x", key, nil, []byte{byte(i)})
			if err != nil {
				return false
			}
			routedSum += n
		}
		st := b.Stats()
		if st.Published != uint64(total) {
			return false
		}
		if st.Routed != uint64(routedSum) {
			return false
		}
		// Ready counts across queues equal the routed sum.
		ready := 0
		for q := 0; q < 3; q++ {
			qs, err := b.QueueStats(fmt.Sprintf("q%d", q))
			if err != nil {
				return false
			}
			ready += qs.Ready
		}
		return ready == routedSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
