package mq

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"time"
)

// Resilient client machinery: the paper's deployment lesson is that
// mobile links die constantly, so the middleware client must treat a
// TCP session as disposable. DialResilient wraps the Conn with:
//
//   - automatic reconnect with exponential backoff + seeded jitter
//     and a bounded attempt budget per outage;
//   - a topology journal (exchanges, queues, bindings declared on
//     this conn) replayed on every new transport, so a restarted
//     broker is re-provisioned transparently;
//   - consumer re-attachment: subscriptions are re-issued on the new
//     session and resume from the broker-side buffer (the dead
//     session's unacked deliveries are requeued server-side);
//   - publish retry with per-message idempotency tokens the broker
//     dedupes, so a publish whose response was lost in flight can be
//     re-sent without double-delivering.

// ReconnectConfig tunes a resilient connection. The zero value gets
// sane defaults from applyDefaults.
type ReconnectConfig struct {
	// Dialer opens transports; nil uses a 5s TCP dial. Tests inject
	// fault-wrapped dialers here.
	Dialer func(addr string) (net.Conn, error)
	// MaxAttempts bounds consecutive failed reconnect attempts per
	// outage before the conn fails permanently with ErrClosed.
	// 0 means DefaultMaxAttempts; negative means retry forever.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff
	// between attempts (base, 2*base, 4*base, ... capped at max, each
	// plus up to 50% seeded jitter). The first attempt of an outage
	// is immediate.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the jitter; a fixed seed makes the backoff schedule
	// reproducible. 0 means 1.
	Seed int64
	// PublishRetries bounds how many times one publish is re-sent
	// after transport failures (0 = DefaultPublishRetries).
	PublishRetries int
	// RPCTimeout bounds each request/response exchange; expiry marks
	// the transport dead and triggers recovery — the defense against
	// one-way partitions that black-hole responses
	// (0 = DefaultRPCTimeout).
	RPCTimeout time.Duration
	// Hooks observes recovery events (reconnects, topology replay,
	// publish retries); wire them to metrics with
	// goflow.Metrics.InstrumentConn.
	Hooks ConnHooks
}

// Resilience defaults.
const (
	DefaultMaxAttempts    = 8
	DefaultPublishRetries = 8
	DefaultBackoffBase    = 10 * time.Millisecond
	DefaultBackoffMax     = 2 * time.Second
	DefaultRPCTimeout     = 30 * time.Second
)

func (cfg *ReconnectConfig) applyDefaults() {
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.PublishRetries == 0 {
		cfg.PublishRetries = DefaultPublishRetries
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = DefaultRPCTimeout
	}
}

// ConnHooks observes a resilient connection's recovery events. All
// fields are optional; the zero value is inert.
type ConnHooks struct {
	// Reconnected fires after a reconnect completes (topology
	// replayed, conn usable again) with the number of dial attempts
	// the outage took.
	Reconnected func(attempts int)
	// TopologyReplayed fires once per reconnect with the number of
	// journal entries (declares, bindings) plus consumers replayed.
	TopologyReplayed func(entries int)
	// PublishRetried fires every time a publish frame is re-sent
	// after a transport failure.
	PublishRetried func()
	// FlowPaused / FlowResumed fire when the server asks this
	// connection's publishers to pause / resume for a queue.
	FlowPaused  func(queue string)
	FlowResumed func(queue string)
}

func (h *ConnHooks) reconnected(attempts int) {
	if h != nil && h.Reconnected != nil {
		h.Reconnected(attempts)
	}
}

func (h *ConnHooks) topologyReplayed(n int) {
	if h != nil && h.TopologyReplayed != nil {
		h.TopologyReplayed(n)
	}
}

func (h *ConnHooks) publishRetried() {
	if h != nil && h.PublishRetried != nil {
		h.PublishRetried()
	}
}

func (h *ConnHooks) flowPaused(queue string) {
	if h != nil && h.FlowPaused != nil {
		h.FlowPaused(queue)
	}
}

func (h *ConnHooks) flowResumed(queue string) {
	if h != nil && h.FlowResumed != nil {
		h.FlowResumed(queue)
	}
}

// ConnStats snapshots a connection's recovery counters.
type ConnStats struct {
	// Reconnects counts completed recoveries (transport replaced and
	// topology replayed).
	Reconnects uint64 `json:"reconnects"`
	// ReplayedTopology counts journal entries and consumers replayed
	// across all reconnects.
	ReplayedTopology uint64 `json:"replayedTopology"`
	// PublishRetries counts publish frames re-sent after failures.
	PublishRetries uint64 `json:"publishRetries"`
}

// Stats snapshots the recovery counters.
func (c *Conn) Stats() ConnStats {
	return ConnStats{
		Reconnects:       c.reconnects.Load(),
		ReplayedTopology: c.replayedTopo.Load(),
		PublishRetries:   c.publishRetries.Load(),
	}
}

// SetConnHooks installs recovery-event observers (atomic swap; safe
// while the conn is live).
func (c *Conn) SetConnHooks(h ConnHooks) {
	c.hooks.Store(&h)
}

// DialResilient connects to a broker server with automatic recovery:
// reconnect + backoff, topology replay, consumer re-attachment and
// idempotent publish retry. See ReconnectConfig for tuning.
func DialResilient(addr string, cfg ReconnectConfig) (*Conn, error) {
	cfg.applyDefaults()
	return dialConn(addr, &cfg)
}

// WaitConnected blocks until the conn is connected (nil), permanently
// closed (ErrClosed), or the timeout elapses (ErrReconnecting).
// timeout <= 0 waits indefinitely.
func (c *Conn) WaitConnected(timeout time.Duration) error {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		c.mu.Lock()
		switch c.state {
		case stateClosed:
			c.mu.Unlock()
			return ErrClosed
		case stateConnected:
			c.mu.Unlock()
			return nil
		}
		ch := c.connected
		c.mu.Unlock()
		select {
		case <-ch:
		case <-c.closedCh:
			return ErrClosed
		case <-deadline:
			return ErrReconnecting
		}
	}
}

// mintToken issues a process-unique publish idempotency token.
func (c *Conn) mintToken() string {
	return c.tokenPrefix + "-" + strconv.FormatUint(c.tokenSeq.Add(1), 36)
}

// retryablePublishErr reports whether a failed publish may be
// re-sent: transport-level failures are; broker rejections and a
// permanently closed conn are not.
func retryablePublishErr(err error) bool {
	var be *BrokerError
	if errors.As(err, &be) {
		return false
	}
	return !errors.Is(err, ErrClosed)
}

// publishRPC sends a publish frame. Single-shot conns pass straight
// through; resilient conns stamp an idempotency token, wait out
// reconnects and re-send up to PublishRetries times. The token stays
// constant across retries, so the broker's dedup window guarantees
// at-most-once enqueue even when a response was lost in flight.
func (c *Conn) publishRPC(f *frame) (*frame, error) {
	// Honor broker backpressure before putting more on the wire. Only
	// publishes gate — acks and cancels must always flow, or a paused
	// queue could never drain.
	c.flowGate()
	if c.cfg == nil {
		return c.rpc(f)
	}
	if f.Op == opPublish && f.Token == "" {
		f.Token = c.mintToken()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.publishRetries.Add(1)
			c.hooks.Load().publishRetried()
		}
		if err := c.WaitConnected(0); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last transport error: %v)", err, lastErr)
			}
			return nil, err
		}
		resp, err := c.rpc(f)
		if err == nil {
			return resp, nil
		}
		if !retryablePublishErr(err) {
			return nil, err
		}
		lastErr = err
		if attempt >= c.cfg.PublishRetries {
			return nil, fmt.Errorf("mq: publish failed after %d retries: %w", attempt, lastErr)
		}
	}
}

// journalEntry is one recorded topology declaration, replayed on
// every reconnect.
type journalEntry struct {
	op            string
	exchange      string
	exchangeType  string
	queue         string
	srcExchange   string
	pattern       string
	maxLen        int
	ttlMillis     int64
	exclusive     bool
	highWatermark int
	lowWatermark  int
}

func (e *journalEntry) frame() *frame {
	return &frame{
		Op:            e.op,
		Exchange:      e.exchange,
		ExchangeType:  e.exchangeType,
		Queue:         e.queue,
		SrcExchange:   e.srcExchange,
		Pattern:       e.pattern,
		MaxLen:        e.maxLen,
		TTLMillis:     e.ttlMillis,
		Exclusive:     e.exclusive,
		HighWatermark: e.highWatermark,
		LowWatermark:  e.lowWatermark,
	}
}

// journalAdd records a successful declaration, collapsing exact
// duplicates (idempotent redeclares must not grow the replay).
// Single-shot conns skip journaling entirely.
func (c *Conn) journalAdd(e journalEntry) {
	if c.cfg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, have := range c.journal {
		if have == e {
			return
		}
	}
	c.journal = append(c.journal, e)
}

// journalRemove drops entries equal to e.
func (c *Conn) journalRemove(e journalEntry) {
	if c.cfg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.journal[:0]
	for _, have := range c.journal {
		if have != e {
			kept = append(kept, have)
		}
	}
	c.journal = kept
}

// journalDeleteExchange drops the exchange's declaration and every
// binding that references it.
func (c *Conn) journalDeleteExchange(name string) {
	if c.cfg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.journal[:0]
	for _, e := range c.journal {
		switch {
		case e.op == opDeclareExchange && e.exchange == name:
		case e.op == opBindQueue && e.exchange == name:
		case e.op == opBindExchange && (e.exchange == name || e.srcExchange == name):
		default:
			kept = append(kept, e)
		}
	}
	c.journal = kept
}

// journalDeleteQueue drops the queue's declaration and its bindings.
func (c *Conn) journalDeleteQueue(name string) {
	if c.cfg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.journal[:0]
	for _, e := range c.journal {
		switch {
		case e.op == opDeclareQueue && e.queue == name:
		case e.op == opBindQueue && e.queue == name:
		default:
			kept = append(kept, e)
		}
	}
	c.journal = kept
}

// backoffDelay computes the wait before reconnect attempt n (0-based)
// of an outage: immediate first try, then exponential with jitter.
func backoffDelay(cfg *ReconnectConfig, rng *rand.Rand, attempt int) time.Duration {
	if attempt <= 0 {
		return 0
	}
	d := cfg.BackoffBase << (attempt - 1)
	if d <= 0 || d > cfg.BackoffMax {
		d = cfg.BackoffMax
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// reconnectLoop drives one outage to resolution: dial with backoff,
// replay topology and consumers over the fresh transport, then
// promote it to connected. Exhausting the attempt budget (or Close)
// fails the conn permanently.
func (c *Conn) reconnectLoop(cause error) {
	defer c.wg.Done()
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	dial := c.cfg.Dialer
	if dial == nil {
		dial = defaultDialer
	}
	attempts := 0
	var lastErr error = cause
	for {
		if delay := backoffDelay(c.cfg, rng, attempts); delay > 0 {
			select {
			case <-time.After(delay):
			case <-c.closedCh:
				return
			}
		} else {
			select {
			case <-c.closedCh:
				return
			default:
			}
		}
		attempts++
		nc, err := dial(c.addr)
		if err == nil {
			tr := c.installTransport(nc)
			if tr == nil {
				_ = nc.Close()
				return
			}
			err = c.replayTopology(tr)
			if err == nil {
				c.mu.Lock()
				if c.state == stateClosed {
					c.mu.Unlock()
					_ = nc.Close()
					return
				}
				c.state = stateConnected
				close(c.connected)
				c.mu.Unlock()
				c.reconnects.Add(1)
				c.hooks.Load().reconnected(attempts)
				return
			}
			_ = nc.Close()
			if errors.Is(err, ErrClosed) {
				return
			}
		}
		lastErr = err
		if c.cfg.MaxAttempts > 0 && attempts >= c.cfg.MaxAttempts {
			c.mu.Lock()
			if c.state == stateClosed {
				c.mu.Unlock()
				return
			}
			c.failAllLocked(fmt.Errorf("mq: reconnect gave up after %d attempts (%v): %w", attempts, lastErr, ErrClosed)) // unlocks
			return
		}
	}
}

// replayTopology re-provisions a fresh transport: journal entries in
// declaration order, then consumer re-attachments. The conn stays in
// the reconnecting state throughout, so only this goroutine issues
// RPCs on tr.
func (c *Conn) replayTopology(tr *transport) error {
	c.mu.Lock()
	entries := make([]journalEntry, len(c.journal))
	copy(entries, c.journal)
	rcs := make([]*RemoteConsumer, 0, len(c.consumerSet))
	for rc := range c.consumerSet {
		rcs = append(rcs, rc)
	}
	// Ids from the dead session are meaningless on the new one; the
	// unknown-consumer nack path covers any delivery racing the remap.
	c.consumers = make(map[uint64]*RemoteConsumer)
	c.mu.Unlock()
	// Deterministic re-attach order (map iteration is not).
	sort.Slice(rcs, func(i, j int) bool { return rcs[i].id.Load() < rcs[j].id.Load() })

	replayed := 0
	for i := range entries {
		if _, err := c.transportRPC(tr, entries[i].frame()); err != nil {
			return err
		}
		replayed++
	}
	for _, rc := range rcs {
		resp, err := c.transportRPC(tr, &frame{Op: opConsume, Queue: rc.queue, Prefetch: rc.prefetch})
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.attachConsumerLocked(resp.ConsumerID, rc)
		c.mu.Unlock()
		replayed++
	}
	c.replayedTopo.Add(uint64(replayed))
	c.hooks.Load().topologyReplayed(replayed)
	return nil
}
