package mq

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Live subscriptions: the push half of the live layer. A LiveSub is a
// bounded in-process mailbox attached directly to the broker's publish
// path — no queue, no consumer, no ack. Patterns are the same
// dot-separated topic patterns bindings use ("soundcity.*.obs.Z12",
// "#"), compiled into a per-exchange trie that the publish hot path
// consults after queue routing, so fan-out to ten thousand sockets
// costs one trie walk per traversed exchange rather than a scan of
// the subscriber list.
//
// Delivery is deliberately at-most-once: a full mailbox drops the
// event (counted) instead of blocking the publisher, and a mailbox
// that stays full past its send budget gets the whole subscription
// shed. Clients recover both cases the same way — re-read the cursor
// API for what they missed — which is what makes the stream plus
// catch-up exactly-once end to end (see goflow's live layer and
// DESIGN.md §12).

// ErrLiveClosed reports an operation on a closed live subscription or
// a subscribe on a closed broker.
var ErrLiveClosed = errors.New("mq: live subscription closed")

// SendBudget decides when a persistently-full live mailbox turns from
// dropping events into shedding the subscriber. guard.SendBudget
// implements it; the interface lives here so mq stays free of a guard
// dependency.
type SendBudget interface {
	// Sent records a successful enqueue (the consumer is draining).
	Sent()
	// Full records a failed enqueue and reports whether the
	// subscription should now be shed.
	Full() bool
}

// LiveSubOptions parameterize SubscribeLive.
type LiveSubOptions struct {
	// Buffer is the mailbox capacity (default 256).
	Buffer int
	// Budget is the slow-consumer policy; nil never sheds (events are
	// only ever dropped).
	Budget SendBudget
}

// LiveSubStats snapshots one subscription's counters.
type LiveSubStats struct {
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Shed      bool   `json:"shed"`
}

// LiveSub is one live subscriber: a bounded mailbox fed by the
// publish path. Receive from C(); Done() closes when the subscription
// ends (Close, shed, or broker close). C() is never closed — after
// Done, drain C() for events already mailed and then stop.
type LiveSub struct {
	b        *Broker
	exchange string
	patterns []string

	ch   chan Message
	done chan struct{}

	budget SendBudget

	closed    atomic.Bool
	shedFlag  atomic.Bool
	delivered atomic.Uint64
	dropped   atomic.Uint64

	// nodes are the trie nodes holding this sub, kept for O(patterns)
	// removal. Guarded by b.liveMu.
	nodes []*liveNode
}

// C returns the event mailbox.
func (s *LiveSub) C() <-chan Message { return s.ch }

// Done closes when the subscription is over.
func (s *LiveSub) Done() <-chan struct{} { return s.done }

// Exchange returns the subscribed exchange name.
func (s *LiveSub) Exchange() string { return s.exchange }

// Patterns returns the subscribed topic patterns.
func (s *LiveSub) Patterns() []string { return s.patterns }

// Shed reports whether the broker disconnected this subscriber for
// exceeding its send budget.
func (s *LiveSub) Shed() bool { return s.shedFlag.Load() }

// Stats snapshots the subscription counters.
func (s *LiveSub) Stats() LiveSubStats {
	return LiveSubStats{
		Delivered: s.delivered.Load(),
		Dropped:   s.dropped.Load(),
		Shed:      s.shedFlag.Load(),
	}
}

// Close ends the subscription: it is removed from the fan-out index
// and Done() closes. Idempotent; safe from any goroutine.
func (s *LiveSub) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.b.removeLiveSub(s)
	close(s.done)
}

// liveNode is one segment position in the live-subscription trie —
// the same shape as the binding trie (trie.go) with subscribers at
// the nodes instead of binding destinations.
type liveNode struct {
	children map[string]*liveNode
	star     *liveNode
	hash     *liveNode
	subs     []*LiveSub
}

func (n *liveNode) insert(patWords []string, s *LiveSub) *liveNode {
	cur := n
	for _, w := range patWords {
		switch w {
		case "*":
			if cur.star == nil {
				cur.star = &liveNode{}
			}
			cur = cur.star
		case "#":
			if cur.hash == nil {
				cur.hash = &liveNode{}
			}
			cur = cur.hash
		default:
			if cur.children == nil {
				cur.children = make(map[string]*liveNode)
			}
			next, ok := cur.children[w]
			if !ok {
				next = &liveNode{}
				cur.children[w] = next
			}
			cur = next
		}
	}
	cur.subs = append(cur.subs, s)
	return cur
}

func (n *liveNode) remove(s *LiveSub) {
	for i, sub := range n.subs {
		if sub == s {
			last := len(n.subs) - 1
			n.subs[i] = n.subs[last]
			n.subs[last] = nil
			n.subs = n.subs[:last]
			return
		}
	}
}

// match mirrors trieNode.match: a sub reachable through several
// wildcard paths is emitted more than once; the fan-out deduplicates.
func (n *liveNode) match(key []string, emit func(*LiveSub)) {
	if len(key) == 0 {
		for _, s := range n.subs {
			emit(s)
		}
		if n.hash != nil {
			n.hash.match(nil, emit)
		}
		return
	}
	if c, ok := n.children[key[0]]; ok {
		c.match(key[1:], emit)
	}
	if n.star != nil {
		n.star.match(key[1:], emit)
	}
	if n.hash != nil {
		for i := 0; i <= len(key); i++ {
			n.hash.match(key[i:], emit)
		}
	}
}

// LiveHooks observes live fan-out events for metrics. Unlike Hooks
// these are installed separately (SetLiveHooks) so instrumenting the
// live layer does not race with or replace broker-wide hooks.
type LiveHooks struct {
	// Fanout fires once per published message while live subscribers
	// exist, with the number of mailboxes reached and the fan-out wall
	// time (trie match + enqueues).
	Fanout func(subs int, d time.Duration)
	// Delivered fires per successful mailbox enqueue.
	Delivered func()
	// Dropped fires per event dropped on a full mailbox.
	Dropped func()
	// Shed fires when a subscriber exceeds its send budget and is
	// disconnected.
	Shed func()
}

// SetLiveHooks installs live fan-out observers (zero value detaches).
func (b *Broker) SetLiveHooks(h LiveHooks) { b.liveHooks.Store(&h) }

// LiveStats aggregates the broker's live-subscription counters.
type LiveStats struct {
	// Subscribers is the number of live subscriptions currently
	// attached.
	Subscribers int `json:"subscribers"`
	// Delivered counts events enqueued into live mailboxes.
	Delivered uint64 `json:"delivered"`
	// Dropped counts events dropped on full mailboxes.
	Dropped uint64 `json:"dropped"`
	// Shed counts subscriptions disconnected for exceeding their send
	// budget.
	Shed uint64 `json:"shed"`
}

// LiveStats snapshots the live-subscription counters.
func (b *Broker) LiveStats() LiveStats {
	return LiveStats{
		Subscribers: int(b.liveCount.Load()),
		Delivered:   b.liveDelivered.Load(),
		Dropped:     b.liveDropped.Load(),
		Shed:        b.liveShed.Load(),
	}
}

// SubscribeLive attaches a live subscriber to an exchange: every
// message that traverses the exchange (published to it directly or
// forwarded into it over exchange-to-exchange bindings) and matches
// one of the patterns is mailed to the subscription, in publish order,
// at most once per message. The exchange does not need to exist yet —
// a subscription is a tap on the name, not a binding.
func (b *Broker) SubscribeLive(exchange string, patterns []string, opts LiveSubOptions) (*LiveSub, error) {
	if exchange == "" {
		return nil, errors.New("mq: live subscribe needs an exchange")
	}
	if len(patterns) == 0 {
		return nil, errors.New("mq: live subscribe needs at least one pattern")
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 256
	}
	s := &LiveSub{
		b:        b,
		exchange: exchange,
		patterns: append([]string(nil), patterns...),
		ch:       make(chan Message, buffer),
		done:     make(chan struct{}),
		budget:   opts.Budget,
	}
	b.mu.RLock()
	closed := b.closed
	b.mu.RUnlock()
	if closed {
		return nil, ErrBrokerClosed
	}
	b.liveMu.Lock()
	if b.liveTries == nil {
		b.liveTries = make(map[string]*liveNode)
	}
	root := b.liveTries[exchange]
	if root == nil {
		root = &liveNode{}
		b.liveTries[exchange] = root
	}
	var scratch []string
	for _, p := range s.patterns {
		scratch = splitWordsInto(scratch[:0], p)
		s.nodes = append(s.nodes, root.insert(scratch, s))
	}
	if b.liveSubs == nil {
		b.liveSubs = make(map[*LiveSub]struct{})
	}
	b.liveSubs[s] = struct{}{}
	b.liveCount.Add(1)
	b.liveMu.Unlock()
	return s, nil
}

// removeLiveSub detaches a subscription from the fan-out index.
func (b *Broker) removeLiveSub(s *LiveSub) {
	b.liveMu.Lock()
	if _, ok := b.liveSubs[s]; ok {
		delete(b.liveSubs, s)
		b.liveCount.Add(-1)
		for _, n := range s.nodes {
			n.remove(s)
		}
		s.nodes = nil
	}
	b.liveMu.Unlock()
}

// closeLiveSubs ends every live subscription; called by Broker.Close.
func (b *Broker) closeLiveSubs() {
	b.liveMu.Lock()
	subs := make([]*LiveSub, 0, len(b.liveSubs))
	for s := range b.liveSubs {
		subs = append(subs, s)
	}
	b.liveMu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// liveScratch is the fan-out path's reusable state: the split key,
// the per-message dedup set and the shed list.
type liveScratch struct {
	keyWords []string
	seen     map[*LiveSub]struct{}
	toShed   []*LiveSub
}

var liveScratchPool = sync.Pool{
	New: func() any {
		return &liveScratch{seen: make(map[*LiveSub]struct{}, 8)}
	},
}

func (sc *liveScratch) reset() {
	sc.keyWords = sc.keyWords[:0]
	sc.toShed = sc.toShed[:0]
	clear(sc.seen)
}

// fanoutLive mails msg to every live subscriber whose pattern matches
// the routing key on any of the exchanges the publish traversed.
// Called on the publish path after queue routing; when no live
// subscribers exist anywhere it costs one atomic load.
//
// Enqueue is non-blocking: a full mailbox drops the event and asks
// the sub's budget whether to shed. Shedding (LiveSub.Close) needs
// the live write lock, so it is deferred until after the read lock is
// released.
func (b *Broker) fanoutLive(exchanges []string, msg *Message) {
	if b.liveCount.Load() == 0 {
		return
	}
	h := b.liveHooks.Load()
	var start time.Time
	if h != nil && h.Fanout != nil {
		start = time.Now()
	}
	sc := liveScratchPool.Get().(*liveScratch)
	sc.keyWords = splitWordsInto(sc.keyWords[:0], msg.RoutingKey)
	reached := 0
	b.liveMu.RLock()
	for _, exName := range exchanges {
		root := b.liveTries[exName]
		if root == nil {
			continue
		}
		root.match(sc.keyWords, func(s *LiveSub) {
			if _, dup := sc.seen[s]; dup {
				return
			}
			sc.seen[s] = struct{}{}
			if s.closed.Load() {
				return
			}
			reached++
			select {
			case s.ch <- *msg:
				s.delivered.Add(1)
				b.liveDelivered.Add(1)
				if s.budget != nil {
					s.budget.Sent()
				}
				if h != nil && h.Delivered != nil {
					h.Delivered()
				}
			default:
				s.dropped.Add(1)
				b.liveDropped.Add(1)
				if h != nil && h.Dropped != nil {
					h.Dropped()
				}
				if s.budget != nil && s.budget.Full() {
					sc.toShed = append(sc.toShed, s)
				}
			}
		})
	}
	b.liveMu.RUnlock()
	for _, s := range sc.toShed {
		// Close takes the live write lock; mark the shed before Done
		// closes so the subscriber can tell shed from a plain close.
		if s.shedFlag.CompareAndSwap(false, true) {
			b.liveShed.Add(1)
			if h != nil && h.Shed != nil {
				h.Shed()
			}
		}
		s.Close()
	}
	if h != nil && h.Fanout != nil {
		h.Fanout(reached, time.Since(start))
	}
	sc.reset()
	liveScratchPool.Put(sc)
}
