package mq

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTopicMatch(t *testing.T) {
	tests := []struct {
		pattern string
		key     string
		want    bool
	}{
		// Exact matches.
		{"a.b.c", "a.b.c", true},
		{"a.b.c", "a.b.d", false},
		{"a.b", "a.b.c", false},
		{"a.b.c", "a.b", false},
		{"", "", true},
		{"", "a", false},
		// Single-word wildcard.
		{"a.*.c", "a.b.c", true},
		{"a.*.c", "a.xyz.c", true},
		{"a.*.c", "a.b.d", false},
		{"a.*.c", "a.c", false},     // * needs exactly one word
		{"a.*.c", "a.b.b.c", false}, // * matches exactly one
		{"*", "a", true},
		{"*", "a.b", false},
		{"*.*", "a.b", true},
		// Multi-word wildcard.
		{"#", "", true},
		{"#", "a", true},
		{"#", "a.b.c", true},
		{"a.#", "a", true},
		{"a.#", "a.b.c.d", true},
		{"a.#", "b.c", false},
		{"#.c", "c", true},
		{"#.c", "a.b.c", true},
		{"#.c", "a.b", false},
		{"a.#.c", "a.c", true},
		{"a.#.c", "a.x.y.c", true},
		{"a.#.c", "a.x.y", false},
		{"#.#", "a", true},
		// Crowd-sensing keys from the paper's topology.
		{"SC.client1.#", "SC.client1.obs.FR75013", true},
		{"SC.client1.#", "SC.client2.obs.FR75013", false},
		{"SC.*.feedback.FR75013", "SC.mob1.feedback.FR75013", true},
		{"SC.*.feedback.FR75013", "SC.mob1.feedback.FR92120", false},
		{"SC.*.*.FR75013", "SC.mob1.journey.FR75013", true},
	}
	for _, tt := range tests {
		t.Run(tt.pattern+"~"+tt.key, func(t *testing.T) {
			if got := TopicMatch(tt.pattern, tt.key); got != tt.want {
				t.Fatalf("TopicMatch(%q, %q) = %v, want %v", tt.pattern, tt.key, got, tt.want)
			}
		})
	}
}

// TestTopicMatchLiteralProperty: a pattern without wildcards matches
// exactly itself.
func TestTopicMatchLiteralProperty(t *testing.T) {
	f := func(words []uint8) bool {
		parts := make([]string, 0, len(words)%6)
		for i := 0; i < len(words)%6; i++ {
			parts = append(parts, string(rune('a'+int(words[i])%26)))
		}
		key := strings.Join(parts, ".")
		return TopicMatch(key, key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTopicMatchHashUniversal: "#" matches every key.
func TestTopicMatchHashUniversal(t *testing.T) {
	f := func(words []uint8) bool {
		parts := make([]string, 0, len(words)%8)
		for i := 0; i < len(words)%8; i++ {
			parts = append(parts, string(rune('a'+int(words[i])%26)))
		}
		return TopicMatch("#", strings.Join(parts, "."))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTopicMatchStarArity: a pattern of n stars matches exactly keys
// of n words.
func TestTopicMatchStarArity(t *testing.T) {
	for n := 1; n <= 5; n++ {
		pattern := strings.TrimSuffix(strings.Repeat("*.", n), ".")
		for k := 1; k <= 6; k++ {
			key := strings.TrimSuffix(strings.Repeat("w.", k), ".")
			want := n == k
			if got := TopicMatch(pattern, key); got != want {
				t.Fatalf("TopicMatch(%q, %q) = %v, want %v", pattern, key, got, want)
			}
		}
	}
}
