package mq

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
)

// BenchmarkLiveFanout10k measures per-event fan-out latency with 10k
// connected watchers partitioned over 100 zones (100 subscribers per
// zone, so each publish matches 1% of the fleet — the noisemap
// dashboard shape). Drainer goroutines keep mailboxes moving; any
// drops or sheds are reported as metrics so regressions in mailbox
// sizing show up in the numbers, not as silent losses.
func BenchmarkLiveFanout10k(b *testing.B) {
	const (
		nSubs  = 10000
		nZones = 100
	)
	br := NewBroker()
	defer br.Close()
	if err := br.DeclareExchange("GFX", Topic); err != nil {
		b.Fatal(err)
	}

	var wg sync.WaitGroup
	quit := make(chan struct{})
	for i := 0; i < nSubs; i++ {
		pattern := fmt.Sprintf("sc.*.obs.Z%d", i%nZones)
		s, err := br.SubscribeLive("GFX", []string{pattern}, LiveSubOptions{Buffer: 1024})
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(s *LiveSub) {
			defer wg.Done()
			for {
				select {
				case <-s.C():
				case <-quit:
					return
				}
			}
		}(s)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := "sc.c1.obs.Z" + strconv.Itoa(i%nZones)
		if _, err := br.Publish("GFX", key, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(quit)
	wg.Wait()

	st := br.LiveStats()
	b.ReportMetric(float64(st.Delivered)/float64(b.N), "delivered/event")
	b.ReportMetric(float64(st.Dropped), "dropped")
	b.ReportMetric(float64(st.Shed), "shed")
}
