package mq

import "strings"

// Compiled routing indexes. Every exchange keeps, next to its raw
// binding list, a structure that resolves "which destinations does
// this routing key reach" without scanning the bindings one by one:
//
//   - direct exchanges index bindings by exact pattern in a map, so a
//     publish is one map lookup;
//   - fanout exchanges keep the flat destination list;
//   - topic exchanges compile their patterns into a trie keyed by
//     dot-segment, so a publish walks O(len(key words)) trie edges
//     instead of running TopicMatch against every binding.
//
// The trie is the pre-computed subscription index the paper's
// scalability lesson calls for (§6, "do scale the server side"): with
// one exchange and a handful of bindings per mobile client, the naive
// scan makes routing cost grow with the fleet while the trie keeps it
// proportional to the key length.
//
// TopicMatch (topic.go) remains the reference matcher; the property
// tests in trie_test.go assert the trie agrees with it on random
// patterns, including the `#` edge cases.

// dest is one binding destination: exactly one of toQueue/toExchange
// is set. Destinations are held by name, not pointer, so compiled
// indexes never outlive a deleted queue or exchange — names resolve
// against the live broker maps at publish time.
type dest struct {
	toQueue    string
	toExchange string
}

// trieNode is one segment position in the compiled topic trie.
// children holds literal-word edges; star is the "*" edge (exactly one
// word); hash is the "#" edge (zero or more words). dests are the
// bindings whose full pattern ends at this node.
type trieNode struct {
	children map[string]*trieNode
	star     *trieNode
	hash     *trieNode
	dests    []dest
}

// insert adds a binding's destination under its pattern words.
func (n *trieNode) insert(patWords []string, d dest) {
	cur := n
	for _, w := range patWords {
		switch w {
		case "*":
			if cur.star == nil {
				cur.star = &trieNode{}
			}
			cur = cur.star
		case "#":
			if cur.hash == nil {
				cur.hash = &trieNode{}
			}
			cur = cur.hash
		default:
			if cur.children == nil {
				cur.children = make(map[string]*trieNode)
			}
			next, ok := cur.children[w]
			if !ok {
				next = &trieNode{}
				cur.children[w] = next
			}
			cur = next
		}
	}
	cur.dests = append(cur.dests, d)
}

// match walks the trie over the key words and emits every destination
// whose pattern accepts the key. A destination reachable through
// several wildcard paths (e.g. "#.#") is emitted more than once; the
// caller deduplicates, which it must do anyway across bindings.
func (n *trieNode) match(key []string, emit func(dest)) {
	if len(key) == 0 {
		for _, d := range n.dests {
			emit(d)
		}
		// "#" accepts zero words, so trailing hash edges still
		// terminate here.
		if n.hash != nil {
			n.hash.match(nil, emit)
		}
		return
	}
	if c, ok := n.children[key[0]]; ok {
		c.match(key[1:], emit)
	}
	if n.star != nil {
		n.star.match(key[1:], emit)
	}
	if n.hash != nil {
		// "#" absorbs any number of leading words, including none.
		for i := 0; i <= len(key); i++ {
			n.hash.match(key[i:], emit)
		}
	}
}

// exIndex is an exchange's compiled routing index. Only the field for
// the exchange's type is populated.
type exIndex struct {
	all    []dest           // Fanout: every destination
	direct map[string][]dest // Direct: exact pattern -> destinations
	root   *trieNode        // Topic: compiled pattern trie
}

// newExIndex compiles the binding list for an exchange type.
func newExIndex(typ ExchangeType, bindings []binding) exIndex {
	var idx exIndex
	switch typ {
	case Fanout:
		idx.all = make([]dest, 0, len(bindings))
	case Direct:
		idx.direct = make(map[string][]dest, len(bindings))
	case Topic:
		idx.root = &trieNode{}
	}
	for _, bd := range bindings {
		idx.insert(typ, bd)
	}
	return idx
}

// insert adds one binding to the compiled index.
func (idx *exIndex) insert(typ ExchangeType, bd binding) {
	d := dest{toQueue: bd.toQueue, toExchange: bd.toExchange}
	switch typ {
	case Fanout:
		idx.all = append(idx.all, d)
	case Direct:
		idx.direct[bd.pattern] = append(idx.direct[bd.pattern], d)
	case Topic:
		idx.root.insert(splitWords(bd.pattern), d)
	}
}

// match emits every destination the key reaches on this exchange.
// keyWords is the pre-split key (shared scratch); key the raw string
// for the direct map lookup.
func (ex *exchange) match(key string, keyWords []string, emit func(dest)) {
	switch ex.typ {
	case Fanout:
		for _, d := range ex.idx.all {
			emit(d)
		}
	case Direct:
		for _, d := range ex.idx.direct[key] {
			emit(d)
		}
	case Topic:
		ex.idx.root.match(keyWords, emit)
	}
}

// reindex recompiles the exchange index from its binding list; called
// under the broker write lock after bindings are removed. Additions go
// through addBinding, which inserts incrementally.
func (ex *exchange) reindex() {
	ex.idx = newExIndex(ex.typ, ex.bindings)
}

// addBinding appends a binding and updates the compiled index in
// place (no full rebuild: provisioning N clients stays O(N), not
// O(N²), on the shared app exchange).
func (ex *exchange) addBinding(bd binding) {
	ex.bindings = append(ex.bindings, bd)
	ex.idx.insert(ex.typ, bd)
}

// splitWordsInto splits a routing key into dst (reused scratch) to
// keep the resolve path free of per-publish slice allocations.
func splitWordsInto(dst []string, s string) []string {
	if s == "" {
		return dst
	}
	for {
		i := strings.IndexByte(s, '.')
		if i < 0 {
			return append(dst, s)
		}
		dst = append(dst, s[:i])
		s = s[i+1:]
	}
}
