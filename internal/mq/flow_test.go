package mq

import (
	"bytes"
	"log"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueueWatermarkTransitions drives the ready depth across the
// watermarks broker-side and checks the hook + subscription events.
func TestQueueWatermarkTransitions(t *testing.T) {
	b := NewBroker()
	var paused, resumed atomic.Int64
	b.SetHooks(Hooks{
		FlowPaused:  func(q string) { paused.Add(1) },
		FlowResumed: func(q string) { resumed.Add(1) },
	})
	sub := b.SubscribeFlow()
	defer b.UnsubscribeFlow(sub)

	if err := b.DeclareExchange("x", Direct); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{HighWatermark: 4, LowWatermark: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", "k"); err != nil {
		t.Fatal(err)
	}

	// 3 messages: below the high watermark, no pause.
	for i := 0; i < 3; i++ {
		if _, err := b.Publish("x", "k", nil, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	if got := paused.Load(); got != 0 {
		t.Fatalf("paused fired %d times below watermark", got)
	}
	// 4th message reaches the high watermark: one pause.
	if _, err := b.Publish("x", "k", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if got := paused.Load(); got != 1 {
		t.Fatalf("paused fired %d times at watermark, want 1", got)
	}
	if got := b.PausedQueues(); len(got) != 1 || got[0] != "q" {
		t.Fatalf("PausedQueues = %v, want [q]", got)
	}
	// More publishes while paused do not re-fire.
	if _, err := b.Publish("x", "k", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if got := paused.Load(); got != 1 {
		t.Fatalf("paused re-fired while already paused: %d", got)
	}

	// Drain via Get+Ack down to the low watermark: one resume.
	for i := 0; i < 3; i++ {
		d, found, err := b.Get("q")
		if err != nil || !found {
			t.Fatalf("get %d: found=%v err=%v", i, found, err)
		}
		if err := b.AckGet("q", d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	if got := resumed.Load(); got != 1 {
		t.Fatalf("resumed fired %d times at low watermark, want 1", got)
	}
	if got := b.PausedQueues(); len(got) != 0 {
		t.Fatalf("PausedQueues after resume = %v, want empty", got)
	}

	// The subscription coalesced to the latest state: resumed.
	select {
	case <-sub.C():
	default:
		t.Fatal("flow subscription never signalled")
	}
	events := sub.Drain()
	if len(events) != 1 || events[0].Queue != "q" || events[0].Paused {
		t.Fatalf("coalesced events = %+v, want [{q false}]", events)
	}
}

// TestFlowRoundTripOnWire proves the pause/resume round-trips to a
// client: the publisher observes FlowPaused at the high watermark and
// FlowResumed after the consumer drains to the low watermark.
func TestFlowRoundTripOnWire(t *testing.T) {
	b := NewBroker()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pub, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pub.SetFlowWait(time.Millisecond) // the test asserts state, not blocking

	if err := pub.DeclareExchange("x", Direct); err != nil {
		t.Fatal(err)
	}
	if err := pub.DeclareQueue("q", QueueOptions{HighWatermark: 8, LowWatermark: 4}); err != nil {
		t.Fatal(err)
	}
	if err := pub.BindQueue("q", "x", "k"); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 8; i++ {
		if _, err := pub.Publish("x", "k", nil, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "publisher observes pause", func() bool {
		q := pub.FlowPausedQueues()
		return len(q) == 1 && q[0] == "q"
	})

	// Drain via Get/Ack on a second connection until the low watermark.
	drain, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer drain.Close()
	for i := 0; i < 4; i++ {
		d, found, err := drain.Get("q")
		if err != nil || !found {
			t.Fatalf("get %d: found=%v err=%v", i, found, err)
		}
		if err := drain.Ack("q", d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "publisher observes resume", func() bool {
		return len(pub.FlowPausedQueues()) == 0
	})
}

// TestFlowSnapshotOnConnect: a connection dialed while a queue is
// already paused learns the state without waiting for a transition.
func TestFlowSnapshotOnConnect(t *testing.T) {
	b := NewBroker()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := b.DeclareExchange("x", Direct); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{HighWatermark: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", "k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Publish("x", "k", nil, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.PausedQueues(); len(got) != 1 {
		t.Fatalf("queue not paused broker-side: %v", got)
	}

	late, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	waitFor(t, "late connection got the snapshot", func() bool {
		q := late.FlowPausedQueues()
		return len(q) == 1 && q[0] == "q"
	})
}

// TestFlowGateBlocksPublish: with a long flow wait, a publish issued
// while paused completes only after the resume arrives.
func TestFlowGateBlocksPublish(t *testing.T) {
	b := NewBroker()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pub, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pub.SetFlowWait(30 * time.Second)

	if err := pub.DeclareExchange("x", Direct); err != nil {
		t.Fatal(err)
	}
	if err := pub.DeclareQueue("q", QueueOptions{HighWatermark: 2, LowWatermark: 1}); err != nil {
		t.Fatal(err)
	}
	if err := pub.BindQueue("q", "x", "k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := pub.Publish("x", "k", nil, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "pause observed", func() bool { return len(pub.FlowPausedQueues()) == 1 })

	published := make(chan error, 1)
	go func() {
		_, err := pub.Publish("x", "k", nil, []byte("gated"))
		published <- err
	}()
	select {
	case err := <-published:
		t.Fatalf("publish completed while paused (err=%v), want gated", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Drain to the low watermark; the gated publish must complete.
	drain, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer drain.Close()
	d, found, err := drain.Get("q")
	if err != nil || !found {
		t.Fatalf("get: found=%v err=%v", found, err)
	}
	if err := drain.Ack("q", d.Tag); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-published:
		if err != nil {
			t.Fatalf("gated publish failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gated publish never completed after resume")
	}
}

// TestOverflowHookAndRateLimitedWarn exercises the MaxLen overflow
// accounting: the Overflowed hook fires per drop and the log warn is
// rate-limited to one line per queue per minute.
func TestOverflowHookAndRateLimitedWarn(t *testing.T) {
	b := NewBroker()
	var overflowed atomic.Int64
	b.SetHooks(Hooks{Overflowed: func(q string) { overflowed.Add(1) }})

	if err := b.DeclareExchange("x", Direct); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{MaxLen: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", "k"); err != nil {
		t.Fatal(err)
	}

	// Virtual clock on the queue so the warn window is deterministic.
	b.mu.RLock()
	q := b.queues["q"]
	b.mu.RUnlock()
	now := time.Unix(1_700_000_000, 0)
	q.mu.Lock()
	q.now = func() time.Time { return now }
	q.mu.Unlock()

	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	publishN := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := b.Publish("x", "k", nil, []byte("m")); err != nil {
				t.Fatal(err)
			}
		}
	}

	publishN(5) // 3 overflow drops inside one minute
	if got := overflowed.Load(); got != 3 {
		t.Fatalf("Overflowed fired %d times, want 3", got)
	}
	if got := strings.Count(buf.String(), "overflow"); got != 1 {
		t.Fatalf("overflow warned %d times within a minute, want 1:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), `queue "q"`) {
		t.Fatalf("warn does not name the queue:\n%s", buf.String())
	}

	// Advance past the window: next overflow warns again, carrying the
	// accumulated drop count.
	now = now.Add(61 * time.Second)
	publishN(2)
	if got := strings.Count(buf.String(), "overflow"); got != 2 {
		t.Fatalf("overflow warned %d times across windows, want 2:\n%s", got, buf.String())
	}
}

// TestWatermarkDefaults checks LowWatermark derivation.
func TestWatermarkDefaults(t *testing.T) {
	q := newQueue("q", QueueOptions{HighWatermark: 10}, nil, nil)
	if q.opts.LowWatermark != 5 {
		t.Fatalf("default LowWatermark = %d, want 5", q.opts.LowWatermark)
	}
	q = newQueue("q", QueueOptions{HighWatermark: 4, LowWatermark: 9}, nil, nil)
	if q.opts.LowWatermark != 3 {
		t.Fatalf("clamped LowWatermark = %d, want 3", q.opts.LowWatermark)
	}
	q = newQueue("q", QueueOptions{HighWatermark: 1}, nil, nil)
	if q.opts.LowWatermark != 0 {
		t.Fatalf("LowWatermark for HW=1 = %d, want 0", q.opts.LowWatermark)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
