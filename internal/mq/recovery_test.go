package mq

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Recovery-path tests: typed lifecycle errors, rpc-racing-close,
// reconnect with topology replay, consumer re-attachment, idempotent
// publish retry, reconnect latency, and goroutine hygiene.

// bouncer is a dialer that records every transport it opens so tests
// can kill the current one and force a reconnect.
type bouncer struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (b *bouncer) dial(addr string) (net.Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.conns = append(b.conns, nc)
	b.mu.Unlock()
	return nc, nil
}

func (b *bouncer) killCurrent() {
	b.mu.Lock()
	nc := b.conns[len(b.conns)-1]
	b.mu.Unlock()
	_ = nc.Close()
}

func (b *bouncer) dials() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.conns)
}

// dialResilientTest opens a resilient conn with fast test timings and
// a hook channel that signals completed reconnects.
func dialResilientTest(t *testing.T, s *Server, b *bouncer, tweak func(*ReconnectConfig)) (*Conn, chan int) {
	t.Helper()
	reconnected := make(chan int, 16)
	cfg := ReconnectConfig{
		Dialer:      b.dial,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Seed:        1,
		RPCTimeout:  2 * time.Second,
		Hooks:       ConnHooks{Reconnected: func(attempts int) { reconnected <- attempts }},
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := DialResilient(s.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c, reconnected
}

func waitReconnected(t *testing.T, ch chan int) int {
	t.Helper()
	select {
	case attempts := <-ch:
		return attempts
	case <-time.After(5 * time.Second):
		t.Fatal("reconnect did not complete within 5s")
		return 0
	}
}

func declareTopology(t *testing.T, c *Conn) {
	t.Helper()
	if err := c.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
}

func TestClosedConnReturnsTypedErrors(t *testing.T) {
	_, s := startServer(t)
	c := dialTest(t, s)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("x", "k", nil, []byte("m")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish after Close: %v, want ErrClosed", err)
	}
	if err := c.DeclareExchange("x", Fanout); !errors.Is(err, ErrClosed) {
		t.Fatalf("DeclareExchange after Close: %v, want ErrClosed", err)
	}
	if _, err := c.Consume("q", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Consume after Close: %v, want ErrClosed", err)
	}
	if _, _, err := c.Get("q"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: %v, want ErrClosed", err)
	}
	if err := c.WaitConnected(10 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitConnected after Close: %v, want ErrClosed", err)
	}
	if err := c.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Err after Close: %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSingleShotTransportDeathFailsClosed(t *testing.T) {
	b := NewBroker()
	s, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := c.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	s.Close() // kills the transport under the single-shot conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Publish("x", "k", nil, []byte("m"))
		if errors.Is(err, ErrClosed) {
			break
		}
		if err == nil || time.Now().After(deadline) {
			t.Fatalf("Publish on dead single-shot conn: %v, want ErrClosed", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Err(); err == nil {
		t.Fatal("Err() = nil after transport death")
	}
}

func TestReconnectingConnFailsFastTyped(t *testing.T) {
	_, s := startServer(t)
	b := &bouncer{}
	gate := make(chan struct{})
	var dials atomic.Int32
	c, reconnected := dialResilientTest(t, s, b, func(cfg *ReconnectConfig) {
		inner := cfg.Dialer
		cfg.Dialer = func(addr string) (net.Conn, error) {
			if dials.Add(1) > 1 {
				<-gate // hold the conn in the reconnecting state
			}
			return inner(addr)
		}
	})
	declareTopology(t, c)
	b.killCurrent()

	// While the redial is gated, RPCs must fail fast with
	// ErrReconnecting — not hang, not panic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.DeclareExchange("y", Fanout)
		if errors.Is(err, ErrReconnecting) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("DeclareExchange during outage: %v, want ErrReconnecting", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err() during reconnect = %v, want nil (conn still alive)", err)
	}
	close(gate)
	waitReconnected(t, reconnected)
	if err := c.DeclareExchange("y", Fanout); err != nil {
		t.Fatalf("declare after recovery: %v", err)
	}
}

func TestRPCRacingCloseNoPanicNoHang(t *testing.T) {
	_, s := startServer(t)
	b := &bouncer{}
	c, _ := dialResilientTest(t, s, b, nil)
	declareTopology(t, c)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				_, err := c.Publish("x", "k", nil, []byte(fmt.Sprintf("g%d-%d", g, i)))
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrReconnecting) {
						t.Errorf("racing publish: unexpected error %v", err)
					}
					return
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("Close during racing publishes: %v", err)
	}
	wg.Wait() // must not hang
	if _, err := c.Publish("x", "k", nil, []byte("after")); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish after racing close: %v, want ErrClosed", err)
	}
}

func TestReconnectReplaysTopologyAndConsumers(t *testing.T) {
	_, s := startServer(t)
	b := &bouncer{}
	c, reconnected := dialResilientTest(t, s, b, nil)
	declareTopology(t, c)
	rc, err := c.Consume("q", 4)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Publish("x", "k", nil, []byte("before")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-rc.C():
		if string(d.Body) != "before" {
			t.Fatalf("got %q", d.Body)
		}
		if err := rc.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery before bounce")
	}

	b.killCurrent()
	attempts := waitReconnected(t, reconnected)
	if attempts < 1 {
		t.Fatalf("reconnect reported %d attempts", attempts)
	}

	// The same exchange/queue/binding and the same consumer must work
	// on the new transport without any re-declaration by the caller.
	if _, err := c.Publish("x", "k", nil, []byte("after")); err != nil {
		t.Fatalf("publish after reconnect: %v", err)
	}
	select {
	case d := <-rc.C():
		if string(d.Body) != "after" {
			t.Fatalf("got %q after reconnect", d.Body)
		}
		if err := rc.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("consumer did not survive the reconnect")
	}

	st := c.Stats()
	if st.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", st.Reconnects)
	}
	// 3 journal entries (exchange, queue, binding) + 1 consumer.
	if st.ReplayedTopology != 4 {
		t.Fatalf("ReplayedTopology = %d, want 4", st.ReplayedTopology)
	}
	if b.dials() != 2 {
		t.Fatalf("dialed %d transports, want 2", b.dials())
	}
}

func TestReconnectRedeliversUnackedInOrder(t *testing.T) {
	_, s := startServer(t)
	b := &bouncer{}
	c, reconnected := dialResilientTest(t, s, b, nil)
	declareTopology(t, c)
	rc, err := c.Consume("q", 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := c.Publish("x", "k", nil, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Receive everything but ack nothing: the deliveries stay unacked
	// in the dying session.
	for i := 0; i < n; i++ {
		select {
		case d := <-rc.C():
			if string(d.Body) != fmt.Sprintf("m%d", i) {
				t.Fatalf("pre-bounce delivery %d = %q", i, d.Body)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("missing pre-bounce delivery %d", i)
		}
	}

	b.killCurrent()
	waitReconnected(t, reconnected)

	// The server requeued the dead session's unacked messages; the
	// re-attached consumer must get all of them, redelivered, in the
	// original publish order, exactly once.
	for i := 0; i < n; i++ {
		select {
		case d := <-rc.C():
			if string(d.Body) != fmt.Sprintf("m%d", i) {
				t.Fatalf("redelivery %d = %q, want m%d (order lost)", i, d.Body, i)
			}
			if !d.Redelivered {
				t.Fatalf("redelivery %d not flagged Redelivered", i)
			}
			if err := rc.Ack(d.Tag); err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("missing redelivery %d", i)
		}
	}
	select {
	case d := <-rc.C():
		t.Fatalf("duplicate delivery %q", d.Body)
	case <-time.After(50 * time.Millisecond):
	}
}

// readHole wraps a net.Conn so the test can black-hole the read
// direction: requests keep flowing, responses vanish — the lost-reply
// scenario idempotency tokens exist for.
type readHole struct {
	net.Conn
	block     atomic.Bool
	closeOnce sync.Once
	closed    chan struct{}
}

func (h *readHole) Read(b []byte) (int, error) {
	n, err := h.Conn.Read(b)
	if h.block.Load() {
		<-h.closed
		return 0, io.EOF
	}
	return n, err
}

func (h *readHole) Close() error {
	h.closeOnce.Do(func() { close(h.closed) })
	return h.Conn.Close()
}

func TestPublishRetryDedupesOnLostResponse(t *testing.T) {
	broker, s := startServer(t)
	var first *readHole
	var dials atomic.Int32
	reconnected := make(chan int, 4)
	c, err := DialResilient(s.Addr(), ReconnectConfig{
		Dialer: func(addr string) (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 1 {
				first = &readHole{Conn: nc, closed: make(chan struct{})}
				return first, nil
			}
			return nc, nil
		},
		BackoffBase: time.Millisecond,
		RPCTimeout:  100 * time.Millisecond,
		Seed:        1,
		Hooks:       ConnHooks{Reconnected: func(a int) { reconnected <- a }},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	declareTopology(t, c)

	// From here on the broker receives our frames but we never see the
	// responses: the publish must time out, reconnect, and re-send with
	// the same idempotency token; the broker must answer the retry from
	// its dedup window without enqueueing a second copy.
	first.block.Store(true)
	n, err := c.Publish("x", "k", nil, []byte("once"))
	if err != nil {
		t.Fatalf("publish across lost response: %v", err)
	}
	if n != 1 {
		t.Fatalf("publish delivered to %d queues, want 1 (memoized count)", n)
	}
	waitReconnected(t, reconnected)

	st := c.Stats()
	if st.PublishRetries == 0 {
		t.Fatal("publish was not retried")
	}
	if st.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", st.Reconnects)
	}
	if hits := broker.Stats().PublishDedupHits; hits != 1 {
		t.Fatalf("PublishDedupHits = %d, want 1", hits)
	}
	qs, err := c.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if qs.Published != 1 || qs.Ready != 1 {
		t.Fatalf("queue saw %d publishes / %d ready, want exactly 1 (duplicate enqueue)", qs.Published, qs.Ready)
	}
}

func TestBrokerPublishTokenDedup(t *testing.T) {
	b := NewBroker()
	t.Cleanup(b.Close)
	if err := b.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	at := time.Unix(1_600_000_000, 0)
	n1, err := b.PublishAtToken("x", "k", nil, []byte("m"), at, "tok-1")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := b.PublishAtToken("x", "k", nil, []byte("m"), at, "tok-1")
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 1 || n2 != 1 {
		t.Fatalf("delivered counts %d, %d — retry must return the memoized count", n1, n2)
	}
	qs, err := b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if qs.Published != 1 {
		t.Fatalf("queue saw %d publishes, want 1", qs.Published)
	}
	if hits := b.Stats().PublishDedupHits; hits != 1 {
		t.Fatalf("PublishDedupHits = %d, want 1", hits)
	}

	// Batch path: a replayed batch re-enqueues only unseen items.
	items := []PublishItem{
		{RoutingKey: "k", Body: []byte("a"), Token: "tok-a"},
		{RoutingKey: "k", Body: []byte("b"), Token: "tok-b"},
	}
	if _, err := b.PublishBatch("x", items); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishBatch("x", items); err != nil {
		t.Fatal(err)
	}
	qs, err = b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if qs.Published != 3 { // m + a + b, replay fully deduped
		t.Fatalf("queue saw %d publishes after batch replay, want 3", qs.Published)
	}
}

func TestReconnectBudgetExhaustedFailsClosed(t *testing.T) {
	_, s := startServer(t)
	b := &bouncer{}
	var dials atomic.Int32
	c, _ := dialResilientTest(t, s, b, func(cfg *ReconnectConfig) {
		inner := cfg.Dialer
		cfg.MaxAttempts = 2
		cfg.Dialer = func(addr string) (net.Conn, error) {
			if dials.Add(1) > 1 {
				return nil, errors.New("network unreachable")
			}
			return inner(addr)
		}
	})
	declareTopology(t, c)
	b.killCurrent()
	if err := c.WaitConnected(5 * time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitConnected after exhausted budget: %v, want ErrClosed", err)
	}
	if _, err := c.Publish("x", "k", nil, []byte("m")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish after exhausted budget: %v, want ErrClosed", err)
	}
	if err := c.Err(); err == nil || !errors.Is(err, ErrClosed) {
		t.Fatalf("Err() = %v, want wrapped ErrClosed with attempt context", err)
	}
}

func TestReconnectAndReplayAreFast(t *testing.T) {
	_, s := startServer(t)
	b := &bouncer{}
	c, reconnected := dialResilientTest(t, s, b, nil)
	declareTopology(t, c)
	rc, err := c.Consume("q", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Cancel() }()

	// Fault-free local reconnect: the acceptance bar is <10ms for
	// reconnect + full topology replay; assert a loose multiple to
	// stay robust on loaded CI machines (the benchmark below measures
	// the real figure).
	start := time.Now()
	b.killCurrent()
	waitReconnected(t, reconnected)
	elapsed := time.Since(start)
	t.Logf("reconnect + replay of 3 entries + 1 consumer took %v", elapsed)
	if elapsed > 500*time.Millisecond {
		t.Fatalf("reconnect took %v, want well under 500ms", elapsed)
	}
}

func BenchmarkReconnectReplay(b *testing.B) {
	broker := NewBroker()
	s, err := NewServer(broker, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer broker.Close()
	defer s.Close()
	bn := &bouncer{}
	reconnected := make(chan int, 1)
	c, err := DialResilient(s.Addr(), ReconnectConfig{
		Dialer:      bn.dial,
		BackoffBase: time.Millisecond,
		Seed:        1,
		Hooks:       ConnHooks{Reconnected: func(int) { reconnected <- 1 }},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.DeclareExchange("x", Fanout); err != nil {
		b.Fatal(err)
	}
	if err := c.DeclareQueue("q", QueueOptions{}); err != nil {
		b.Fatal(err)
	}
	if err := c.BindQueue("q", "x", ""); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Consume("q", 4); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn.killCurrent()
		<-reconnected
	}
}

func TestRecoveryCycleLeaksNoGoroutines(t *testing.T) {
	before := stableGoroutines(t)
	for round := 0; round < 3; round++ {
		broker := NewBroker()
		s, err := NewServer(broker, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		b := &bouncer{}
		reconnected := make(chan int, 4)
		c, err := DialResilient(s.Addr(), ReconnectConfig{
			Dialer:      b.dial,
			BackoffBase: time.Millisecond,
			Seed:        int64(round + 1),
			Hooks:       ConnHooks{Reconnected: func(int) { reconnected <- 1 }},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.DeclareExchange("x", Fanout); err != nil {
			t.Fatal(err)
		}
		if err := c.DeclareQueue("q", QueueOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := c.BindQueue("q", "x", ""); err != nil {
			t.Fatal(err)
		}
		rc, err := c.Consume("q", 4)
		if err != nil {
			t.Fatal(err)
		}
		// Two bounce cycles per round: transports, read loops and
		// reconnect loops must all be reaped.
		for cycle := 0; cycle < 2; cycle++ {
			b.killCurrent()
			select {
			case <-reconnected:
			case <-time.After(5 * time.Second):
				t.Fatal("reconnect timed out")
			}
			if _, err := c.Publish("x", "k", nil, []byte("m")); err != nil {
				t.Fatal(err)
			}
			select {
			case d := <-rc.C():
				if err := rc.Ack(d.Tag); err != nil {
					t.Fatal(err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("no delivery after bounce")
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		broker.Close()
	}
	after := stableGoroutines(t)
	if after > before+3 {
		t.Fatalf("recovery cycles leaked goroutines: %d -> %d", before, after)
	}
}

func TestJournalCollapsesAndPrunes(t *testing.T) {
	_, s := startServer(t)
	b := &bouncer{}
	c, _ := dialResilientTest(t, s, b, nil)
	declareTopology(t, c)
	// Idempotent redeclares must not grow the replay.
	declareTopology(t, c)
	c.mu.Lock()
	n := len(c.journal)
	c.mu.Unlock()
	if n != 3 {
		t.Fatalf("journal has %d entries after redeclare, want 3", n)
	}
	// Deleting the exchange prunes its declaration and its binding.
	if err := c.DeleteExchange("x"); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	n = len(c.journal)
	c.mu.Unlock()
	if n != 1 { // only the queue declaration remains
		t.Fatalf("journal has %d entries after DeleteExchange, want 1", n)
	}
}
