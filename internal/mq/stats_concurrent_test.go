package mq

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStatsSamplingDoesNotStallPublishers runs a publish-heavy load
// while a sampler hammers Stats/QueueStatsFast as fast as it can. The
// counters are atomics, so sampling never takes a lock a publisher
// wants; the test asserts full progress on both sides, exact counter
// totals, and monotonicity of the sampled counters. Run with -race.
func TestStatsSamplingDoesNotStallPublishers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Direct); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{MaxLen: 100}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", "k"); err != nil {
		t.Fatal(err)
	}

	const publishers = 4
	const perPublisher = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var samples atomic.Uint64

	// Samplers: broker stats, locked queue stats and the fast path,
	// all concurrently with the publishers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastPublished uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := b.Stats()
				if st.Published < lastPublished {
					t.Errorf("published went backwards: %d -> %d", lastPublished, st.Published)
					return
				}
				lastPublished = st.Published
				if _, err := b.QueueStatsFast("q"); err != nil {
					t.Errorf("fast stats: %v", err)
					return
				}
				if _, err := b.QueueStats("q"); err != nil {
					t.Errorf("stats: %v", err)
					return
				}
				samples.Add(1)
			}
		}()
	}

	start := time.Now()
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for i := 0; i < perPublisher; i++ {
				if _, err := b.Publish("x", "k", nil, []byte("m")); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}()
	}
	pubWG.Wait()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	st := b.Stats()
	if want := uint64(publishers * perPublisher); st.Published != want {
		t.Fatalf("published = %d, want %d", st.Published, want)
	}
	if st.Routed != st.Published || st.Unroutable != 0 {
		t.Fatalf("routing totals off: %+v", st)
	}
	qs, err := b.QueueStatsFast("q")
	if err != nil {
		t.Fatal(err)
	}
	if qs.Published != st.Published {
		t.Fatalf("queue published = %d, want %d", qs.Published, st.Published)
	}
	if qs.Ready > 100 {
		t.Fatalf("ready %d exceeds MaxLen", qs.Ready)
	}
	if samples.Load() == 0 {
		t.Fatal("samplers made no progress while publishers ran")
	}
	t.Logf("published %d in %v with %d concurrent stat samples", st.Published, elapsed, samples.Load())
}

// TestQueueStatsFastMatchesLocked cross-checks the lock-free snapshot
// against the locked one when the queue is quiescent.
func TestQueueStatsFastMatchesLocked(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := b.Publish("x", "k", nil, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	d, found, err := b.Get("q")
	if err != nil || !found {
		t.Fatalf("get: %v %v", found, err)
	}
	if err := b.AckGet("q", d.Tag); err != nil {
		t.Fatal(err)
	}
	d2, _, err := b.Get("q")
	if err != nil {
		t.Fatal(err)
	}
	_ = d2 // left unacked on purpose

	slow, err := b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := b.QueueStatsFast("q")
	if err != nil {
		t.Fatal(err)
	}
	if fast != slow {
		t.Fatalf("snapshots differ:\nlocked = %+v\nfast   = %+v", slow, fast)
	}
	if fast.Ready != 8 || fast.Unacked != 1 || fast.Acked != 1 {
		t.Fatalf("unexpected state: %+v", fast)
	}
}

// TestHooksObserveBrokerEvents installs counting hooks and checks the
// event stream agrees with the broker's own counters across publish,
// deliver, ack, nack, drop and expiry.
func TestHooksObserveBrokerEvents(t *testing.T) {
	b := NewBroker()
	defer b.Close()

	var published, enqueued, delivered, acked, nacked, dropped, expired atomic.Int64
	b.SetHooks(Hooks{
		Published: func(ex string, n int) { published.Add(1) },
		Enqueued:  func(q string) { enqueued.Add(1) },
		Delivered: func(q string) { delivered.Add(1) },
		Acked:     func(q string) { acked.Add(1) },
		Nacked:    func(q string, requeue bool) { nacked.Add(1) },
		Dropped:   func(q string) { dropped.Add(1) },
		Expired:   func(q string, n int) { expired.Add(int64(n)) },
	})

	if err := b.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{MaxLen: 3, TTL: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 4, 1, 10, 0, 0, 0, time.UTC)
	clock := base
	setQueueClock(t, b, "q", func() time.Time { return clock })

	// 5 publishes into MaxLen 3: two overflow drops.
	for i := 0; i < 5; i++ {
		if _, err := b.PublishAt("x", "k", nil, []byte(fmt.Sprintf("m%d", i)), base); err != nil {
			t.Fatal(err)
		}
	}
	// Deliver one and ack it, deliver another and nack-drop it.
	d, found, err := b.Get("q")
	if err != nil || !found {
		t.Fatalf("get: %v %v", found, err)
	}
	if err := b.AckGet("q", d.Tag); err != nil {
		t.Fatal(err)
	}
	d, found, err = b.Get("q")
	if err != nil || !found {
		t.Fatalf("get: %v %v", found, err)
	}
	if err := b.NackGet("q", d.Tag, false); err != nil {
		t.Fatal(err)
	}
	// Let the last ready message expire.
	clock = base.Add(2 * time.Hour)
	if _, err := b.QueueStats("q"); err != nil {
		t.Fatal(err)
	}

	if published.Load() != 5 || enqueued.Load() != 5 {
		t.Fatalf("published/enqueued = %d/%d, want 5/5", published.Load(), enqueued.Load())
	}
	if delivered.Load() != 2 || acked.Load() != 1 || nacked.Load() != 1 {
		t.Fatalf("delivered/acked/nacked = %d/%d/%d, want 2/1/1",
			delivered.Load(), acked.Load(), nacked.Load())
	}
	// 2 overflow drops + 1 nack drop.
	if dropped.Load() != 3 {
		t.Fatalf("dropped = %d, want 3", dropped.Load())
	}
	if expired.Load() != 1 {
		t.Fatalf("expired = %d, want 1", expired.Load())
	}
}
