package mq

import (
	"errors"
	"testing"
	"time"
)

func newTestQueue(t *testing.T, opts QueueOptions) (*Broker, string) {
	t.Helper()
	b := NewBroker()
	t.Cleanup(b.Close)
	if err := b.DeclareExchange("x", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", opts); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	return b, "q"
}

func publishN(t *testing.T, b *Broker, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := b.Publish("x", "k", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGetAckLifecycle(t *testing.T) {
	b, q := newTestQueue(t, QueueOptions{})
	publishN(t, b, 2)

	d1, found, err := b.Get(q)
	if err != nil || !found {
		t.Fatalf("Get: found=%v err=%v", found, err)
	}
	st, _ := b.QueueStats(q)
	if st.Ready != 1 || st.Unacked != 1 {
		t.Fatalf("after get: ready=%d unacked=%d, want 1/1", st.Ready, st.Unacked)
	}
	if err := b.AckGet(q, d1.Tag); err != nil {
		t.Fatal(err)
	}
	st, _ = b.QueueStats(q)
	if st.Unacked != 0 || st.Acked != 1 {
		t.Fatalf("after ack: unacked=%d acked=%d", st.Unacked, st.Acked)
	}
	// Double ack fails.
	if err := b.AckGet(q, d1.Tag); !errors.Is(err, ErrUnknownTag) {
		t.Fatalf("double ack = %v, want ErrUnknownTag", err)
	}
}

func TestGetEmptyQueue(t *testing.T) {
	b, q := newTestQueue(t, QueueOptions{})
	_, found, err := b.Get(q)
	if err != nil || found {
		t.Fatalf("Get on empty queue: found=%v err=%v", found, err)
	}
}

func TestNackRequeueMarksRedelivered(t *testing.T) {
	b, q := newTestQueue(t, QueueOptions{})
	publishN(t, b, 1)
	d, _, err := b.Get(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.NackGet(q, d.Tag, true); err != nil {
		t.Fatal(err)
	}
	d2, found, err := b.Get(q)
	if err != nil || !found {
		t.Fatalf("redelivery: found=%v err=%v", found, err)
	}
	if !d2.Redelivered {
		t.Fatal("requeued message must be marked redelivered")
	}
	if d2.ID != d.ID {
		t.Fatalf("redelivered id %d != original %d", d2.ID, d.ID)
	}
}

func TestNackDropDiscards(t *testing.T) {
	b, q := newTestQueue(t, QueueOptions{})
	publishN(t, b, 1)
	d, _, err := b.Get(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.NackGet(q, d.Tag, false); err != nil {
		t.Fatal(err)
	}
	st, _ := b.QueueStats(q)
	if st.Ready != 0 || st.Unacked != 0 || st.Dropped != 1 {
		t.Fatalf("after nack-drop: %+v", st)
	}
}

func TestMaxLenDropsOldest(t *testing.T) {
	b, q := newTestQueue(t, QueueOptions{MaxLen: 3})
	publishN(t, b, 5)
	st, _ := b.QueueStats(q)
	if st.Ready != 3 || st.Dropped != 2 {
		t.Fatalf("maxlen queue: ready=%d dropped=%d, want 3/2", st.Ready, st.Dropped)
	}
	// The survivors are the newest messages (bodies 2,3,4).
	d, _, err := b.Get(q)
	if err != nil {
		t.Fatal(err)
	}
	if d.Body[0] != 2 {
		t.Fatalf("oldest surviving body = %d, want 2", d.Body[0])
	}
}

func TestConsumerReceivesBacklogAndLive(t *testing.T) {
	b, q := newTestQueue(t, QueueOptions{})
	publishN(t, b, 3) // backlog before subscribing
	c, err := b.Consume(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Cancel()
	got := 0
	timeout := time.After(2 * time.Second)
	for got < 3 {
		select {
		case d := <-c.C():
			if err := c.Ack(d.Tag); err != nil {
				t.Fatal(err)
			}
			got++
		case <-timeout:
			t.Fatalf("timed out after %d backlog deliveries", got)
		}
	}
	publishN(t, b, 2) // live messages
	for got < 5 {
		select {
		case d := <-c.C():
			if err := c.Ack(d.Tag); err != nil {
				t.Fatal(err)
			}
			got++
		case <-timeout:
			t.Fatalf("timed out after %d live deliveries", got)
		}
	}
}

func TestPrefetchLimitsInFlight(t *testing.T) {
	b, q := newTestQueue(t, QueueOptions{})
	publishN(t, b, 10)
	c, err := b.Consume(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Cancel()
	// Receive two without acking: no third delivery may arrive.
	d1 := <-c.C()
	d2 := <-c.C()
	select {
	case d := <-c.C():
		t.Fatalf("received third delivery %v beyond prefetch 2", d.Tag)
	case <-time.After(50 * time.Millisecond):
	}
	st, _ := b.QueueStats(q)
	if st.Unacked != 2 {
		t.Fatalf("unacked = %d, want 2", st.Unacked)
	}
	// Acking frees a slot.
	if err := c.Ack(d1.Tag); err != nil {
		t.Fatal(err)
	}
	select {
	case d3 := <-c.C():
		if err := c.Ack(d3.Tag); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery after ack freed prefetch slot")
	}
	if err := c.Ack(d2.Tag); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinAcrossConsumers(t *testing.T) {
	b, q := newTestQueue(t, QueueOptions{})
	c1, err := b.Consume(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Cancel()
	c2, err := b.Consume(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Cancel()
	publishN(t, b, 10)

	count1, count2 := 0, 0
	deadline := time.After(2 * time.Second)
	for count1+count2 < 10 {
		select {
		case d := <-c1.C():
			count1++
			if err := c1.Ack(d.Tag); err != nil {
				t.Fatal(err)
			}
		case d := <-c2.C():
			count2++
			if err := c2.Ack(d.Tag); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatalf("timed out with %d+%d deliveries", count1, count2)
		}
	}
	if count1 == 0 || count2 == 0 {
		t.Fatalf("competing consumers should share work: %d vs %d", count1, count2)
	}
}

func TestCancelClosesChannel(t *testing.T) {
	b, q := newTestQueue(t, QueueOptions{})
	c, err := b.Consume(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Cancel()
	if _, open := <-c.C(); open {
		t.Fatal("cancelled consumer channel must be closed")
	}
	// Publishing after cancel keeps messages queued.
	publishN(t, b, 1)
	st, _ := b.QueueStats(q)
	if st.Ready != 1 {
		t.Fatalf("ready = %d after cancel, want 1", st.Ready)
	}
}

func TestDeleteQueueClosesConsumers(t *testing.T) {
	b, q := newTestQueue(t, QueueOptions{})
	c, err := b.Consume(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteQueue(q); err != nil {
		t.Fatal(err)
	}
	select {
	case _, open := <-c.C():
		if open {
			t.Fatal("expected closed channel after queue delete")
		}
	case <-time.After(time.Second):
		t.Fatal("consumer channel not closed after queue delete")
	}
}

func TestConsumeMissingQueue(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if _, err := b.Consume("nope", 0); !errors.Is(err, ErrQueueNotFound) {
		t.Fatalf("Consume missing = %v, want ErrQueueNotFound", err)
	}
}
