package mq

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func mustDeclare(t *testing.T, b *Broker, exchange string, typ ExchangeType, queues ...string) {
	t.Helper()
	if err := b.DeclareExchange(exchange, typ); err != nil {
		t.Fatal(err)
	}
	for _, q := range queues {
		if err := b.DeclareQueue(q, QueueOptions{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeclareExchangeIdempotentAndTypeConflict(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareExchange("x", Topic); err != nil {
		t.Fatalf("redeclare same type: %v", err)
	}
	err := b.DeclareExchange("x", Fanout)
	if !errors.Is(err, ErrExchangeExists) {
		t.Fatalf("redeclare different type = %v, want ErrExchangeExists", err)
	}
}

func TestDeclareValidation(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("", Topic); err == nil {
		t.Fatal("empty exchange name must fail")
	}
	if err := b.DeclareExchange("x", ExchangeType(99)); err == nil {
		t.Fatal("invalid exchange type must fail")
	}
	if err := b.DeclareQueue("", QueueOptions{}); err == nil {
		t.Fatal("empty queue name must fail")
	}
}

func TestDirectRouting(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "d", Direct, "q1", "q2")
	if err := b.BindQueue("q1", "d", "red"); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q2", "d", "blue"); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish("d", "red", nil, []byte("m"))
	if err != nil || n != 1 {
		t.Fatalf("Publish red: n=%d err=%v, want 1", n, err)
	}
	if st, _ := b.QueueStats("q1"); st.Ready != 1 {
		t.Fatalf("q1 ready = %d, want 1", st.Ready)
	}
	if st, _ := b.QueueStats("q2"); st.Ready != 0 {
		t.Fatalf("q2 ready = %d, want 0", st.Ready)
	}
}

func TestFanoutRouting(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "f", Fanout, "q1", "q2", "q3")
	for _, q := range []string{"q1", "q2", "q3"} {
		if err := b.BindQueue(q, "f", ""); err != nil {
			t.Fatal(err)
		}
	}
	n, err := b.Publish("f", "ignored", nil, []byte("m"))
	if err != nil || n != 3 {
		t.Fatalf("fanout delivered to %d queues (err=%v), want 3", n, err)
	}
}

func TestTopicRouting(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "t", Topic, "all", "paris", "feedback")
	if err := b.BindQueue("all", "t", "#"); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("paris", "t", "SC.*.*.FR75013"); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("feedback", "t", "SC.*.feedback.#"); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish("t", "SC.mob1.feedback.FR75013", nil, []byte("m"))
	if err != nil || n != 3 {
		t.Fatalf("delivered to %d queues (err=%v), want 3", n, err)
	}
	n, err = b.Publish("t", "SC.mob1.obs.FR92120", nil, []byte("m"))
	if err != nil || n != 1 {
		t.Fatalf("delivered to %d queues (err=%v), want 1 (all)", n, err)
	}
}

func TestExchangeToExchangeChain(t *testing.T) {
	// The paper's topology: client exchange -> app exchange -> GoFlow
	// exchange -> GoFlow queue, with a client-id filter at the first
	// hop.
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "E.mob1", Topic)
	mustDeclare(t, b, "SC", Topic)
	mustDeclare(t, b, "GFX", Topic, "GF")
	if err := b.BindExchange("SC", "E.mob1", "SC.mob1.#"); err != nil {
		t.Fatal(err)
	}
	if err := b.BindExchange("GFX", "SC", "#"); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("GF", "GFX", "#"); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish("E.mob1", "SC.mob1.obs.FR75013", nil, []byte("m"))
	if err != nil || n != 1 {
		t.Fatalf("chain delivered to %d queues (err=%v), want 1", n, err)
	}
	// Spoofed client id must be filtered at the first hop.
	n, err = b.Publish("E.mob1", "SC.mob2.obs.FR75013", nil, []byte("m"))
	if err != nil || n != 0 {
		t.Fatalf("spoofed key delivered to %d queues (err=%v), want 0", n, err)
	}
}

func TestExchangeCycleTerminates(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "a", Fanout)
	mustDeclare(t, b, "b", Fanout, "q")
	if err := b.BindExchange("b", "a", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.BindExchange("a", "b", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "b", ""); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish("a", "k", nil, []byte("m"))
	if err != nil || n != 1 {
		t.Fatalf("cyclic topology delivered %d (err=%v), want exactly 1", n, err)
	}
}

func TestPublishUnroutableAndMissing(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "x", Topic)
	n, err := b.Publish("x", "nobody.listens", nil, []byte("m"))
	if err != nil || n != 0 {
		t.Fatalf("unroutable publish: n=%d err=%v", n, err)
	}
	if st := b.Stats(); st.Unroutable != 1 {
		t.Fatalf("unroutable counter = %d, want 1", st.Unroutable)
	}
	_, err = b.Publish("missing", "k", nil, nil)
	if !errors.Is(err, ErrExchangeNotFound) {
		t.Fatalf("publish to missing exchange = %v, want ErrExchangeNotFound", err)
	}
}

func TestDeleteQueueRemovesBindings(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "x", Fanout, "q")
	if err := b.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteQueue("q"); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish("x", "k", nil, []byte("m"))
	if err != nil || n != 0 {
		t.Fatalf("publish after queue delete: n=%d err=%v, want 0", n, err)
	}
	if err := b.DeleteQueue("q"); !errors.Is(err, ErrQueueNotFound) {
		t.Fatalf("double delete = %v, want ErrQueueNotFound", err)
	}
}

func TestDeleteExchangeRemovesExchangeBindings(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "src", Fanout)
	mustDeclare(t, b, "dst", Fanout, "q")
	if err := b.BindExchange("dst", "src", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "dst", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteExchange("dst"); err != nil {
		t.Fatal(err)
	}
	// src's binding to dst must be gone; publish is simply unroutable.
	n, err := b.Publish("src", "k", nil, []byte("m"))
	if err != nil || n != 0 {
		t.Fatalf("publish after exchange delete: n=%d err=%v", n, err)
	}
}

func TestUnbindQueue(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "x", Topic, "q")
	if err := b.BindQueue("q", "x", "a.#"); err != nil {
		t.Fatal(err)
	}
	if err := b.UnbindQueue("q", "x", "a.#"); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish("x", "a.b", nil, []byte("m"))
	if err != nil || n != 0 {
		t.Fatalf("publish after unbind: n=%d err=%v", n, err)
	}
}

func TestDuplicateBindingCollapsed(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "x", Topic, "q")
	for i := 0; i < 3; i++ {
		if err := b.BindQueue("q", "x", "k"); err != nil {
			t.Fatal(err)
		}
	}
	n, err := b.Publish("x", "k", nil, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("duplicate bindings delivered %d copies, want 1", n)
	}
	if st, _ := b.QueueStats("q"); st.Ready != 1 {
		t.Fatalf("q ready = %d, want 1", st.Ready)
	}
}

func TestBrokerClose(t *testing.T) {
	b := NewBroker()
	mustDeclare(t, b, "x", Topic, "q")
	b.Close()
	if err := b.DeclareQueue("q2", QueueOptions{}); !errors.Is(err, ErrBrokerClosed) {
		t.Fatalf("declare after close = %v, want ErrBrokerClosed", err)
	}
	if _, err := b.Publish("x", "k", nil, nil); !errors.Is(err, ErrBrokerClosed) && !errors.Is(err, ErrExchangeNotFound) {
		t.Fatalf("publish after close = %v", err)
	}
	b.Close() // idempotent
}

func TestConcurrentPublishAndConsume(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "x", Fanout, "q")
	if err := b.BindQueue("q", "x", ""); err != nil {
		t.Fatal(err)
	}
	const (
		producers = 8
		perProd   = 200
	)
	consumer, err := b.Consume("q", 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if _, err := b.Publish("x", "k", nil, []byte(fmt.Sprintf("%d-%d", p, i))); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(p)
	}
	received := make(map[string]bool)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for d := range consumer.C() {
			received[string(d.Body)] = true
			if err := consumer.Ack(d.Tag); err != nil {
				t.Errorf("ack: %v", err)
			}
			if len(received) == producers*perProd {
				return
			}
		}
	}()
	wg.Wait()
	<-done
	consumer.Cancel()
	if len(received) != producers*perProd {
		t.Fatalf("received %d distinct messages, want %d", len(received), producers*perProd)
	}
}
