package mq

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildTrie compiles patterns into a trie; dest i carries the queue
// name "qi" so matches can be compared against TopicMatch.
func buildTrie(patterns []string) *trieNode {
	root := &trieNode{}
	for i, p := range patterns {
		root.insert(splitWords(p), dest{toQueue: fmt.Sprintf("q%d", i)})
	}
	return root
}

// trieMatches returns the deduplicated set of pattern indexes the trie
// emits for key.
func trieMatches(root *trieNode, key string) map[string]bool {
	got := map[string]bool{}
	root.match(splitWords(key), func(d dest) { got[d.toQueue] = true })
	return got
}

// TestTrieAgreesWithTopicMatch is the property test pinning the
// compiled trie to the reference matcher: for random pattern sets and
// keys — including empty words from doubled, leading and trailing
// dots — the trie must emit exactly the patterns TopicMatch accepts.
func TestTrieAgreesWithTopicMatch(t *testing.T) {
	patWords := []string{"a", "b", "c", "obs", "*", "#", ""}
	keyWords := []string{"a", "b", "c", "obs", ""}
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 3000; iter++ {
		patterns := make([]string, 1+rng.Intn(8))
		for i := range patterns {
			parts := make([]string, rng.Intn(6))
			for j := range parts {
				parts[j] = patWords[rng.Intn(len(patWords))]
			}
			patterns[i] = strings.Join(parts, ".")
		}
		parts := make([]string, rng.Intn(6))
		for j := range parts {
			parts[j] = keyWords[rng.Intn(len(keyWords))]
		}
		key := strings.Join(parts, ".")

		root := buildTrie(patterns)
		got := trieMatches(root, key)
		for i, p := range patterns {
			name := fmt.Sprintf("q%d", i)
			if want := TopicMatch(p, key); want != got[name] {
				t.Fatalf("pattern %q key %q: trie=%v TopicMatch=%v (patterns=%v)",
					p, key, got[name], want, patterns)
			}
		}
	}
}

// TestTrieEdgeCases pins the wildcard corner cases explicitly so a
// regression names the exact rule it broke.
func TestTrieEdgeCases(t *testing.T) {
	cases := []struct {
		pattern, key string
		want         bool
	}{
		{"a.#.b", "a.b", true},         // '#' absorbs zero words
		{"a.#.b", "a.x.b", true},       // one word
		{"a.#.b", "a.x.y.b", true},     // several words
		{"a.#.b", "a.b.x", false},      // must still end in b
		{"a.#.b", "a", false},          //
		{"#", "", true},                // '#' alone matches the empty key
		{"#.#", "a", true},             // duplicate emission path
		{"*", "", false},               // '*' needs exactly one word
		{"*", "a", true},               //
		{"", "", true},                 // empty pattern, empty key
		{"", "a", false},               //
		{"a..b", "a..b", true},         // empty segment is a literal word
		{"a..b", "a.b", false},         //
		{"a.*.b", "a..b", true},        // '*' matches an empty word
		{"a.#", "a", true},             // trailing hash, zero words
		{"a.#", "a.b.c", true},         //
		{"#.a", "a", true},             // leading hash, zero words
		{"a.", "a.", true},             // trailing dot = trailing empty word
		{"a.", "a", false},             //
	}
	for _, c := range cases {
		root := buildTrie([]string{c.pattern})
		if got := trieMatches(root, c.key)["q0"]; got != c.want {
			t.Errorf("pattern %q key %q: trie=%v want=%v", c.pattern, c.key, got, c.want)
		}
		if got := TopicMatch(c.pattern, c.key); got != c.want {
			t.Errorf("pattern %q key %q: TopicMatch=%v want=%v (reference disagrees with table)",
				c.pattern, c.key, got, c.want)
		}
	}
}

// TestRouteCacheCounters verifies the hit/miss/invalidation
// accounting: first publish misses, repeats hit, and any topology
// change flushes the cache so the next publish misses again.
func TestRouteCacheCounters(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	var hits, misses, invs int
	b.SetHooks(Hooks{
		RouteCacheHit:         func() { hits++ },
		RouteCacheMiss:        func() { misses++ },
		RouteCacheInvalidated: func() { invs++ },
	})
	if err := b.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", "a.*"); err != nil {
		t.Fatal(err)
	}
	invsAfterSetup := invs

	for i := 0; i < 5; i++ {
		if _, err := b.Publish("x", "a.b", nil, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.RouteCacheMisses != 1 || st.RouteCacheHits != 4 {
		t.Fatalf("stats after 5 publishes: hits=%d misses=%d, want 4/1", st.RouteCacheHits, st.RouteCacheMisses)
	}
	if hits != 4 || misses != 1 {
		t.Fatalf("hooks after 5 publishes: hits=%d misses=%d, want 4/1", hits, misses)
	}

	// Topology change invalidates; next publish misses again.
	if err := b.DeclareQueue("q2", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if invs != invsAfterSetup+1 {
		t.Fatalf("invalidations = %d, want %d", invs, invsAfterSetup+1)
	}
	if _, err := b.Publish("x", "a.b", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.RouteCacheMisses != 2 {
		t.Fatalf("misses after invalidation = %d, want 2", st.RouteCacheMisses)
	}
}

// TestBindUnbindInvalidatesRoutes checks the correctness contract of
// the memoized routes: a publish issued after BindQueue/UnbindQueue
// returns must see the new topology — no stale deliveries, no missed
// queues.
func TestBindUnbindInvalidatesRoutes(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"q0", "q1"} {
		if err := b.DeclareQueue(q, QueueOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.BindQueue("q0", "x", "k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := b.BindQueue("q1", "x", "k"); err != nil {
			t.Fatal(err)
		}
		if n, _ := b.Publish("x", "k", nil, []byte("m")); n != 2 {
			t.Fatalf("iter %d: delivered %d after bind, want 2", i, n)
		}
		if err := b.UnbindQueue("q1", "x", "k"); err != nil {
			t.Fatal(err)
		}
		if n, _ := b.Publish("x", "k", nil, []byte("m")); n != 1 {
			t.Fatalf("iter %d: delivered %d after unbind, want 1 (stale route)", i, n)
		}
	}
}

// TestConcurrentBindUnbindPublish races topology changes against
// publishes. Every publish must reach q0 (always bound) and never a
// third queue; run under -race this also checks the cache swap
// synchronization.
func TestConcurrentBindUnbindPublish(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"q0", "q1"} {
		if err := b.DeclareQueue(q, QueueOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.BindQueue("q0", "x", "a.#"); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := b.BindQueue("q1", "x", "a.*"); err != nil {
				return
			}
			if err := b.UnbindQueue("q1", "x", "a.*"); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		n, err := b.Publish("x", "a.b", nil, []byte("m"))
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 || n > 2 {
			t.Fatalf("publish %d delivered to %d queues, want 1 or 2", i, n)
		}
	}
	close(stop)
	wg.Wait()

	// Quiescent check: with the binder stopped in the unbound state,
	// publishes must settle on exactly q0.
	if n, _ := b.Publish("x", "a.b", nil, []byte("m")); n != 1 {
		t.Fatalf("post-race publish delivered %d, want 1", n)
	}
}

// TestPublishCacheHitZeroAllocs is the regression guard for the
// zero-allocation hot path: a cached single-queue publish (bounded
// queue, nil headers, explicit timestamp) must not allocate.
func TestPublishCacheHitZeroAllocs(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{MaxLen: 64}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", "a.*.c"); err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"spl":61.5}`)
	at := time.Now()
	// Warm the route cache and the deque block pool.
	for i := 0; i < dequeBlockLen*2; i++ {
		if _, err := b.PublishAt("x", "a.b.c", nil, body, at); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := b.PublishAt("x", "a.b.c", nil, body, at); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cached publish allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPublishBatchSemantics checks that a batch behaves exactly like
// the equivalent sequence of publishes: per-message routing, delivery
// totals, FIFO order and MaxLen drops.
func TestPublishBatchSemantics(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("qa", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("qall", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("qa", "x", "a.*"); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("qall", "x", "#"); err != nil {
		t.Fatal(err)
	}
	at := time.Now()
	items := []PublishItem{
		{RoutingKey: "a.1", Body: []byte("m1"), At: at},
		{RoutingKey: "b.2", Body: []byte("m2"), At: at},
		{RoutingKey: "a.3", Body: []byte("m3"), At: at},
	}
	n, err := b.PublishBatch("x", items)
	if err != nil {
		t.Fatal(err)
	}
	// m1 and m3 reach both queues; m2 only qall.
	if n != 5 {
		t.Fatalf("batch delivered %d, want 5", n)
	}
	for _, want := range []struct {
		queue  string
		bodies []string
	}{
		{"qa", []string{"m1", "m3"}},
		{"qall", []string{"m1", "m2", "m3"}},
	} {
		for _, body := range want.bodies {
			d, found, err := b.Get(want.queue)
			if err != nil || !found {
				t.Fatalf("get %s: found=%v err=%v", want.queue, found, err)
			}
			if string(d.Body) != body {
				t.Fatalf("queue %s: got %q, want %q (FIFO order)", want.queue, d.Body, body)
			}
			if err := b.AckGet(want.queue, d.Tag); err != nil {
				t.Fatal(err)
			}
		}
	}

	// MaxLen drops apply per message inside a batch.
	if err := b.DeclareQueue("bounded", QueueOptions{MaxLen: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("bounded", "x", "z"); err != nil {
		t.Fatal(err)
	}
	big := make([]PublishItem, 5)
	for i := range big {
		big[i] = PublishItem{RoutingKey: "z", Body: []byte(fmt.Sprintf("b%d", i)), At: at}
	}
	if _, err := b.PublishBatch("x", big); err != nil {
		t.Fatal(err)
	}
	st, err := b.QueueStats("bounded")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != 2 || st.Dropped != 3 {
		t.Fatalf("bounded queue ready=%d dropped=%d, want 2/3", st.Ready, st.Dropped)
	}
	// The survivors are the newest two (oldest dropped first).
	d, _, err := b.Get("bounded")
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Body) != "b3" {
		t.Fatalf("bounded front = %q, want b3", d.Body)
	}
}

// TestPublishBatchUnroutable counts unroutable items individually.
func TestPublishBatchUnroutable(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q", "x", "a"); err != nil {
		t.Fatal(err)
	}
	n, err := b.PublishBatch("x", []PublishItem{
		{RoutingKey: "a", Body: []byte("hit")},
		{RoutingKey: "nope", Body: []byte("miss")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	st := b.Stats()
	if st.Published != 2 || st.Unroutable != 1 {
		t.Fatalf("published=%d unroutable=%d, want 2/1", st.Published, st.Unroutable)
	}
}
