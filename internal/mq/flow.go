package mq

import (
	"sort"
	"sync"
)

// Per-queue flow control: when a queue's ready depth reaches its
// HighWatermark the broker asks publishers to pause, and resumes them
// once the depth drains to the LowWatermark. Transitions surface in
// three places: the Hooks.FlowPaused/FlowResumed metrics events, the
// FlowSub subscription the wire server broadcasts to connections as
// `flow` frames, and Broker.PausedQueues for snapshots (a freshly
// accepted connection is told about queues that paused before it
// arrived).

// FlowEvent is one pause/resume transition of a queue.
type FlowEvent struct {
	Queue  string
	Paused bool
}

// FlowSub is a coalescing subscription to flow transitions. Readers
// wait on C and call Drain; if a queue flaps faster than the reader
// drains, intermediate states collapse to the latest one — publishers
// only care about the current state, not the history.
type FlowSub struct {
	mu      sync.Mutex
	pending map[string]bool // queue -> latest paused state
	ch      chan struct{}   // cap 1: "something pending" signal
	closed  bool
}

// C signals that Drain has events. The channel never closes; select on
// it together with your own stop channel.
func (fs *FlowSub) C() <-chan struct{} { return fs.ch }

// Drain returns the coalesced transitions since the last call, sorted
// by queue name for determinism.
func (fs *FlowSub) Drain() []FlowEvent {
	fs.mu.Lock()
	events := make([]FlowEvent, 0, len(fs.pending))
	for q, paused := range fs.pending {
		events = append(events, FlowEvent{Queue: q, Paused: paused})
	}
	clear(fs.pending)
	fs.mu.Unlock()
	sort.Slice(events, func(i, j int) bool { return events[i].Queue < events[j].Queue })
	return events
}

// notify records a transition and signals the reader. Called under
// queue locks, so it must never block: the signal send is lossy-safe
// (capacity 1, drop when already signalled).
func (fs *FlowSub) notify(queue string, paused bool) {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return
	}
	fs.pending[queue] = paused
	fs.mu.Unlock()
	select {
	case fs.ch <- struct{}{}:
	default:
	}
}

// Close detaches the subscription from the broker.
func (fs *FlowSub) close() {
	fs.mu.Lock()
	fs.closed = true
	fs.pending = make(map[string]bool)
	fs.mu.Unlock()
}

// SubscribeFlow registers a flow-transition subscriber. Call
// UnsubscribeFlow when done.
func (b *Broker) SubscribeFlow() *FlowSub {
	fs := &FlowSub{pending: make(map[string]bool), ch: make(chan struct{}, 1)}
	b.flowMu.Lock()
	if b.flowSubs == nil {
		b.flowSubs = make(map[*FlowSub]struct{})
	}
	b.flowSubs[fs] = struct{}{}
	b.flowMu.Unlock()
	return fs
}

// UnsubscribeFlow detaches fs.
func (b *Broker) UnsubscribeFlow(fs *FlowSub) {
	b.flowMu.Lock()
	delete(b.flowSubs, fs)
	b.flowMu.Unlock()
	fs.close()
}

// notifyFlow fans a queue transition out to subscribers and maintains
// the paused-queue snapshot. Runs under the queue's lock (via
// queue.flowFn), so everything here is non-blocking.
func (b *Broker) notifyFlow(queue string, paused bool) {
	b.flowMu.Lock()
	if paused {
		if b.pausedQueues == nil {
			b.pausedQueues = make(map[string]struct{})
		}
		b.pausedQueues[queue] = struct{}{}
	} else {
		delete(b.pausedQueues, queue)
	}
	subs := make([]*FlowSub, 0, len(b.flowSubs))
	for fs := range b.flowSubs {
		subs = append(subs, fs)
	}
	b.flowMu.Unlock()
	for _, fs := range subs {
		fs.notify(queue, paused)
	}
}

// PausedQueues returns the names of queues currently holding publishers
// paused, sorted. Wire servers send this snapshot to new connections.
func (b *Broker) PausedQueues() []string {
	b.flowMu.Lock()
	names := make([]string, 0, len(b.pausedQueues))
	for q := range b.pausedQueues {
		names = append(names, q)
	}
	b.flowMu.Unlock()
	sort.Strings(names)
	return names
}
