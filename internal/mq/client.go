package mq

import (
	"bufio"
	"errors"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Connection lifecycle errors callers may match with errors.Is.
var (
	// ErrClosed reports an operation on a connection torn down by
	// Close or by an exhausted reconnect budget.
	ErrClosed = errors.New("mq: connection closed")
	// ErrReconnecting reports an operation attempted while the
	// connection is between transports. Publishes retry through this
	// state internally; other RPCs fail fast so callers can decide.
	ErrReconnecting = errors.New("mq: connection reconnecting")
	// ErrRPCTimeout reports an RPC whose response did not arrive
	// within the configured window; the transport is assumed dead and
	// recovery starts.
	ErrRPCTimeout = errors.New("mq: rpc timed out")
)

// BrokerError is a broker-side rejection relayed over the wire (bad
// exchange type, unknown queue, ...). It is never retried.
type BrokerError struct{ Msg string }

func (e *BrokerError) Error() string { return e.Msg }

// Connection states.
const (
	stateConnected int32 = iota
	stateReconnecting
	stateClosed
)

// maxOrphanedDeliveries bounds how many deliveries per consumer id may
// wait for the consumer registration to land; beyond it they are
// nacked back to the queue.
const maxOrphanedDeliveries = 256

// defaultFlowWait bounds how long a publish waits for a paused queue
// to resume before proceeding anyway. Flow control is advisory — it
// spreads bursts out, it must never deadlock a publisher against a
// broker whose consumers died.
const defaultFlowWait = 2 * time.Second

// transport is one TCP session under a Conn. A resilient Conn runs a
// sequence of transports; done closes when the transport's read loop
// exits, releasing any RPC parked on it.
type transport struct {
	nc   net.Conn
	done chan struct{}
}

// Conn is a client connection to a broker Server. It multiplexes
// synchronous RPCs (declare, bind, publish, ...) and asynchronous
// deliveries over one TCP connection, mirroring an AMQP channel.
//
// A Conn opened with DialResilient survives transport failures: it
// reconnects with exponential backoff, replays its topology journal
// (exchanges, queues, bindings, consumers declared on the conn), and
// retries publishes with idempotency tokens the broker dedupes — see
// reconnect.go.
type Conn struct {
	addr string
	cfg  *ReconnectConfig // nil = single-shot connection (Dial)

	writeMu sync.Mutex

	mu          sync.Mutex
	state       int32
	tr          *transport
	nextCorr    uint64
	pending     map[uint64]chan *frame
	consumerSet map[*RemoteConsumer]struct{} // authoritative subscriptions
	consumers   map[uint64]*RemoteConsumer   // current-session id routing
	orphans     map[uint64][]Delivery        // deliveries racing consumer registration
	journal     []journalEntry
	closeErr    error
	connected   chan struct{} // closed whenever state == stateConnected

	// Flow control (server-pushed opFlow frames): the set of queues
	// asking publishers to pause and a channel closed when the set
	// empties. Publishes gate on it for up to flowWait before
	// proceeding anyway (advisory backpressure never deadlocks).
	flowPaused map[string]struct{}
	flowResume chan struct{}
	flowWait   time.Duration

	closeOnce sync.Once
	closedCh  chan struct{} // closed on Close / permanent failure

	tokenPrefix string
	tokenSeq    atomic.Uint64

	reconnects     atomic.Uint64
	replayedTopo   atomic.Uint64
	publishRetries atomic.Uint64
	hooks          atomic.Pointer[ConnHooks]

	wg sync.WaitGroup // read loops + reconnect loop
}

// _connNonce distinguishes token prefixes of conns dialed in the same
// nanosecond.
var _connNonce atomic.Uint64

// Dial connects to a broker server. The connection is single-shot: a
// transport failure fails every operation with ErrClosed and the
// conn is done. Use DialResilient for automatic recovery.
func Dial(addr string) (*Conn, error) {
	return dialConn(addr, nil)
}

func defaultDialer(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

func dialConn(addr string, cfg *ReconnectConfig) (*Conn, error) {
	dial := defaultDialer
	if cfg != nil && cfg.Dialer != nil {
		dial = cfg.Dialer
	}
	nc, err := dial(addr)
	if err != nil {
		return nil, &DialError{Addr: addr, Err: err}
	}
	connected := make(chan struct{})
	close(connected)
	flowResume := make(chan struct{})
	close(flowResume)
	c := &Conn{
		addr:        addr,
		cfg:         cfg,
		pending:     make(map[uint64]chan *frame),
		consumerSet: make(map[*RemoteConsumer]struct{}),
		consumers:   make(map[uint64]*RemoteConsumer),
		orphans:     make(map[uint64][]Delivery),
		connected:   connected,
		closedCh:    make(chan struct{}),
		flowPaused:  make(map[string]struct{}),
		flowResume:  flowResume,
		flowWait:    defaultFlowWait,
		tokenPrefix: strconv.FormatInt(time.Now().UnixNano(), 36) + "." +
			strconv.FormatUint(_connNonce.Add(1), 36),
	}
	if cfg != nil {
		c.hooks.Store(&cfg.Hooks)
	}
	c.installTransport(nc)
	return c, nil
}

// DialError wraps a failed dial attempt.
type DialError struct {
	Addr string
	Err  error
}

func (e *DialError) Error() string { return "mq dial " + e.Addr + ": " + e.Err.Error() }
func (e *DialError) Unwrap() error { return e.Err }

// installTransport registers nc as the current transport and starts
// its read loop. Returns nil when the conn closed concurrently (the
// caller must close nc itself).
func (c *Conn) installTransport(nc net.Conn) *transport {
	c.mu.Lock()
	if c.state == stateClosed {
		c.mu.Unlock()
		return nil
	}
	tr := &transport{nc: nc, done: make(chan struct{})}
	c.tr = tr
	// Add under the lock: Close holds it before Wait, so the counter
	// can never be observed at zero with a loop still starting.
	c.wg.Add(1)
	c.mu.Unlock()
	go c.readLoop(tr)
	return tr
}

// Close tears down the connection; in-flight RPCs fail with ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.state == stateClosed {
		c.mu.Unlock()
		return nil
	}
	tr := c.tr
	c.failAllLocked(ErrClosed) // unlocks
	var err error
	if tr != nil {
		err = tr.nc.Close()
	}
	c.wg.Wait()
	return err
}

// Err returns the error that terminated the connection, nil while it
// is alive (connected or reconnecting).
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != stateClosed {
		return nil
	}
	return c.closeErr
}

// failAllLocked transitions to closed, waking every pending RPC and
// closing consumer channels. Caller holds c.mu; it unlocks.
func (c *Conn) failAllLocked(err error) {
	c.state = stateClosed
	if c.closeErr == nil {
		c.closeErr = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan *frame)
	consumers := c.consumerSet
	c.consumerSet = make(map[*RemoteConsumer]struct{})
	c.consumers = make(map[uint64]*RemoteConsumer)
	c.orphans = make(map[uint64][]Delivery)
	c.clearFlowLocked()
	c.mu.Unlock()
	c.closeOnce.Do(func() { close(c.closedCh) })
	for _, ch := range pending {
		close(ch)
	}
	for rc := range consumers {
		rc.closeChan()
	}
}

// transportBroken reacts to a dead transport: single-shot conns fail
// permanently, resilient conns enter the reconnecting state and spawn
// the recovery loop. No-op unless tr is still the current transport
// of a connected conn (replay transports are owned by the reconnect
// loop, which handles their failures itself).
func (c *Conn) transportBroken(tr *transport, cause error) {
	c.mu.Lock()
	if c.tr != tr || c.state != stateConnected {
		c.mu.Unlock()
		return
	}
	if c.cfg == nil {
		c.failAllLocked(cause) // unlocks
		_ = tr.nc.Close()
		return
	}
	c.state = stateReconnecting
	c.connected = make(chan struct{})
	pending := c.pending
	c.pending = make(map[uint64]chan *frame)
	// Parked deliveries belonged to the dead session; the server
	// requeues its unacked messages, so dropping the local copies
	// cannot lose anything.
	c.orphans = make(map[uint64][]Delivery)
	// Pause state died with the session too; the next connection gets
	// a fresh snapshot right after accept.
	c.clearFlowLocked()
	c.wg.Add(1) // under the lock, same ordering argument as installTransport
	c.mu.Unlock()
	_ = tr.nc.Close()
	for _, ch := range pending {
		close(ch)
	}
	go c.reconnectLoop(cause)
}

func (c *Conn) readLoop(tr *transport) {
	defer c.wg.Done()
	defer close(tr.done)
	r := bufio.NewReader(tr.nc)
	for {
		f, _, err := readFrame(r)
		if err != nil {
			c.transportBroken(tr, err)
			return
		}
		switch f.Op {
		case opFlow:
			c.mu.Lock()
			changed := c.applyFlowLocked(f.Queue, f.Paused)
			c.mu.Unlock()
			if changed {
				h := c.hooks.Load()
				if f.Paused {
					h.flowPaused(f.Queue)
				} else {
					h.flowResumed(f.Queue)
				}
			}
		case opDeliver:
			d := Delivery{
				Message: Message{
					ID:          f.MessageID,
					Exchange:    f.Exchange,
					RoutingKey:  f.RoutingKey,
					Headers:     f.Headers,
					Body:        f.Body,
					PublishedAt: f.PublishedAt,
					Redelivered: f.Redelivered,
				},
				Tag:   f.Tag,
				Queue: f.Queue,
			}
			c.mu.Lock()
			rc := c.consumers[f.ConsumerID]
			if rc == nil {
				// The server starts delivering the moment a consume is
				// processed, so a delivery can outrun the goroutine
				// registering the consumer id (Consume caller or the
				// replay loop). Park it; attachConsumer flushes the
				// buffer in arrival order. A genuinely orphaned id
				// (cancel race, runaway) is capped and nacked back.
				if len(c.orphans[f.ConsumerID]) < maxOrphanedDeliveries {
					c.orphans[f.ConsumerID] = append(c.orphans[f.ConsumerID], d)
					c.mu.Unlock()
					continue
				}
				c.mu.Unlock()
				go c.sendNoReply(tr, &frame{Op: opNack, ConsumerID: f.ConsumerID, Tag: f.Tag, Requeue: true})
				continue
			}
			c.mu.Unlock()
			rc.deliver(d)
		default:
			c.mu.Lock()
			ch := c.pending[f.Corr]
			delete(c.pending, f.Corr)
			c.mu.Unlock()
			if ch != nil {
				ch <- f
			}
		}
	}
}

// applyFlowLocked updates the paused-queue set, maintaining the
// invariant that flowResume is a closed channel exactly when the set
// is empty. Returns whether the state actually changed. Caller holds
// c.mu.
func (c *Conn) applyFlowLocked(queue string, paused bool) bool {
	if paused {
		if _, ok := c.flowPaused[queue]; ok {
			return false
		}
		if len(c.flowPaused) == 0 {
			c.flowResume = make(chan struct{})
		}
		c.flowPaused[queue] = struct{}{}
		return true
	}
	if _, ok := c.flowPaused[queue]; !ok {
		return false
	}
	delete(c.flowPaused, queue)
	if len(c.flowPaused) == 0 {
		close(c.flowResume)
	}
	return true
}

// clearFlowLocked forgets all pause state and releases gated
// publishers — the session the pauses belonged to is gone; the server
// re-sends a snapshot on the next connection. Caller holds c.mu.
func (c *Conn) clearFlowLocked() {
	if len(c.flowPaused) > 0 {
		c.flowPaused = make(map[string]struct{})
		close(c.flowResume)
	}
}

// flowGate holds a publish while the broker has any queue paused, up
// to flowWait. The gate is advisory: on timeout (or a closed conn) the
// publish proceeds and takes its chances with the queue's MaxLen.
func (c *Conn) flowGate() {
	c.mu.Lock()
	ch := c.flowResume
	wait := c.flowWait
	c.mu.Unlock()
	select {
	case <-ch:
		return
	default:
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-ch:
	case <-t.C:
	case <-c.closedCh:
	}
}

// FlowPausedQueues returns the queues currently asking publishers to
// pause, sorted (snapshot for tests and gauges).
func (c *Conn) FlowPausedQueues() []string {
	c.mu.Lock()
	names := make([]string, 0, len(c.flowPaused))
	for q := range c.flowPaused {
		names = append(names, q)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}

// SetFlowWait overrides how long publishes wait on flow pause before
// proceeding (default 2s). Zero or negative means do not wait.
func (c *Conn) SetFlowWait(d time.Duration) {
	c.mu.Lock()
	c.flowWait = d
	c.mu.Unlock()
}

// sendNoReply writes a frame without a correlation id; the server's
// response (Corr 0) is ignored by the read loop.
func (c *Conn) sendNoReply(tr *transport, f *frame) {
	c.writeMu.Lock()
	_, _ = writeFrame(tr.nc, f)
	c.writeMu.Unlock()
}

// stateErr maps the current state to its typed error after a pending
// RPC channel was closed under the caller.
func (c *Conn) stateErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateClosed {
		return ErrClosed
	}
	return ErrReconnecting
}

func (c *Conn) unregisterPending(corr uint64) {
	c.mu.Lock()
	delete(c.pending, corr)
	c.mu.Unlock()
}

// transportRPC runs one request/response exchange over an explicit
// transport. It is the shared engine of rpc (current transport) and
// topology replay (a transport not yet promoted to connected).
func (c *Conn) transportRPC(tr *transport, f *frame) (*frame, error) {
	c.mu.Lock()
	if c.state == stateClosed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextCorr++
	f.Corr = c.nextCorr
	ch := make(chan *frame, 1)
	c.pending[f.Corr] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	_, err := writeFrame(tr.nc, f)
	c.writeMu.Unlock()
	if err != nil {
		c.unregisterPending(f.Corr)
		c.transportBroken(tr, err)
		return nil, err
	}

	var timeout <-chan time.Time
	if c.cfg != nil && c.cfg.RPCTimeout > 0 {
		t := time.NewTimer(c.cfg.RPCTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, c.stateErr()
		}
		if resp.Op == opError {
			return nil, &BrokerError{Msg: resp.Error}
		}
		return resp, nil
	case <-timeout:
		// No response inside the window: the link is black-holed (a
		// one-way partition) or dead. Treat the transport as broken.
		c.unregisterPending(f.Corr)
		c.transportBroken(tr, ErrRPCTimeout)
		return nil, ErrRPCTimeout
	case <-tr.done:
		// The transport died while we waited and nobody rerouted our
		// pending entry (replay transports): fail with the state error.
		c.unregisterPending(f.Corr)
		return nil, c.stateErr()
	}
}

// rpc sends one frame over the current transport and waits for the
// correlated response. On a closed or reconnecting conn it fails fast
// with ErrClosed / ErrReconnecting.
func (c *Conn) rpc(f *frame) (*frame, error) {
	c.mu.Lock()
	switch c.state {
	case stateClosed:
		c.mu.Unlock()
		return nil, ErrClosed
	case stateReconnecting:
		c.mu.Unlock()
		return nil, ErrReconnecting
	}
	tr := c.tr
	c.mu.Unlock()
	return c.transportRPC(tr, f)
}

// DeclareExchange declares an exchange on the remote broker.
func (c *Conn) DeclareExchange(name string, typ ExchangeType) error {
	_, err := c.rpc(&frame{Op: opDeclareExchange, Exchange: name, ExchangeType: typ.String()})
	if err == nil {
		c.journalAdd(journalEntry{op: opDeclareExchange, exchange: name, exchangeType: typ.String()})
	}
	return err
}

// DeleteExchange deletes a remote exchange.
func (c *Conn) DeleteExchange(name string) error {
	_, err := c.rpc(&frame{Op: opDeleteExchange, Exchange: name})
	if err == nil {
		c.journalDeleteExchange(name)
	}
	return err
}

// DeclareQueue declares a remote queue.
func (c *Conn) DeclareQueue(name string, opts QueueOptions) error {
	_, err := c.rpc(&frame{
		Op:            opDeclareQueue,
		Queue:         name,
		MaxLen:        opts.MaxLen,
		TTLMillis:     opts.TTL.Milliseconds(),
		Exclusive:     opts.Exclusive,
		HighWatermark: opts.HighWatermark,
		LowWatermark:  opts.LowWatermark,
	})
	if err == nil {
		c.journalAdd(journalEntry{
			op:            opDeclareQueue,
			queue:         name,
			maxLen:        opts.MaxLen,
			ttlMillis:     opts.TTL.Milliseconds(),
			exclusive:     opts.Exclusive,
			highWatermark: opts.HighWatermark,
			lowWatermark:  opts.LowWatermark,
		})
	}
	return err
}

// DeleteQueue deletes a remote queue.
func (c *Conn) DeleteQueue(name string) error {
	_, err := c.rpc(&frame{Op: opDeleteQueue, Queue: name})
	if err == nil {
		c.journalDeleteQueue(name)
	}
	return err
}

// BindQueue binds a remote queue to an exchange.
func (c *Conn) BindQueue(queueName, exchangeName, pattern string) error {
	_, err := c.rpc(&frame{Op: opBindQueue, Queue: queueName, Exchange: exchangeName, Pattern: pattern})
	if err == nil {
		c.journalAdd(journalEntry{op: opBindQueue, queue: queueName, exchange: exchangeName, pattern: pattern})
	}
	return err
}

// BindExchange binds exchange dst to receive from src.
func (c *Conn) BindExchange(dstExchange, srcExchange, pattern string) error {
	_, err := c.rpc(&frame{Op: opBindExchange, Exchange: dstExchange, SrcExchange: srcExchange, Pattern: pattern})
	if err == nil {
		c.journalAdd(journalEntry{op: opBindExchange, exchange: dstExchange, srcExchange: srcExchange, pattern: pattern})
	}
	return err
}

// UnbindQueue removes a remote binding.
func (c *Conn) UnbindQueue(queueName, exchangeName, pattern string) error {
	_, err := c.rpc(&frame{Op: opUnbindQueue, Queue: queueName, Exchange: exchangeName, Pattern: pattern})
	if err == nil {
		c.journalRemove(journalEntry{op: opBindQueue, queue: queueName, exchange: exchangeName, pattern: pattern})
	}
	return err
}

// Publish publishes a message; it returns the number of destination
// queues. On a resilient conn the publish carries an idempotency
// token and is retried across reconnects; the broker dedupes
// redeliveries, so a retried publish lands at most once.
func (c *Conn) Publish(exchangeName, routingKey string, headers map[string]string, body []byte) (int, error) {
	f := &frame{Op: opPublish, Exchange: exchangeName, RoutingKey: routingKey, Headers: headers, Body: body}
	resp, err := c.publishRPC(f)
	if err != nil {
		return 0, err
	}
	return resp.Delivered, nil
}

// PublishAt publishes with an explicit timestamp (virtual-time sims).
func (c *Conn) PublishAt(exchangeName, routingKey string, headers map[string]string, body []byte, at time.Time) (int, error) {
	f := &frame{Op: opPublish, Exchange: exchangeName, RoutingKey: routingKey, Headers: headers, Body: body, PublishedAt: at}
	resp, err := c.publishRPC(f)
	if err != nil {
		return 0, err
	}
	return resp.Delivered, nil
}

// PublishBatch publishes a batch of messages to one exchange in a
// single wire round trip. Returns the total number of queue
// deliveries across the batch. Items without a timestamp are stamped
// with the broker's receive time. On a resilient conn every item
// carries its own idempotency token, so a retried batch replays only
// the items the broker has not seen.
func (c *Conn) PublishBatch(exchangeName string, items []PublishItem) (int, error) {
	f := &frame{Op: opPublishBatch, Exchange: exchangeName, Items: items}
	if c.cfg != nil {
		for i := range f.Items {
			if f.Items[i].Token == "" {
				f.Items[i].Token = c.mintToken()
			}
		}
	}
	resp, err := c.publishRPC(f)
	if err != nil {
		return 0, err
	}
	return resp.Delivered, nil
}

// Get fetches one message from a remote queue (basic.get).
func (c *Conn) Get(queueName string) (Delivery, bool, error) {
	resp, err := c.rpc(&frame{Op: opGet, Queue: queueName})
	if err != nil {
		return Delivery{}, false, err
	}
	if !resp.Found {
		return Delivery{}, false, nil
	}
	return Delivery{
		Message: Message{
			ID:          resp.MessageID,
			Exchange:    resp.Exchange,
			RoutingKey:  resp.RoutingKey,
			Headers:     resp.Headers,
			Body:        resp.Body,
			PublishedAt: resp.PublishedAt,
			Redelivered: resp.Redelivered,
		},
		Tag:   resp.Tag,
		Queue: resp.Queue,
	}, true, nil
}

// Ack acknowledges a Get delivery.
func (c *Conn) Ack(queueName string, tag uint64) error {
	_, err := c.rpc(&frame{Op: opAck, Queue: queueName, Tag: tag})
	return err
}

// Nack rejects a Get delivery.
func (c *Conn) Nack(queueName string, tag uint64, requeue bool) error {
	_, err := c.rpc(&frame{Op: opNack, Queue: queueName, Tag: tag, Requeue: requeue})
	return err
}

// QueueStats fetches remote queue counters.
func (c *Conn) QueueStats(queueName string) (QueueStats, error) {
	resp, err := c.rpc(&frame{Op: opQueueStats, Queue: queueName})
	if err != nil {
		return QueueStats{}, err
	}
	if resp.Stats == nil {
		return QueueStats{}, errors.New("mq: missing stats in response")
	}
	return *resp.Stats, nil
}

// Consume subscribes to a remote queue; deliveries arrive on the
// returned RemoteConsumer's channel. On a resilient conn the
// subscription is re-attached after a reconnect and resumes from the
// broker-side buffer: deliveries the dead session left unacked are
// requeued by the server and redelivered.
func (c *Conn) Consume(queueName string, prefetch int) (*RemoteConsumer, error) {
	resp, err := c.rpc(&frame{Op: opConsume, Queue: queueName, Prefetch: prefetch})
	if err != nil {
		return nil, err
	}
	rc := &RemoteConsumer{
		conn:     c,
		queue:    queueName,
		prefetch: prefetch,
		ch:       make(chan Delivery, 128),
	}
	c.mu.Lock()
	c.consumerSet[rc] = struct{}{}
	c.attachConsumerLocked(resp.ConsumerID, rc)
	c.mu.Unlock()
	return rc, nil
}

// attachConsumerLocked registers rc under its server-session id and
// flushes deliveries that outran the registration, in arrival order.
// Caller holds c.mu — the read loop blocks on it to route deliveries,
// so nothing can interleave with the flush.
func (c *Conn) attachConsumerLocked(id uint64, rc *RemoteConsumer) {
	rc.id.Store(id)
	c.consumers[id] = rc
	buffered := c.orphans[id]
	delete(c.orphans, id)
	for _, d := range buffered {
		rc.deliver(d)
	}
}

// RemoteConsumer is the client-side view of a remote subscription.
type RemoteConsumer struct {
	conn     *Conn
	queue    string
	prefetch int

	// id is the server-session consumer id; it changes when a
	// resilient conn re-attaches the subscription after a reconnect.
	id atomic.Uint64

	mu     sync.Mutex
	ch     chan Delivery
	closed bool
}

// C returns the delivery channel; it closes when the consumer is
// cancelled or the connection dies permanently. It stays open across
// reconnects of a resilient conn.
func (rc *RemoteConsumer) C() <-chan Delivery { return rc.ch }

func (rc *RemoteConsumer) deliver(d Delivery) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return
	}
	// Block-free best effort: the channel is sized above typical
	// prefetch; if the application is too slow the delivery is
	// nacked back to the queue.
	select {
	case rc.ch <- d:
	default:
		go func() { _ = rc.Nack(d.Tag, true) }()
	}
}

func (rc *RemoteConsumer) closeChan() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if !rc.closed {
		rc.closed = true
		close(rc.ch)
	}
}

// Ack acknowledges a delivery from this consumer.
func (rc *RemoteConsumer) Ack(tag uint64) error {
	_, err := rc.conn.rpc(&frame{Op: opAck, ConsumerID: rc.id.Load(), Tag: tag})
	return err
}

// Nack rejects a delivery from this consumer.
func (rc *RemoteConsumer) Nack(tag uint64, requeue bool) error {
	_, err := rc.conn.rpc(&frame{Op: opNack, ConsumerID: rc.id.Load(), Tag: tag, Requeue: requeue})
	return err
}

// Cancel stops the subscription. The local teardown happens even when
// the cancel RPC fails (closed or reconnecting conn).
func (rc *RemoteConsumer) Cancel() error {
	_, err := rc.conn.rpc(&frame{Op: opCancel, ConsumerID: rc.id.Load()})
	rc.conn.mu.Lock()
	delete(rc.conn.consumers, rc.id.Load())
	delete(rc.conn.consumerSet, rc)
	// Deliveries parked for this id are already requeued server-side
	// by the cancel; drop the local copies.
	delete(rc.conn.orphans, rc.id.Load())
	rc.conn.mu.Unlock()
	rc.closeChan()
	return err
}
