package mq

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is a client connection to a broker Server. It multiplexes
// synchronous RPCs (declare, bind, publish, ...) and asynchronous
// deliveries over one TCP connection, mirroring an AMQP channel.
type Conn struct {
	conn net.Conn

	writeMu sync.Mutex

	mu        sync.Mutex
	nextCorr  uint64
	pending   map[uint64]chan *frame
	consumers map[uint64]*RemoteConsumer
	closed    bool
	closeErr  error

	readerDone chan struct{}
}

// Dial connects to a broker server.
func Dial(addr string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("mq dial %s: %w", addr, err)
	}
	c := &Conn{
		conn:       nc,
		pending:    make(map[uint64]chan *frame),
		consumers:  make(map[uint64]*RemoteConsumer),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; in-flight RPCs fail with
// errConnClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

func (c *Conn) readLoop() {
	defer close(c.readerDone)
	r := bufio.NewReader(c.conn)
	for {
		f, _, err := readFrame(r)
		if err != nil {
			c.failAll(err)
			return
		}
		switch f.Op {
		case opDeliver:
			c.mu.Lock()
			rc := c.consumers[f.ConsumerID]
			c.mu.Unlock()
			if rc != nil {
				rc.deliver(Delivery{
					Message: Message{
						ID:          f.MessageID,
						Exchange:    f.Exchange,
						RoutingKey:  f.RoutingKey,
						Headers:     f.Headers,
						Body:        f.Body,
						PublishedAt: f.PublishedAt,
						Redelivered: f.Redelivered,
					},
					Tag:   f.Tag,
					Queue: f.Queue,
				})
			}
		default:
			c.mu.Lock()
			ch := c.pending[f.Corr]
			delete(c.pending, f.Corr)
			c.mu.Unlock()
			if ch != nil {
				ch <- f
			}
		}
	}
}

// failAll wakes every pending RPC and closes consumer channels after
// the connection dies.
func (c *Conn) failAll(err error) {
	c.mu.Lock()
	c.closeErr = err
	c.closed = true
	pending := c.pending
	c.pending = make(map[uint64]chan *frame)
	consumers := c.consumers
	c.consumers = make(map[uint64]*RemoteConsumer)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	for _, rc := range consumers {
		rc.closeChan()
	}
}

// rpc sends one frame and waits for the correlated response.
func (c *Conn) rpc(f *frame) (*frame, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errConnClosed
	}
	c.nextCorr++
	f.Corr = c.nextCorr
	ch := make(chan *frame, 1)
	c.pending[f.Corr] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	_, err := writeFrame(c.conn, f)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, f.Corr)
		c.mu.Unlock()
		return nil, err
	}

	resp, ok := <-ch
	if !ok {
		return nil, errConnClosed
	}
	if resp.Op == opError {
		return nil, errors.New(resp.Error)
	}
	return resp, nil
}

// DeclareExchange declares an exchange on the remote broker.
func (c *Conn) DeclareExchange(name string, typ ExchangeType) error {
	_, err := c.rpc(&frame{Op: opDeclareExchange, Exchange: name, ExchangeType: typ.String()})
	return err
}

// DeleteExchange deletes a remote exchange.
func (c *Conn) DeleteExchange(name string) error {
	_, err := c.rpc(&frame{Op: opDeleteExchange, Exchange: name})
	return err
}

// DeclareQueue declares a remote queue.
func (c *Conn) DeclareQueue(name string, opts QueueOptions) error {
	_, err := c.rpc(&frame{
		Op:        opDeclareQueue,
		Queue:     name,
		MaxLen:    opts.MaxLen,
		TTLMillis: opts.TTL.Milliseconds(),
		Exclusive: opts.Exclusive,
	})
	return err
}

// DeleteQueue deletes a remote queue.
func (c *Conn) DeleteQueue(name string) error {
	_, err := c.rpc(&frame{Op: opDeleteQueue, Queue: name})
	return err
}

// BindQueue binds a remote queue to an exchange.
func (c *Conn) BindQueue(queueName, exchangeName, pattern string) error {
	_, err := c.rpc(&frame{Op: opBindQueue, Queue: queueName, Exchange: exchangeName, Pattern: pattern})
	return err
}

// BindExchange binds exchange dst to receive from src.
func (c *Conn) BindExchange(dstExchange, srcExchange, pattern string) error {
	_, err := c.rpc(&frame{Op: opBindExchange, Exchange: dstExchange, SrcExchange: srcExchange, Pattern: pattern})
	return err
}

// UnbindQueue removes a remote binding.
func (c *Conn) UnbindQueue(queueName, exchangeName, pattern string) error {
	_, err := c.rpc(&frame{Op: opUnbindQueue, Queue: queueName, Exchange: exchangeName, Pattern: pattern})
	return err
}

// Publish publishes a message; it returns the number of destination
// queues.
func (c *Conn) Publish(exchangeName, routingKey string, headers map[string]string, body []byte) (int, error) {
	resp, err := c.rpc(&frame{Op: opPublish, Exchange: exchangeName, RoutingKey: routingKey, Headers: headers, Body: body})
	if err != nil {
		return 0, err
	}
	return resp.Delivered, nil
}

// PublishAt publishes with an explicit timestamp (virtual-time sims).
func (c *Conn) PublishAt(exchangeName, routingKey string, headers map[string]string, body []byte, at time.Time) (int, error) {
	resp, err := c.rpc(&frame{Op: opPublish, Exchange: exchangeName, RoutingKey: routingKey, Headers: headers, Body: body, PublishedAt: at})
	if err != nil {
		return 0, err
	}
	return resp.Delivered, nil
}

// PublishBatch publishes a batch of messages to one exchange in a
// single wire round trip. Returns the total number of queue
// deliveries across the batch. Items without a timestamp are stamped
// with the broker's receive time.
func (c *Conn) PublishBatch(exchangeName string, items []PublishItem) (int, error) {
	resp, err := c.rpc(&frame{Op: opPublishBatch, Exchange: exchangeName, Items: items})
	if err != nil {
		return 0, err
	}
	return resp.Delivered, nil
}

// Get fetches one message from a remote queue (basic.get).
func (c *Conn) Get(queueName string) (Delivery, bool, error) {
	resp, err := c.rpc(&frame{Op: opGet, Queue: queueName})
	if err != nil {
		return Delivery{}, false, err
	}
	if !resp.Found {
		return Delivery{}, false, nil
	}
	return Delivery{
		Message: Message{
			ID:          resp.MessageID,
			Exchange:    resp.Exchange,
			RoutingKey:  resp.RoutingKey,
			Headers:     resp.Headers,
			Body:        resp.Body,
			PublishedAt: resp.PublishedAt,
			Redelivered: resp.Redelivered,
		},
		Tag:   resp.Tag,
		Queue: resp.Queue,
	}, true, nil
}

// Ack acknowledges a Get delivery.
func (c *Conn) Ack(queueName string, tag uint64) error {
	_, err := c.rpc(&frame{Op: opAck, Queue: queueName, Tag: tag})
	return err
}

// Nack rejects a Get delivery.
func (c *Conn) Nack(queueName string, tag uint64, requeue bool) error {
	_, err := c.rpc(&frame{Op: opNack, Queue: queueName, Tag: tag, Requeue: requeue})
	return err
}

// QueueStats fetches remote queue counters.
func (c *Conn) QueueStats(queueName string) (QueueStats, error) {
	resp, err := c.rpc(&frame{Op: opQueueStats, Queue: queueName})
	if err != nil {
		return QueueStats{}, err
	}
	if resp.Stats == nil {
		return QueueStats{}, errors.New("mq: missing stats in response")
	}
	return *resp.Stats, nil
}

// Consume subscribes to a remote queue; deliveries arrive on the
// returned RemoteConsumer's channel.
func (c *Conn) Consume(queueName string, prefetch int) (*RemoteConsumer, error) {
	resp, err := c.rpc(&frame{Op: opConsume, Queue: queueName, Prefetch: prefetch})
	if err != nil {
		return nil, err
	}
	rc := &RemoteConsumer{
		conn:  c,
		id:    resp.ConsumerID,
		queue: queueName,
		ch:    make(chan Delivery, 128),
	}
	c.mu.Lock()
	c.consumers[rc.id] = rc
	c.mu.Unlock()
	return rc, nil
}

// RemoteConsumer is the client-side view of a remote subscription.
type RemoteConsumer struct {
	conn  *Conn
	id    uint64
	queue string

	mu     sync.Mutex
	ch     chan Delivery
	closed bool
}

// C returns the delivery channel; it closes when the consumer is
// cancelled or the connection dies.
func (rc *RemoteConsumer) C() <-chan Delivery { return rc.ch }

func (rc *RemoteConsumer) deliver(d Delivery) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return
	}
	// Block-free best effort: the channel is sized above typical
	// prefetch; if the application is too slow the delivery is
	// nacked back to the queue.
	select {
	case rc.ch <- d:
	default:
		go func() { _ = rc.Nack(d.Tag, true) }()
	}
}

func (rc *RemoteConsumer) closeChan() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if !rc.closed {
		rc.closed = true
		close(rc.ch)
	}
}

// Ack acknowledges a delivery from this consumer.
func (rc *RemoteConsumer) Ack(tag uint64) error {
	_, err := rc.conn.rpc(&frame{Op: opAck, ConsumerID: rc.id, Tag: tag})
	return err
}

// Nack rejects a delivery from this consumer.
func (rc *RemoteConsumer) Nack(tag uint64, requeue bool) error {
	_, err := rc.conn.rpc(&frame{Op: opNack, ConsumerID: rc.id, Tag: tag, Requeue: requeue})
	return err
}

// Cancel stops the subscription.
func (rc *RemoteConsumer) Cancel() error {
	_, err := rc.conn.rpc(&frame{Op: opCancel, ConsumerID: rc.id})
	rc.conn.mu.Lock()
	delete(rc.conn.consumers, rc.id)
	rc.conn.mu.Unlock()
	rc.closeChan()
	return err
}
