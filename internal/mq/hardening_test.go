package mq

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// Hardening tests: hostile or broken clients must not crash or wedge
// the broker server.

func rawDial(t *testing.T, s *Server) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// serverStillServes proves the server survives by completing a
// normal request on a fresh connection.
func serverStillServes(t *testing.T, s *Server) {
	t.Helper()
	c := dialTest(t, s)
	if err := c.DeclareExchange("liveness", Topic); err != nil {
		t.Fatalf("server no longer serves: %v", err)
	}
}

func TestServerSurvivesGarbageBytes(t *testing.T) {
	_, s := startServer(t)
	conn := rawDial(t, s)
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: nope\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	serverStillServes(t, s)
}

func TestServerSurvivesHugeLengthPrefix(t *testing.T) {
	_, s := startServer(t)
	conn := rawDial(t, s)
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], 0xFFFFFFFF)
	if _, err := conn.Write(buf[:]); err != nil {
		t.Fatal(err)
	}
	// The server must reject the frame and drop the connection; the
	// read on our side eventually fails or returns nothing.
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	one := make([]byte, 1)
	_, _ = conn.Read(one)
	serverStillServes(t, s)
}

func TestServerSurvivesTruncatedFrame(t *testing.T) {
	_, s := startServer(t)
	conn := rawDial(t, s)
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], 100) // promise 100 bytes
	if _, err := conn.Write(buf[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(`{"op":"pub`)); err != nil { // deliver 10
		t.Fatal(err)
	}
	_ = conn.Close() // hang up mid-frame
	serverStillServes(t, s)
}

func TestServerSurvivesMalformedJSONFrame(t *testing.T) {
	_, s := startServer(t)
	conn := rawDial(t, s)
	payload := []byte("{this is not json")
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := conn.Write(append(lenBuf[:], payload...)); err != nil {
		t.Fatal(err)
	}
	serverStillServes(t, s)
}

func TestServerSurvivesUnknownOp(t *testing.T) {
	_, s := startServer(t)
	c := dialTest(t, s)
	// Reach through the RPC plumbing with an op the server does not
	// know; it must answer with an error frame, not drop us.
	if _, err := c.rpc(&frame{Op: "self-destruct"}); err == nil {
		t.Fatal("unknown op must return an error")
	}
	// Same connection still works.
	if err := c.DeclareExchange("x", Topic); err != nil {
		t.Fatal(err)
	}
}

func TestServerSurvivesRapidConnectDisconnect(t *testing.T) {
	_, s := startServer(t)
	for i := 0; i < 50; i++ {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_ = conn.Close()
	}
	serverStillServes(t, s)
}
