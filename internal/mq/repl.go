package mq

import (
	"bufio"
	"io"
)

// Replication protocol. Log shipping between a shard leader and its
// followers rides the same wire layer as the broker protocol — 4-byte
// big-endian length + JSON frame — but with its own frame shape and a
// dedicated connection per (follower, shard): a replication connection
// never multiplexes broker traffic, so a stalled catch-up read cannot
// head-of-line-block deliveries.
//
// The exchange is follower-driven pull:
//
//	F -> L  hello  {shard}                       open a stream
//	L -> F  hello  {shard, leaderLSN}            leader confirms
//	F -> L  fetch  {from, appliedLSN, max...}    ask for records >= from
//	L -> F  batch  {records, leaderLSN}          zero records = caught up
//
// Every fetch carries the follower's applied LSN, so the leader learns
// follower progress (for ack quorums and truncation bounds) without a
// separate ack message. A fetch at the leader's durable LSN long-polls
// until new records commit or a heartbeat interval elapses, so the
// live tail needs no push channel.

// Replication ops.
const (
	ReplOpHello = "repl-hello"
	ReplOpFetch = "repl-fetch"
	ReplOpBatch = "repl-batch"
	ReplOpError = "repl-error"

	// Election ops. A candidate requests votes from every peer; a peer
	// answers with its term and whether the vote was granted. Ping is
	// the leadership probe/announcement: any node answers with its term
	// and who it believes leads.
	ReplOpVote     = "repl-vote"
	ReplOpVoteResp = "repl-vote-resp"
	ReplOpPing     = "repl-ping"
	ReplOpPingResp = "repl-ping-resp"

	// Snapshot-transfer ops. A follower whose fetch position precedes
	// the leader's retained log requests the leader's latest checkpoint
	// chunk by chunk, resumable at any byte offset.
	ReplOpSnap      = "repl-snap"
	ReplOpSnapChunk = "repl-snap-chunk"
)

// Error codes carried by ReplOpError frames, so followers can react to
// the failure class instead of parsing message strings.
const (
	// ReplErrNotLeader: the node is not the leader; LeaderName /
	// LeaderAddr, when set, hint where to re-dial.
	ReplErrNotLeader = "not-leader"
	// ReplErrStaleTerm: the peer has observed a higher term than the
	// frame carried; Term is the higher term.
	ReplErrStaleTerm = "stale-term"
	// ReplErrTruncated: the requested fetch position precedes the
	// leader's retained log — the follower must bootstrap from a
	// snapshot (SnapLSN is the LSN the leader's checkpoint covers).
	ReplErrTruncated = "truncated"
	// ReplErrDiverged: the follower's log is ahead of the leader's —
	// a deposed leader's unacknowledged tail. The follower must
	// discard its log and bootstrap from a snapshot.
	ReplErrDiverged = "diverged"
	// ReplErrCorrupt: a sealed WAL segment on the serving side is
	// damaged; Segment and Offset localize the first bad frame.
	ReplErrCorrupt = "corrupt"
	// ReplErrNoSnapshot: a snapshot was requested but the leader has
	// none to serve.
	ReplErrNoSnapshot = "no-snapshot"
)

// ReplRecord is one WAL record in flight: the leader's LSN, the record
// type byte, and the opaque payload (an encoded docstore mutation).
type ReplRecord struct {
	LSN     uint64 `json:"lsn"`
	Type    uint8  `json:"type"`
	Payload []byte `json:"payload"`
}

// ReplFrame is the single replication message shape; unused fields are
// omitted on the wire.
type ReplFrame struct {
	Op    string `json:"op"`
	Error string `json:"error,omitempty"`
	// Code classifies an error frame (see the ReplErr constants); ""
	// on non-error frames and on errors older peers produced.
	Code string `json:"code,omitempty"`

	// Term is the election term of the sender's world view. Leaders
	// stamp it on hello and batch frames; followers echo it on fetch,
	// which is how a deposed leader learns it has been superseded.
	Term uint64 `json:"term,omitempty"`
	// Candidate / LastLSN / Granted carry the vote exchange: the
	// candidate's name and highest durable LSN, and the voter's
	// decision. PreVote marks a non-binding poll — the voter answers
	// as if the term were real but persists nothing and keeps its
	// vote, so an isolated node cannot inflate the group's term by
	// campaigning into a void.
	// Forced marks an operator-initiated candidacy (manual override):
	// voters skip the leader-stickiness lease check but still refuse
	// any candidate whose log is behind their own.
	Candidate string `json:"candidate,omitempty"`
	LastLSN   uint64 `json:"lastLsn,omitempty"`
	Granted   bool   `json:"granted,omitempty"`
	PreVote   bool   `json:"preVote,omitempty"`
	Forced    bool   `json:"forced,omitempty"`
	// LeaderName / LeaderAddr identify the leader the sender believes
	// in (ping announcements, not-leader redirects).
	LeaderName string `json:"leaderName,omitempty"`
	LeaderAddr string `json:"leaderAddr,omitempty"`

	// Snapshot transfer: Offset is the requested/served byte offset,
	// Data one chunk of the checkpoint stream, CRC its CRC-32C,
	// SnapLSN the LSN the snapshot covers, and SnapSize the full
	// snapshot size (so the follower knows when it is done and can
	// detect the leader checkpointing a newer snapshot mid-transfer).
	Offset   int64  `json:"offset,omitempty"`
	Data     []byte `json:"data,omitempty"`
	CRC      uint32 `json:"crc,omitempty"`
	SnapLSN  uint64 `json:"snapLsn,omitempty"`
	SnapSize int64  `json:"snapSize,omitempty"`

	// Segment localizes a ReplErrCorrupt error (Offset doubles as the
	// byte offset of the first bad frame).
	Segment string `json:"segment,omitempty"`

	// Shard identifies the shard stream in hello frames.
	Shard int `json:"shard,omitempty"`
	// Follower is the follower's stable name (hello). The leader keys
	// acknowledgement tracking by it, so a reconnecting follower
	// resumes its own ack slot instead of minting a new one.
	Follower string `json:"follower,omitempty"`
	// From is the first LSN the follower wants (fetch).
	From uint64 `json:"from,omitempty"`
	// AppliedLSN is the highest LSN the follower has durably applied
	// (fetch); the leader uses it for ack quorums and truncation.
	AppliedLSN uint64 `json:"appliedLsn,omitempty"`
	// MaxRecords / MaxBytes bound one batch (fetch). Zero = leader
	// defaults. A record that crosses MaxBytes is still included, so a
	// record larger than the budget cannot wedge the stream.
	MaxRecords int `json:"maxRecords,omitempty"`
	MaxBytes   int `json:"maxBytes,omitempty"`

	// Records is the shipped batch, in LSN order (batch).
	Records []ReplRecord `json:"records,omitempty"`
	// LeaderLSN is the leader's durable LSN when the frame was built
	// (hello, batch) — the follower's lag is LeaderLSN - AppliedLSN.
	LeaderLSN uint64 `json:"leaderLsn,omitempty"`
}

// WriteReplFrame writes one replication frame, returning the bytes put
// on the wire.
func WriteReplFrame(w io.Writer, f *ReplFrame) (int, error) {
	return writeJSONFrame(w, f)
}

// ReadReplFrame reads one replication frame, returning the bytes
// consumed from the wire.
func ReadReplFrame(r *bufio.Reader) (*ReplFrame, int, error) {
	var f ReplFrame
	n, err := readJSONFrame(r, &f)
	if err != nil {
		return nil, n, err
	}
	return &f, n, nil
}
