package mq

import (
	"bufio"
	"io"
)

// Replication protocol. Log shipping between a shard leader and its
// followers rides the same wire layer as the broker protocol — 4-byte
// big-endian length + JSON frame — but with its own frame shape and a
// dedicated connection per (follower, shard): a replication connection
// never multiplexes broker traffic, so a stalled catch-up read cannot
// head-of-line-block deliveries.
//
// The exchange is follower-driven pull:
//
//	F -> L  hello  {shard}                       open a stream
//	L -> F  hello  {shard, leaderLSN}            leader confirms
//	F -> L  fetch  {from, appliedLSN, max...}    ask for records >= from
//	L -> F  batch  {records, leaderLSN}          zero records = caught up
//
// Every fetch carries the follower's applied LSN, so the leader learns
// follower progress (for ack quorums and truncation bounds) without a
// separate ack message. A fetch at the leader's durable LSN long-polls
// until new records commit or a heartbeat interval elapses, so the
// live tail needs no push channel.

// Replication ops.
const (
	ReplOpHello = "repl-hello"
	ReplOpFetch = "repl-fetch"
	ReplOpBatch = "repl-batch"
	ReplOpError = "repl-error"
)

// ReplRecord is one WAL record in flight: the leader's LSN, the record
// type byte, and the opaque payload (an encoded docstore mutation).
type ReplRecord struct {
	LSN     uint64 `json:"lsn"`
	Type    uint8  `json:"type"`
	Payload []byte `json:"payload"`
}

// ReplFrame is the single replication message shape; unused fields are
// omitted on the wire.
type ReplFrame struct {
	Op    string `json:"op"`
	Error string `json:"error,omitempty"`

	// Shard identifies the shard stream in hello frames.
	Shard int `json:"shard,omitempty"`
	// Follower is the follower's stable name (hello). The leader keys
	// acknowledgement tracking by it, so a reconnecting follower
	// resumes its own ack slot instead of minting a new one.
	Follower string `json:"follower,omitempty"`
	// From is the first LSN the follower wants (fetch).
	From uint64 `json:"from,omitempty"`
	// AppliedLSN is the highest LSN the follower has durably applied
	// (fetch); the leader uses it for ack quorums and truncation.
	AppliedLSN uint64 `json:"appliedLsn,omitempty"`
	// MaxRecords / MaxBytes bound one batch (fetch). Zero = leader
	// defaults. A record that crosses MaxBytes is still included, so a
	// record larger than the budget cannot wedge the stream.
	MaxRecords int `json:"maxRecords,omitempty"`
	MaxBytes   int `json:"maxBytes,omitempty"`

	// Records is the shipped batch, in LSN order (batch).
	Records []ReplRecord `json:"records,omitempty"`
	// LeaderLSN is the leader's durable LSN when the frame was built
	// (hello, batch) — the follower's lag is LeaderLSN - AppliedLSN.
	LeaderLSN uint64 `json:"leaderLsn,omitempty"`
}

// WriteReplFrame writes one replication frame, returning the bytes put
// on the wire.
func WriteReplFrame(w io.Writer, f *ReplFrame) (int, error) {
	return writeJSONFrame(w, f)
}

// ReadReplFrame reads one replication frame, returning the bytes
// consumed from the wire.
func ReadReplFrame(r *bufio.Reader) (*ReplFrame, int, error) {
	var f ReplFrame
	n, err := readJSONFrame(r, &f)
	if err != nil {
		return nil, n, err
	}
	return &f, n, nil
}
