package mq

import (
	"runtime"
	"testing"
	"time"
)

// Goroutine hygiene: servers, consumers and connections must not leak
// goroutines after Close (stdlib-only stand-in for goleak).

// stableGoroutines samples the goroutine count until it stops
// shrinking (letting exiting goroutines finish).
func stableGoroutines(t *testing.T) int {
	t.Helper()
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur >= prev {
			return cur
		}
		prev = cur
	}
	return prev
}

func TestServerCloseLeaksNoGoroutines(t *testing.T) {
	before := stableGoroutines(t)

	for round := 0; round < 3; round++ {
		broker := NewBroker()
		server, err := NewServer(broker, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conn, err := Dial(server.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.DeclareExchange("x", Fanout); err != nil {
			t.Fatal(err)
		}
		if err := conn.DeclareQueue("q", QueueOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := conn.BindQueue("q", "x", ""); err != nil {
			t.Fatal(err)
		}
		rc, err := conn.Consume("q", 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Publish("x", "k", nil, []byte("m")); err != nil {
			t.Fatal(err)
		}
		select {
		case d := <-rc.C():
			if err := rc.Ack(d.Tag); err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("no delivery")
		}
		if err := conn.Close(); err != nil {
			t.Fatal(err)
		}
		server.Close()
		broker.Close()
	}

	after := stableGoroutines(t)
	// Allow a small slop for runtime/test goroutines, but repeated
	// create/close cycles must not accumulate.
	if after > before+3 {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}

func TestConsumerCancelLeaksNoGoroutines(t *testing.T) {
	before := stableGoroutines(t)
	b := NewBroker()
	for i := 0; i < 20; i++ {
		if err := b.DeclareQueue("q", QueueOptions{}); err != nil {
			t.Fatal(err)
		}
		c, err := b.Consume("q", 0)
		if err != nil {
			t.Fatal(err)
		}
		c.Cancel()
	}
	b.Close()
	after := stableGoroutines(t)
	if after > before+3 {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}
