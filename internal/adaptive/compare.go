package adaptive

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/urbancivics/goflow/internal/assim"
	"github.com/urbancivics/goflow/internal/geo"
)

// CompareStrategies runs the twin experiment behind the "informative
// sensing" claim: walkers move through a city whose noise model is
// biased; with the SAME per-walker measurement budget, periodic
// sampling is compared against variance-driven adaptive scheduling.
//
// The adaptive strategy optimizes information: it reaches a
// substantially lower residual map uncertainty (Coverage) while
// typically spending FEWER measurements — it skips spots the crowd
// has already pinned down. Its RMSE stays comparable to periodic
// sampling (periodic's redundant revisits buy local noise averaging
// instead of coverage); which currency matters is the application's
// energy-vs-information tradeoff from the paper's Section 8.

// CompareConfig parameterizes the comparison.
type CompareConfig struct {
	// Walkers in the fleet.
	Walkers int
	// StepsPerWalker is the number of sensing opportunities each
	// walker passes.
	StepsPerWalker int
	// BudgetPerWalker is the number of measurements each walker may
	// spend.
	BudgetPerWalker int
	// GridRows/GridCols of the analysis grid.
	GridRows, GridCols int
	// ObsNoise is the sensor error (dB).
	ObsNoise float64
	// BackgroundBias is the model's systematic error (dB).
	BackgroundBias float64
	// Seed drives the randomness.
	Seed int64
	// Params for the assimilation.
	Params assim.BLUEParams
}

func (c CompareConfig) withDefaults() (CompareConfig, error) {
	if c.Walkers <= 0 {
		c.Walkers = 10
	}
	if c.StepsPerWalker <= 0 {
		c.StepsPerWalker = 100
	}
	if c.BudgetPerWalker <= 0 {
		c.BudgetPerWalker = 10
	}
	if c.GridRows <= 0 {
		c.GridRows = 20
	}
	if c.GridCols <= 0 {
		c.GridCols = 20
	}
	if c.ObsNoise <= 0 {
		c.ObsNoise = 3
	}
	if c.BackgroundBias == 0 {
		c.BackgroundBias = 5
	}
	if c.Params == (assim.BLUEParams{}) {
		c.Params = assim.BLUEParams{SigmaB: 6, CorrLengthM: 500}
	}
	if c.BudgetPerWalker > c.StepsPerWalker {
		return c, errors.New("adaptive: budget exceeds opportunities")
	}
	return c, nil
}

// StrategyResult summarizes one strategy's outcome.
type StrategyResult struct {
	// Measurements actually spent across the fleet.
	Measurements int `json:"measurements"`
	// RMSE of the final analysis against the truth (dB).
	RMSE float64 `json:"rmse"`
	// Coverage is the residual mean variance fraction (1 = nothing
	// learned, 0 = fully pinned down).
	Coverage float64 `json:"coverage"`
}

// walk produces each walker's random-walk cell sequence; both
// strategies replay identical walks so only the decision differs.
func walks(rng *rand.Rand, cfg CompareConfig) [][][2]int {
	out := make([][][2]int, cfg.Walkers)
	for w := range out {
		r := rng.Intn(cfg.GridRows)
		c := rng.Intn(cfg.GridCols)
		seq := make([][2]int, cfg.StepsPerWalker)
		for s := range seq {
			r += rng.Intn(3) - 1
			c += rng.Intn(3) - 1
			if r < 0 {
				r = 0
			}
			if r >= cfg.GridRows {
				r = cfg.GridRows - 1
			}
			if c < 0 {
				c = 0
			}
			if c >= cfg.GridCols {
				c = cfg.GridCols - 1
			}
			seq[s] = [2]int{r, c}
		}
		out[w] = seq
	}
	return out
}

// CompareStrategies returns (periodic, adaptive) results.
func CompareStrategies(cfg CompareConfig) (StrategyResult, StrategyResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return StrategyResult{}, StrategyResult{}, err
	}
	city, err := assim.RandomCity(assim.CityConfig{Seed: cfg.Seed})
	if err != nil {
		return StrategyResult{}, StrategyResult{}, err
	}
	truth, err := city.NoiseField(cfg.GridRows, cfg.GridCols)
	if err != nil {
		return StrategyResult{}, StrategyResult{}, err
	}
	background := truth.Clone()
	for i := range background.Values {
		background.Values[i] += cfg.BackgroundBias
	}

	walkRng := rand.New(rand.NewSource(cfg.Seed + 1))
	paths := walks(walkRng, cfg)

	periodic, err := runStrategy(cfg, truth, background, paths, false)
	if err != nil {
		return StrategyResult{}, StrategyResult{}, fmt.Errorf("periodic: %w", err)
	}
	adaptive, err := runStrategy(cfg, truth, background, paths, true)
	if err != nil {
		return StrategyResult{}, StrategyResult{}, fmt.Errorf("adaptive: %w", err)
	}
	return periodic, adaptive, nil
}

func runStrategy(cfg CompareConfig, truth, background *geo.Grid, paths [][][2]int, adaptive bool) (StrategyResult, error) {
	noiseRng := rand.New(rand.NewSource(cfg.Seed + 2))
	// Flush once per walker round so the variance field the adaptive
	// scheduler reads reflects the fleet's measurements promptly.
	stream, err := assim.NewStreamAnalyzer(background, cfg.Params, len(paths))
	if err != nil {
		return StrategyResult{}, err
	}
	prior := cfg.Params.SigmaB * cfg.Params.SigmaB

	schedulers := make([]*Scheduler, len(paths))
	if adaptive {
		for w := range schedulers {
			schedulers[w], err = NewScheduler(SchedulerConfig{
				Budget:          cfg.BudgetPerWalker,
				MinVarianceFrac: 0.35,
				PriorVariance:   prior,
			}, cfg.StepsPerWalker)
			if err != nil {
				return StrategyResult{}, err
			}
		}
	}
	period := cfg.StepsPerWalker / cfg.BudgetPerWalker

	total := 0
	// Interleave walkers step by step so the variance field evolves
	// like the real fleet's shared map.
	for step := 0; step < cfg.StepsPerWalker; step++ {
		for w, path := range paths {
			cell := path[step]
			at := truth.CellCenter(cell[0], cell[1])
			var sense bool
			if adaptive {
				sense = schedulers[w].Decide(at, stream.VarianceField())
			} else {
				sense = step%period == 0 && step/period < cfg.BudgetPerWalker
			}
			if !sense {
				continue
			}
			v := truth.At(cell[0], cell[1])
			if err := stream.Add(assim.Observation{
				At:      at,
				ValueDB: v + cfg.ObsNoise*noiseRng.NormFloat64(),
				SigmaDB: cfg.ObsNoise,
			}); err != nil {
				return StrategyResult{}, err
			}
			total++
		}
	}
	analysis, err := stream.Current()
	if err != nil {
		return StrategyResult{}, err
	}
	rmse, err := assim.RMSE(analysis, truth)
	if err != nil {
		return StrategyResult{}, err
	}
	coverage, err := CoverageEntropy(stream.VarianceField(), prior)
	if err != nil {
		return StrategyResult{}, err
	}
	return StrategyResult{Measurements: total, RMSE: rmse, Coverage: coverage}, nil
}
