package adaptive

import (
	"testing"

	"github.com/urbancivics/goflow/internal/geo"
)

func TestSchedulerConfigValidate(t *testing.T) {
	good := SchedulerConfig{Budget: 10, MinVarianceFrac: 0.3, PriorVariance: 36}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*SchedulerConfig)
	}{
		{"zero budget", func(c *SchedulerConfig) { c.Budget = 0 }},
		{"frac 1", func(c *SchedulerConfig) { c.MinVarianceFrac = 1 }},
		{"negative frac", func(c *SchedulerConfig) { c.MinVarianceFrac = -0.1 }},
		{"zero prior", func(c *SchedulerConfig) { c.PriorVariance = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
	if _, err := NewScheduler(good, 0); err == nil {
		t.Fatal("zero opportunities must fail")
	}
}

func varianceGrid(t *testing.T, frac float64, prior float64) *geo.Grid {
	t.Helper()
	g, err := geo.NewGrid(geo.ParisBBox(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Values {
		g.Values[i] = frac * prior
	}
	return g
}

func TestSchedulerRespectsBudget(t *testing.T) {
	cfg := SchedulerConfig{Budget: 3, MinVarianceFrac: 0.3, PriorVariance: 36}
	s, err := NewScheduler(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	high := varianceGrid(t, 1.0, 36) // everything maximally uncertain
	at := high.CellCenter(2, 2)
	taken := 0
	for i := 0; i < 100; i++ {
		if s.Decide(at, high) {
			taken++
		}
	}
	if taken != 3 {
		t.Fatalf("took %d measurements, budget was 3", taken)
	}
	if s.Spent() != 3 {
		t.Fatalf("Spent() = %d", s.Spent())
	}
}

func TestSchedulerSkipsWellObservedEarly(t *testing.T) {
	cfg := SchedulerConfig{Budget: 5, MinVarianceFrac: 0.4, PriorVariance: 36}
	s, err := NewScheduler(cfg, 1000) // plenty of opportunities: low pressure
	if err != nil {
		t.Fatal(err)
	}
	low := varianceGrid(t, 0.05, 36) // already pinned down
	if s.Decide(low.CellCenter(0, 0), low) {
		t.Fatal("low-variance spot accepted despite low budget pressure")
	}
	high := varianceGrid(t, 0.9, 36)
	if !s.Decide(high.CellCenter(0, 0), high) {
		t.Fatal("high-variance spot rejected")
	}
}

func TestSchedulerSpendsUnderPressure(t *testing.T) {
	// With opportunities nearly exhausted, even a well-observed spot
	// is taken rather than wasting budget.
	cfg := SchedulerConfig{Budget: 2, MinVarianceFrac: 0.5, PriorVariance: 36}
	s, err := NewScheduler(cfg, 2) // pressure = 1 from the start
	if err != nil {
		t.Fatal(err)
	}
	low := varianceGrid(t, 0.05, 36)
	if !s.Decide(low.CellCenter(0, 0), low) {
		t.Fatal("scheduler wasted budget under full pressure")
	}
}

func TestSchedulerUnknownLocationUsesPrior(t *testing.T) {
	cfg := SchedulerConfig{Budget: 1, MinVarianceFrac: 0.4, PriorVariance: 36}
	s, err := NewScheduler(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Outside the variance grid: treated as prior (max uncertainty).
	if !s.Decide(geo.Point{Lat: 0, Lon: 0}, varianceGrid(t, 0.05, 36)) {
		t.Fatal("off-grid location must be treated as unknown (prior variance)")
	}
	// Nil field likewise.
	s2, err := NewScheduler(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Decide(geo.Point{Lat: 48.85, Lon: 2.35}, nil) {
		t.Fatal("nil variance field must be treated as unknown")
	}
}

func TestInformationGain(t *testing.T) {
	// Perfect sensor removes all variance; useless sensor removes
	// almost none.
	if g := InformationGain(36, 0.0001); g < 35.9 {
		t.Fatalf("near-perfect sensor gain = %v", g)
	}
	if g := InformationGain(36, 100); g > 4 {
		t.Fatalf("noisy sensor gain = %v", g)
	}
	if InformationGain(0, 3) != 0 || InformationGain(36, 0) != 0 {
		t.Fatal("degenerate inputs must gain 0")
	}
	// Gain grows with prior variance.
	if InformationGain(36, 3) <= InformationGain(9, 3) {
		t.Fatal("gain must grow with uncertainty")
	}
}

func TestCoverageEntropy(t *testing.T) {
	full := varianceGrid(t, 1.0, 36)
	e, err := CoverageEntropy(full, 36)
	if err != nil || e != 1 {
		t.Fatalf("untouched field entropy = %v, %v", e, err)
	}
	half := varianceGrid(t, 0.5, 36)
	e, err = CoverageEntropy(half, 36)
	if err != nil || e != 0.5 {
		t.Fatalf("half field entropy = %v, %v", e, err)
	}
	if _, err := CoverageEntropy(nil, 36); err == nil {
		t.Fatal("nil field must fail")
	}
	if _, err := CoverageEntropy(full, 0); err == nil {
		t.Fatal("zero prior must fail")
	}
}

func TestCompareStrategiesAdaptiveGathersMoreInformation(t *testing.T) {
	periodic, adaptive, err := CompareStrategies(CompareConfig{
		Walkers:         15,
		StepsPerWalker:  80,
		BudgetPerWalker: 10,
		GridRows:        12,
		GridCols:        12,
		Seed:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Budgets: adaptive may spend less (it skips covered spots),
	// never more.
	if adaptive.Measurements > periodic.Measurements {
		t.Fatalf("adaptive spent %d > periodic %d", adaptive.Measurements, periodic.Measurements)
	}
	if periodic.Measurements == 0 || adaptive.Measurements == 0 {
		t.Fatal("strategies must take measurements")
	}
	// The headline claim: at the same (or lower) energy, informed
	// scheduling leaves substantially less residual map uncertainty.
	if adaptive.Coverage > periodic.Coverage*0.9 {
		t.Fatalf("adaptive residual uncertainty %.3f vs periodic %.3f — want >= 10%% better",
			adaptive.Coverage, periodic.Coverage)
	}
	// And the map quality stays comparable (periodic's redundancy
	// buys noise averaging, not coverage).
	if adaptive.RMSE > periodic.RMSE*1.25 {
		t.Fatalf("adaptive RMSE %.3f vs periodic %.3f — degraded too far", adaptive.RMSE, periodic.RMSE)
	}
	// Information per measurement: adaptive removes more variance
	// per observation spent.
	perObsAdaptive := (1 - adaptive.Coverage) / float64(adaptive.Measurements)
	perObsPeriodic := (1 - periodic.Coverage) / float64(periodic.Measurements)
	if perObsAdaptive <= perObsPeriodic {
		t.Fatalf("information per measurement: adaptive %.5f <= periodic %.5f", perObsAdaptive, perObsPeriodic)
	}
}

func TestCompareStrategiesValidation(t *testing.T) {
	_, _, err := CompareStrategies(CompareConfig{StepsPerWalker: 5, BudgetPerWalker: 10})
	if err == nil {
		t.Fatal("budget > opportunities must fail")
	}
}
