// Package adaptive implements informed sensing scheduling — the
// paper's future work (Section 8): "the sensing times and locations
// could be chosen accordingly, with the objective of collecting the
// most informative data while limiting energy consumption."
//
// A Scheduler decides, at each sensing opportunity, whether a
// measurement is worth its energy. It is driven by the assimilation
// engine's per-cell error variance (assim.StreamAnalyzer.VarianceField):
// a measurement is informative where the map is still uncertain, and
// wasteful where the crowd has already pinned the field down.
package adaptive

import (
	"errors"

	"github.com/urbancivics/goflow/internal/geo"
)

// SchedulerConfig tunes the sensing decision.
type SchedulerConfig struct {
	// Budget is the maximum number of measurements per device per
	// day; the scheduler spends it where variance is highest.
	Budget int
	// MinVarianceFrac is the fraction of the prior variance below
	// which a location is considered already well observed and not
	// worth a measurement (e.g. 0.3).
	MinVarianceFrac float64
	// PriorVariance is the assimilation prior (sigmaB², dB²).
	PriorVariance float64
}

// Validate checks config invariants.
func (c SchedulerConfig) Validate() error {
	if c.Budget < 1 {
		return errors.New("adaptive: budget must be >= 1")
	}
	if c.MinVarianceFrac < 0 || c.MinVarianceFrac >= 1 {
		return errors.New("adaptive: MinVarianceFrac must be in [0,1)")
	}
	if c.PriorVariance <= 0 {
		return errors.New("adaptive: prior variance must be positive")
	}
	return nil
}

// Scheduler makes greedy information-per-energy sensing decisions for
// one device-day. It is not safe for concurrent use (one per device,
// like the sensing loop).
type Scheduler struct {
	cfg   SchedulerConfig
	spent int
	// seen/total opportunities let the scheduler pace its spending
	// against the day: ahead of schedule it gets pickier, behind
	// schedule it loosens so the budget never goes unused.
	seenOpportunities  int
	totalOpportunities int
}

// NewScheduler builds a scheduler for a device-day with the given
// number of sensing opportunities (e.g. 288 five-minute cycles).
func NewScheduler(cfg SchedulerConfig, opportunities int) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opportunities < 1 {
		return nil, errors.New("adaptive: opportunities must be >= 1")
	}
	return &Scheduler{cfg: cfg, totalOpportunities: opportunities}, nil
}

// Spent returns the number of measurements taken so far.
func (s *Scheduler) Spent() int { return s.spent }

// Decide reports whether to sense now at the given location, given
// the current assimilation variance field. Variance outside the field
// is treated as the prior (completely unknown). A true decision
// consumes budget.
func (s *Scheduler) Decide(at geo.Point, variance *geo.Grid) bool {
	s.seenOpportunities++
	if s.spent >= s.cfg.Budget {
		return false
	}
	v := s.cfg.PriorVariance
	if variance != nil {
		if sampled, ok := variance.Sample(at); ok {
			v = sampled
		}
	}
	frac := v / s.cfg.PriorVariance
	if frac > 1 {
		frac = 1
	}
	// Pace spending against the day. The on-schedule spend after a
	// fraction q of the opportunities is q·Budget; the threshold
	// starts at MinVarianceFrac, rises by the surplus fraction when
	// ahead of schedule (get pickier) and falls when behind (the
	// budget must not expire unspent).
	q := float64(s.seenOpportunities) / float64(s.totalOpportunities)
	surplus := (float64(s.spent) - q*float64(s.cfg.Budget)) / float64(s.cfg.Budget)
	threshold := s.cfg.MinVarianceFrac + surplus
	if threshold < 0 {
		threshold = 0
	}
	if threshold > 0.98 {
		threshold = 0.98
	}
	if frac < threshold {
		return false
	}
	s.spent++
	return true
}

// InformationGain estimates the variance a measurement with error
// sigmaO (dB) removes at its location: v - v·sigmaO²/(v+sigmaO²),
// the scalar BLUE posterior reduction.
func InformationGain(v, sigmaO float64) float64 {
	if v <= 0 || sigmaO <= 0 {
		return 0
	}
	o2 := sigmaO * sigmaO
	return v * v / (v + o2)
}

// CoverageEntropy summarizes how evenly a variance field has been
// reduced: the mean of v/prior over cells (1 = nothing observed,
// -> 0 as the whole map gets pinned down). Schedulers compare
// strategies by the entropy they reach per measurement spent.
func CoverageEntropy(variance *geo.Grid, prior float64) (float64, error) {
	if variance == nil || len(variance.Values) == 0 {
		return 0, errors.New("adaptive: empty variance field")
	}
	if prior <= 0 {
		return 0, errors.New("adaptive: prior must be positive")
	}
	sum := 0.0
	for _, v := range variance.Values {
		f := v / prior
		if f > 1 {
			f = 1
		}
		if f < 0 {
			f = 0
		}
		sum += f
	}
	return sum / float64(len(variance.Values)), nil
}
