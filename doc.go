// Package goflow is a from-scratch reproduction of the mobile phone
// sensing (MPS) middleware study "Dos and Don'ts in Mobile Phone
// Sensing Middleware: Learning from a Large-Scale Experiment"
// (Issarny et al., ACM/IFIP/USENIX Middleware 2016).
//
// The repository contains the full system the paper describes:
//
//   - internal/mq — an AMQP-style message broker (the RabbitMQ role):
//     direct/fanout/topic exchanges, queues, exchange-to-exchange
//     bindings, acknowledgements, and a TCP wire protocol;
//   - internal/docstore — a document store (the MongoDB role);
//   - internal/goflow — the GoFlow crowd-sensing server: accounts,
//     channel management, crowd-sensed data management, privacy
//     policy, analytics, background jobs, and a REST API;
//   - internal/client — the mobile GoFlow client with the unbuffered
//     (v1.1/v1.2.9) and buffered (v1.3) upload policies;
//   - internal/device — the simulated phone fleet that substitutes
//     for the paper's ~2,000 real contributors: per-model microphone
//     and location behaviour, user diurnal habits, battery and
//     connectivity models, calibrated to the published Figure 9
//     per-model counts;
//   - internal/sensing — the sensing domain model (observations,
//     providers, modes, activities, calibration database);
//   - internal/assim — the data assimilation engine (the Verdandi
//     role): a city noise model and BLUE analysis;
//   - internal/soundcity — the SoundCity application layer;
//   - internal/analysis and internal/experiment — the empirical
//     analyses regenerating every table and figure of the paper.
//
// See DESIGN.md for the system inventory and the per-experiment
// index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate each figure; run
//
//	go test -bench=Fig -benchmem .
//
// or use cmd/experiments for the full report.
package goflow

// Version is the library version.
const Version = "1.0.0"
