// Journey: the participatory-sensing experience of Section 4.2. A
// user walks a journey measuring noise at their chosen frequency,
// shares the resulting collaborative map publicly, and a neighbour
// subscribed to journey notifications in the zone receives the
// announcement through the broker (the Figure 3 scenario).
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/geo"
	"github.com/urbancivics/goflow/internal/goflow"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/sensing"
	"github.com/urbancivics/goflow/internal/soundcity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	broker := mq.NewBroker()
	defer broker.Close()
	store := docstore.NewStore()
	server, err := goflow.NewServer(goflow.ServerConfig{Broker: broker, Store: store})
	if err != nil {
		return err
	}
	defer server.Shutdown()
	if _, err := soundcity.Register(server); err != nil {
		return err
	}

	// Two clients: the walker and a neighbour.
	walker, err := server.Login(soundcity.AppID)
	if err != nil {
		return err
	}
	neighbour, err := server.Login(soundcity.AppID)
	if err != nil {
		return err
	}

	// The walker's journey: 12 measurements along a street, 30 s
	// apart (the user picks the frequency in journey mode).
	zones := geo.ParisZones()
	start := geo.Point{Lat: 48.8566, Lon: 2.3522}
	begin := time.Date(2016, 4, 20, 18, 30, 0, 0, time.UTC)
	var journeyObs []*sensing.Observation
	for i := 0; i < 12; i++ {
		journeyObs = append(journeyObs, &sensing.Observation{
			UserID:             server.Accounts.Anonymize(walker.ID),
			DeviceModel:        "ONEPLUS A0001",
			Mode:               sensing.Journey,
			SPL:                62 + 6*float64(i%3),
			Loc:                &sensing.Location{Point: start.Offset(float64(i)*25, float64(i)*10), AccuracyM: 8, Provider: sensing.ProviderGPS},
			Activity:           sensing.ActivityFoot,
			ActivityConfidence: 0.95,
			SensedAt:           begin.Add(time.Duration(i) * 30 * time.Second),
		})
	}
	journey, err := soundcity.BuildFromObservations(server.Accounts.Anonymize(walker.ID), journeyObs, 30*time.Second)
	if err != nil {
		return err
	}
	laeq, err := journey.LAeq()
	if err != nil {
		return err
	}
	fmt.Printf("journey recorded: %d points, %.0f m, LAeq %.1f dB(A)\n",
		len(journey.Points), journey.Length(), laeq)

	// The neighbour subscribes to journey notifications in the zone
	// before the walker shares.
	zone := zones.ZoneID(start)
	if err := server.Channels.Subscribe(soundcity.AppID, neighbour.ID, soundcity.DatatypeJourney, zone); err != nil {
		return err
	}

	// Share publicly: the store announces it through the broker.
	journey.Visibility = soundcity.Public
	js := soundcity.NewJourneyStore(store, broker, zones)
	id, err := js.Save(journey, walker.ID)
	if err != nil {
		return err
	}
	fmt.Printf("journey %s shared publicly in zone %s\n", id, zone)

	// The neighbour's queue received the announcement.
	delivery, found, err := broker.Get(neighbour.Queue)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("no journey notification delivered to %s", neighbour.Queue)
	}
	var note map[string]any
	if err := json.Unmarshal(delivery.Body, &note); err != nil {
		return err
	}
	if err := broker.AckGet(neighbour.Queue, delivery.Tag); err != nil {
		return err
	}
	fmt.Printf("neighbour notified: new public journey %v in %v\n", note["journeyId"], note["zone"])

	// The neighbour lists what they can see.
	visible, err := js.Visible(server.Accounts.Anonymize(neighbour.ID), nil)
	if err != nil {
		return err
	}
	fmt.Printf("neighbour sees %d shared journey(s)\n", len(visible))
	return nil
}
