// Quickstart: stand a GoFlow crowd-sensing stack up in-process,
// register the SoundCity app, log a mobile client in, publish a few
// noise observations through the real broker path, and query them
// back through the data-management API.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/urbancivics/goflow/internal/client"
	"github.com/urbancivics/goflow/internal/docstore"
	"github.com/urbancivics/goflow/internal/geo"
	"github.com/urbancivics/goflow/internal/goflow"
	"github.com/urbancivics/goflow/internal/mq"
	"github.com/urbancivics/goflow/internal/sensing"
	"github.com/urbancivics/goflow/internal/soundcity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The middleware: broker + GoFlow server + document store.
	broker := mq.NewBroker()
	defer broker.Close()
	server, err := goflow.NewServer(goflow.ServerConfig{Broker: broker, Store: docstore.NewStore()})
	if err != nil {
		return err
	}
	defer server.Shutdown()
	if _, err := soundcity.Register(server); err != nil {
		return err
	}
	if err := server.StartIngest(); err != nil {
		return err
	}

	// 2. A mobile client: login provisions the private exchange and
	// queue (Figure 3), then the uploader publishes through them.
	cl, err := server.Login(soundcity.AppID)
	if err != nil {
		return err
	}
	fmt.Printf("client logged in: exchange=%s queue=%s\n", cl.Exchange, cl.Queue)

	transport := client.NewMQTransport(broker, cl.Exchange, soundcity.AppID, cl.ID)
	uploader, err := client.NewUploader(client.Config{
		ClientID:   cl.ID,
		AppID:      soundcity.AppID,
		Version:    "1.3",
		BufferSize: 1, // send after each observation
	}, transport)
	if err != nil {
		return err
	}

	// 3. Sense: five measurements around Paris.
	paris := geo.Point{Lat: 48.8566, Lon: 2.3522}
	base := time.Date(2016, 4, 12, 14, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		obs := &sensing.Observation{
			UserID:             "quickstart-user",
			DeviceModel:        "LGE NEXUS 5",
			Mode:               sensing.Manual,
			SPL:                58 + float64(i)*2,
			Loc:                &sensing.Location{Point: paris.Offset(float64(i)*120, 40), AccuracyM: 12, Provider: sensing.ProviderGPS},
			Activity:           sensing.ActivityFoot,
			ActivityConfidence: 0.92,
			SensedAt:           base.Add(time.Duration(i) * 5 * time.Minute),
		}
		if err := uploader.Record(obs); err != nil {
			return err
		}
		if _, err := uploader.Flush(obs.SensedAt, true); err != nil {
			return err
		}
	}
	if err := server.WaitIdle(10 * time.Second); err != nil {
		return err
	}

	// 4. Query the crowd-sensed data back.
	docs, err := server.Data.Retrieve(goflow.Query{AppID: soundcity.AppID, Provider: "gps"})
	if err != nil {
		return err
	}
	fmt.Printf("stored %d GPS observations:\n", len(docs))
	for _, d := range docs {
		fmt.Printf("  %.1f dB(A) at zone %v by %v\n", d["spl"], d["zone"], d["userId"])
	}
	return nil
}
