// Noisemap: the SoundCity data assimilation loop. Build a synthetic
// city, run the numerical noise model (deliberately biased, as real
// models are), collect crowd observations of heterogeneous accuracy,
// and merge them with BLUE. The analysis recovers most of the model
// error — the paper's case for MPS as a complement to fixed sensors.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/urbancivics/goflow/internal/assim"
	"github.com/urbancivics/goflow/internal/geo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 7
	city, err := assim.RandomCity(assim.CityConfig{Seed: seed})
	if err != nil {
		return err
	}
	truth, err := city.NoiseField(40, 40)
	if err != nil {
		return err
	}
	minT, maxT, meanT := truth.Stats()
	fmt.Printf("city truth field: min %.1f / mean %.1f / max %.1f dB(A)\n", minT, meanT, maxT)

	// The "model": truth plus a 4 dB systematic bias (urban noise
	// models typically misestimate traffic volumes).
	background := truth.Clone()
	for i := range background.Values {
		background.Values[i] += 4
	}

	// The crowd: 400 mobile observations; calibrated phones measure
	// the truth with 3 dB sensor noise.
	rng := rand.New(rand.NewSource(seed))
	var obs []assim.Observation
	latSpan := truth.Box.Max.Lat - truth.Box.Min.Lat
	lonSpan := truth.Box.Max.Lon - truth.Box.Min.Lon
	for i := 0; i < 400; i++ {
		p := geo.Point{
			Lat: truth.Box.Min.Lat + rng.Float64()*latSpan,
			Lon: truth.Box.Min.Lon + rng.Float64()*lonSpan,
		}
		v, ok := truth.Sample(p)
		if !ok {
			continue
		}
		obs = append(obs, assim.Observation{At: p, ValueDB: v + 3*rng.NormFloat64(), SigmaDB: 3})
	}

	analysis, err := assim.Analyze(background, obs, assim.DefaultBLUEParams())
	if err != nil {
		return err
	}
	bgRMSE, err := assim.RMSE(background, truth)
	if err != nil {
		return err
	}
	anRMSE, err := assim.RMSE(analysis, truth)
	if err != nil {
		return err
	}
	fmt.Printf("model error before assimilation: RMSE %.2f dB\n", bgRMSE)
	fmt.Printf("after assimilating %d observations: RMSE %.2f dB (%.0f%% of error removed)\n",
		len(obs), anRMSE, 100*(1-anRMSE/bgRMSE))

	// Render a coarse ASCII map of the analyzed field.
	fmt.Println("analyzed noise map (darker = louder):")
	shades := []byte(" .:-=+*#%@")
	for r := analysis.NRows - 1; r >= 0; r -= 4 {
		line := make([]byte, 0, analysis.NCols/2)
		for c := 0; c < analysis.NCols; c += 2 {
			v := analysis.At(r, c)
			idx := int((v - minT) / (maxT - minT) * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line = append(line, shades[idx])
		}
		fmt.Println(string(line))
	}
	return nil
}
