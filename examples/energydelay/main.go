// Energydelay: the energy-delay tradeoff study of Section 5.3. Runs
// the paper's battery experiment (Figure 16) across upload policies
// and bearers, then the transmission-delay simulation (Figure 17) for
// the unbuffered and buffered client versions, and prints both.
package main

import (
	"fmt"
	"log"

	"github.com/urbancivics/goflow/internal/device"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("battery depletion (7h, 1-min sensing, from 80%):")
	configs := []struct {
		label string
		cfg   device.BatteryRunConfig
	}{
		{"no MPS app       ", device.BatteryRunConfig{MPS: false}},
		{"unbuffered, WiFi ", device.BatteryRunConfig{MPS: true, Network: device.WiFi, BufferSize: 1}},
		{"unbuffered, 3G   ", device.BatteryRunConfig{MPS: true, Network: device.ThreeG, BufferSize: 1}},
		{"buffered x10, WiFi", device.BatteryRunConfig{MPS: true, Network: device.WiFi, BufferSize: 10}},
		{"buffered x10, 3G ", device.BatteryRunConfig{MPS: true, Network: device.ThreeG, BufferSize: 10}},
	}
	var baseline float64
	for _, c := range configs {
		out, err := device.RunBattery(c.cfg)
		if err != nil {
			return err
		}
		if baseline == 0 {
			baseline = out.DepletionPercent
		}
		fmt.Printf("  %s  %5.1f%%  (%.2fx baseline, %d transmissions)\n",
			c.label, out.DepletionPercent, out.DepletionPercent/baseline, out.Breakdown.Transmissions)
	}

	fmt.Println("\ntransmission delays (14 days, 60 devices, 5-min sensing):")
	labels := device.DelayBucketLabels()
	for _, v := range []struct {
		version string
		buffer  int
	}{{"1.2.9", 1}, {"1.3", 10}} {
		records, err := device.SimulateTransmission(device.TransmissionConfig{
			Devices: 60, Days: 14, BufferSize: v.buffer, Version: v.version, Seed: 42,
		})
		if err != nil {
			return err
		}
		dist := device.DelayDistribution(records)
		fmt.Printf("  v%s (buffer=%d):\n", v.version, v.buffer)
		for i, l := range labels {
			fmt.Printf("    %-8s %5.1f%%\n", l, dist[i]*100)
		}
	}
	fmt.Println("\ntakeaway: buffering cuts radio wakes ~10x for <1h of added delay;")
	fmt.Println("tune the buffer to the application's timeliness needs (Section 7).")
	return nil
}
