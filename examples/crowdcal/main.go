// Crowdcal: crowd-calibration of device models against each other
// (the paper's Section 8 future work). The fleet contributes raw,
// uncalibrated measurements; one model was calibrated at a
// "calibration party" against a reference sound meter; the cross-model
// median polish recovers every other model's hardware bias from
// co-located observations alone, and feeds the calibration database
// that the exposure dashboards use.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"github.com/urbancivics/goflow/internal/device"
	"github.com/urbancivics/goflow/internal/sensing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fleet, err := device.NewFleet(device.GeneratorConfig{Scale: 0.003, Seed: 7})
	if err != nil {
		return err
	}
	obs, err := fleet.GenerateAll()
	if err != nil {
		return err
	}
	fmt.Printf("fleet contributed %d raw observations from %d devices\n", len(obs), len(fleet.Devices))

	// The single reference calibration we own.
	const anchorModel = "SAMSUNG GT-I9505"
	anchor, err := device.ModelByName(anchorModel)
	if err != nil {
		return err
	}
	fmt.Printf("anchor: %s, party-calibrated bias %.2f dB\n\n", anchorModel, anchor.Mic.BiasDB)

	res, err := sensing.CrowdCalibrate(obs, sensing.CrowdCalOptions{
		Anchors: map[string]float64{anchorModel: anchor.Mic.BiasDB},
	})
	if err != nil {
		return err
	}

	models := device.TopModels()
	sort.Slice(models, func(i, j int) bool { return models[i].Name < models[j].Name })
	fmt.Printf("%-20s %10s %10s %8s\n", "model", "true bias", "crowd est", "error")
	worst := 0.0
	for _, m := range models {
		est := res.Biases[m.Name]
		e := math.Abs(est - m.Mic.BiasDB)
		if e > worst {
			worst = e
		}
		fmt.Printf("%-20s %9.2f %10.2f %7.2f\n", m.Name, m.Mic.BiasDB, est, e)
	}
	fmt.Printf("\nmax error %.2f dB after %d iterations over %d observations\n", worst, res.Iterations, res.ObsUsed)

	// Fold into the calibration database used by the app.
	db := sensing.NewCalibrationDB()
	if err := res.ApplyToDB(db); err != nil {
		return err
	}
	fmt.Printf("calibration database now covers %d models (source: crowd)\n", len(db.Models()))
	return nil
}
